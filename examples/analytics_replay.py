"""Analytics workflow: auto-tune, record a workload trace, replay it across
configurations, and time-travel with versioned views.

This example shows the operational surface around the core engine:

1. ``auto_tune`` measures bound tightness on the target graph and picks the
   hub configuration;
2. a mixed update+query workload is recorded to a trace file, making the
   benchmark bit-reproducible;
3. the trace is replayed under the tuned config and under upper-bound-only
   pruning — identical answers, very different work;
4. a :class:`VersionedStore` publishes epochs mid-stream so an analyst can
   query "as of" an earlier version after the graph has moved on.

Run with::

    python examples/analytics_replay.py
"""

import tempfile
from pathlib import Path

from repro import SGraph, SGraphConfig
from repro.bench.trace import interleave, read_trace, replay_trace, write_trace
from repro.core.pairwise import QueryKind
from repro.core.tuning import auto_tune
from repro.graph.generators import power_law_graph
from repro.graph.stats import sample_vertex_pairs
from repro.streaming.versioning import VersionedStore
from repro.streaming.workload import sliding_window_stream


def main() -> None:
    graph = power_law_graph(2000, 4, seed=51, weight_range=(1.0, 4.0))

    # 1. tune ---------------------------------------------------------------
    tuning = auto_tune(graph, hub_budgets=(4, 8, 16), num_pairs=16, seed=52)
    cfg = tuning.config
    print(f"auto-tune chose strategy={cfg.hub_strategy} k={cfg.num_hubs} "
          f"(median bound gap {tuning.chosen.gap_p50:.2f}x)")

    # 2. record -------------------------------------------------------------
    pairs = sample_vertex_pairs(graph, 12, seed=53, min_hops=2)
    queries = [(QueryKind.DISTANCE, s, t) for s, t in pairs]
    updates = list(sliding_window_stream(graph, 300, seed=54))
    events = interleave(updates, queries, updates_per_query=25)
    trace_path = Path(tempfile.mkdtemp()) / "workload.trace"
    write_trace(trace_path, events)
    print(f"recorded {len(events)} events to {trace_path}")

    # 3. replay under two configurations -------------------------------------
    for label, config in (
        ("tuned sgraph", cfg),
        ("upper-only", SGraphConfig(num_hubs=cfg.num_hubs,
                                    hub_strategy=cfg.hub_strategy,
                                    policy="upper-only")),
    ):
        sg = SGraph(graph=power_law_graph(2000, 4, seed=51,
                                          weight_range=(1.0, 4.0)),
                    config=config)
        report = replay_trace(sg, read_trace(trace_path))
        agg = report.query_stats
        print(f"  {label:13s}: {report.queries_answered} queries, "
              f"mean {1e3 * agg.mean_elapsed:.3f} ms, "
              f"{agg.mean_activations:.1f} activations/query")

    # 4. time travel ---------------------------------------------------------
    sg = SGraph(graph=power_law_graph(2000, 4, seed=51,
                                      weight_range=(1.0, 4.0)), config=cfg)
    sg.rebuild_indexes()
    store = VersionedStore(sg, capacity=4)
    s, t = pairs[0]
    v0 = store.publish(label="before")
    for update in sliding_window_stream(sg.graph, 200, seed=55):
        sg.apply_update(update)
    sg.add_edge(s, t, 1.0)  # a shortcut appears after the first version
    v1 = store.publish(label="after")
    print(f"\ndistance({s}, {t}) as of {v0.label!r} (epoch {v0.epoch}): "
          f"{v0.distance(s, t).value:.2f}")
    print(f"distance({s}, {t}) as of {v1.label!r} (epoch {v1.epoch}): "
          f"{v1.distance(s, t).value:.2f}")
    print(f"live answer now: {sg.distance(s, t).value:.2f}")


if __name__ == "__main__":
    main()
