"""Sensor-mesh scenario: most-reliable-path routing under link churn.

An unreliable wireless mesh: edge weights are link success probabilities,
and the routing layer wants the path maximizing end-to-end delivery
probability.  Links degrade, recover, and die; the reliability index
follows incrementally.  Demonstrates the third cost algebra
(:class:`repro.core.ReliabilityProduct`) on the same engine/index machinery
as distance queries, plus budget-threshold checks via the engine.

Run with::

    python examples/sensor_network.py
"""

import random

from repro import SGraph, SGraphConfig
from repro.graph.datasets import load_dataset
from repro.graph.stats import sample_vertex_pairs


def main() -> None:
    graph = load_dataset("sensor-rel")
    print(f"sensor mesh: {graph.num_vertices} nodes, {graph.num_edges} links "
          f"(weights are link success probabilities)")

    sg = SGraph(graph=graph,
                config=SGraphConfig(num_hubs=16, queries=("reliability",)))
    sg.rebuild_indexes()
    routes = sample_vertex_pairs(graph, 5, seed=61, min_hops=4)

    print("\nbest delivery probabilities:")
    for s, t in routes:
        result = sg.reliability(s, t)
        print(f"  {s:>5} -> {t:>5}: p = {result.probability:6.4f}  "
              f"({result.stats.activations} activated)")

    # Link churn: degradations (weight drops) and failures (deletions).
    rng = random.Random(62)
    links = list(graph.edges())
    for s, t, p in rng.sample(links, 120):
        sg.add_edge(s, t, max(0.05, p * rng.uniform(0.3, 0.9)))  # degrade
    for s, t, _p in rng.sample(links, 30):
        sg.discard_edge(s, t)  # fail

    print("\nafter 120 degradations and 30 link failures:")
    for s, t in routes:
        result = sg.reliability(s, t)
        if result.reachable:
            print(f"  {s:>5} -> {t:>5}: p = {result.probability:6.4f}")
        else:
            print(f"  {s:>5} -> {t:>5}: partitioned")

    # SLA check without computing the exact probability.
    s, t = routes[0]
    result = sg.reliability_at_least(s, t, 0.25)
    print(f"\nSLA check p({s}->{t}) >= 0.25: {bool(result.value)} "
          f"({result.stats.activations} activated"
          f"{', from index' if result.stats.answered_by_index else ''})")


if __name__ == "__main__":
    main()
