"""Social-network scenario: degrees-of-separation queries over a feed of
new friendships.

This is the workload the paper's introduction motivates: a social service
wants "how far is user A from user B" (for friend suggestions, trust
scoring, ad targeting) answered interactively while friendships stream in
at high rate.  The script:

1. builds a power-law friendship graph (the LiveJournal-class proxy);
2. streams batches of new friendships through the SGraph facade;
3. after each batch, answers separation queries and reports latency and
   how much of the graph each query touched, comparing against what the
   exhaustive baseline would have paid.

Run with::

    python examples/social_network.py
"""

import time

from repro import SGraph, SGraphConfig
from repro.baselines import RecomputeEngine
from repro.graph.generators import power_law_graph
from repro.graph.stats import sample_vertex_pairs
from repro.streaming.update import batched
from repro.streaming.workload import insert_only_stream


def main() -> None:
    graph = power_law_graph(3000, 5, seed=21, weight_range=(1.0, 3.0))
    print(f"friendship graph: {graph.num_vertices} users, "
          f"{graph.num_edges} friendships")

    sg = SGraph(
        graph=graph,
        config=SGraphConfig(num_hubs=16, queries=("distance", "hops")),
    )
    sg.rebuild_indexes()
    recompute = RecomputeEngine(graph)
    queries = sample_vertex_pairs(graph, 12, seed=22, min_hops=2)
    stream = insert_only_stream(graph, 600, seed=23)

    for epoch, batch in enumerate(batched(stream, 200)):
        start = time.perf_counter()
        sg.apply(batch)
        ingest_ms = 1e3 * (time.perf_counter() - start)
        print(f"\nepoch {epoch}: ingested {len(batch)} friendships "
              f"in {ingest_ms:.1f} ms")

        for s, t in queries[:4]:
            result = sg.hop_distance(s, t)
            sep = "unreachable" if not result.reachable else int(result.value)
            print(
                f"  separation({s:>5}, {t:>5}) = {sep:>3}  "
                f"[{1e3 * result.stats.elapsed:7.3f} ms, "
                f"{result.stats.activations:4d} activated"
                f"{', from index' if result.stats.answered_by_index else ''}]"
            )

    # What would the exhaustive engine have paid for the last query?
    s, t = queries[0]
    baseline = recompute.distance(s, t)
    mine = sg.distance(s, t)
    print(
        f"\nexhaustive baseline for ({s}, {t}): "
        f"{1e3 * baseline.stats.elapsed:.1f} ms, "
        f"{baseline.stats.activations} activated "
        f"vs SGraph {1e3 * mine.stats.elapsed:.3f} ms, "
        f"{mine.stats.activations} activated"
    )


if __name__ == "__main__":
    main()
