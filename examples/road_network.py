"""Road-network scenario: route-cost queries under live traffic updates.

A navigation backend answers "cheapest travel cost from A to B" while
incidents change edge costs and road closures delete edges.  Road
topologies are the hard case for hub bounds — degrees are flat, so hub
*placement* matters (the facade is configured with the far-apart strategy;
see experiment E7 for the ablation).  The script also demonstrates
bottleneck queries: "widest vehicle that can travel A→B" when weights are
read as clearance limits.

Run with::

    python examples/road_network.py
"""

import random

from repro import SGraph, SGraphConfig
from repro.graph.generators import grid_graph
from repro.graph.stats import sample_vertex_pairs


def main() -> None:
    graph = grid_graph(48, 48, seed=31, weight_range=(1.0, 10.0),
                       diagonal_fraction=0.15)
    print(f"road grid: {graph.num_vertices} intersections, "
          f"{graph.num_edges} segments")

    sg = SGraph(
        graph=graph,
        config=SGraphConfig(num_hubs=16, hub_strategy="far-apart",
                            queries=("distance", "capacity")),
    )
    sg.rebuild_indexes()
    routes = sample_vertex_pairs(graph, 6, seed=32, min_hops=20)

    print("\ninitial route costs:")
    for s, t in routes:
        result = sg.distance(s, t)
        print(f"  route {s:>4} -> {t:>4}: cost {result.value:7.2f}  "
              f"({result.stats.activations} activated)")

    # Traffic: random incidents slow segments; a few closures remove them.
    rng = random.Random(33)
    edges = list(graph.edges())
    incidents = rng.sample(edges, 40)
    for s, t, w in incidents[:30]:
        sg.add_edge(s, t, w * rng.uniform(2.0, 5.0))  # congestion
    for s, t, _w in incidents[30:]:
        sg.discard_edge(s, t)  # closure
    print("\nafter 30 congestion incidents and 10 closures:")
    for s, t in routes:
        result = sg.distance(s, t)
        cost = f"{result.value:7.2f}" if result.reachable else "   no route"
        print(f"  route {s:>4} -> {t:>4}: cost {cost}")

    # Clearance queries: weights re-read as clearance, maximize the minimum.
    s, t = routes[0]
    clearance = sg.bottleneck(s, t)
    print(f"\nwidest clearance {s} -> {t}: {clearance.value:.2f} "
          f"({clearance.stats.activations} activated"
          f"{', from index' if clearance.stats.answered_by_index else ''})")


if __name__ == "__main__":
    main()
