"""Quickstart: build an SGraph, evolve it, and ask pairwise queries.

Run with::

    python examples/quickstart.py
"""

from repro import EdgeUpdate, SGraph, SGraphConfig


def main() -> None:
    # A small weighted social graph: edges are (user, user, closeness cost).
    sg = SGraph.from_edges(
        [
            ("alice", "bob", 1.0),
            ("bob", "carol", 2.0),
            ("carol", "dave", 1.0),
            ("alice", "erin", 4.0),
            ("erin", "dave", 1.0),
        ],
        config=SGraphConfig(num_hubs=2, queries=("distance", "hops",
                                                 "capacity")),
    )

    result = sg.distance("alice", "dave")
    print(f"distance(alice, dave) = {result.value}  "
          f"(activated {result.stats.activations} vertices)")

    print(f"hops(alice, dave)     = {sg.hop_distance('alice', 'dave').hops}")
    print(f"reachable(alice, dave) = {bool(sg.reachable('alice', 'dave').value)}")
    print(f"widest(alice, dave)   = {sg.bottleneck('alice', 'dave').capacity}")

    # The graph evolves: a new shortcut appears, an old tie disappears.
    sg.apply([
        EdgeUpdate.insert("alice", "dave", 1.5),
        EdgeUpdate.delete("bob", "carol"),
    ])
    print("\nafter updates:")
    print(f"distance(alice, dave) = {sg.distance('alice', 'dave').value}")
    print(f"distance(alice, carol) = {sg.distance('alice', 'carol').value}")
    print(f"graph epoch = {sg.epoch}, |E| = {sg.num_edges}")


if __name__ == "__main__":
    main()
