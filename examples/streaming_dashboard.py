"""Streaming dashboard: concurrent ingest + query, the paper's headline demo.

Models the deployment the abstract describes — "ingest millions of updates
per second and simultaneously answer pairwise queries" — with the epoch
scheduler: every round applies an update batch (sliding-window churn, so
deletions exercise the repair path) and then answers a slice of the query
workload, printing a rolling dashboard of ingest throughput and query
latency percentiles.

Run with::

    python examples/streaming_dashboard.py
"""

from repro import SGraph, SGraphConfig
from repro.graph.generators import power_law_graph
from repro.graph.stats import sample_vertex_pairs
from repro.streaming.scheduler import EpochScheduler
from repro.streaming.workload import sliding_window_stream


def main() -> None:
    graph = power_law_graph(3000, 5, seed=41, weight_range=(1.0, 4.0))
    sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=16))
    sg.rebuild_indexes()
    queries = sample_vertex_pairs(graph, 64, seed=42, min_hops=2)
    updates = sliding_window_stream(graph, 2000, seed=43)

    print(f"{'round':>5}  {'updates':>7}  {'upd k/s':>8}  "
          f"{'queries':>7}  {'q mean ms':>9}  {'q max ms':>8}")

    scheduler = EpochScheduler(sg, sg.distance)
    report = scheduler.run(updates, queries,
                           updates_per_round=200, queries_per_round=16)
    for record in report.rounds:
        ups = record.updates_applied / max(record.update_seconds, 1e-9)
        q_mean = 1e3 * record.query_seconds / max(record.queries_answered, 1)
        print(f"{record.epoch:>5}  {record.updates_applied:>7}  "
              f"{ups / 1e3:>8.1f}  {record.queries_answered:>7}  "
              f"{q_mean:>9.3f}  {'':>8}")

    agg = report.query_stats
    print("\noverall:")
    print(f"  {report.total_updates} updates at "
          f"{report.updates_per_second / 1e3:.1f}k updates/s")
    print(f"  {report.total_queries} queries: "
          f"mean {1e3 * agg.mean_elapsed:.3f} ms, "
          f"p50 {1e3 * agg.p(0.50):.3f} ms, "
          f"p99 {1e3 * agg.p(0.99):.3f} ms")
    print(f"  answered purely from index: "
          f"{100.0 * agg.answered_by_index / agg.total:.1f}%")
    print(f"  mean activations/query: {agg.mean_activations:.1f} "
          f"of {graph.num_vertices} vertices "
          f"({100 * agg.mean_activation_fraction(graph.num_vertices):.2f}%)")


if __name__ == "__main__":
    main()
