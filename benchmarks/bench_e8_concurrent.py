"""E8 — query latency under concurrent update load.

Claim reproduced: query latency stays flat (sub-second with enormous
headroom at this scale) while the scheduler pushes increasingly heavy
update batches between query rounds — the "simultaneously ingest and
answer" property, modelled as deterministic epoch interleaving.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e8_concurrent


def test_e8_concurrent_load(benchmark):
    rows = run_rows(
        benchmark, run_e8_concurrent,
        "E8 — query latency vs concurrent update rate",
        update_rates=(10, 100, 500), rounds=8, queries_per_round=8,
    )
    # Query latency must not blow up with update rate (allow 5x headroom).
    latencies = [r["q_mean_ms"] for r in rows]
    assert max(latencies) < 5 * max(min(latencies), 0.01)
    # Every query observed a sub-second answer.
    assert all(r["q_p99_ms"] < 1000 for r in rows)
