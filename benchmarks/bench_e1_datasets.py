"""E1 — dataset table (the paper's evaluation-setup table).

Prints |V|, |E|, degree statistics, estimated diameter, and component
structure for every dataset proxy, with the paper-scale graph each one
stands in for.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e1_datasets


def test_e1_dataset_table(benchmark):
    rows = run_rows(benchmark, run_e1_datasets, "E1 — dataset proxies")
    assert len(rows) >= 5
