"""E7 — hub-count and hub-selection sensitivity (ablation).

More hubs tighten bounds monotonically on skewed graphs; on road-like
topologies the *placement* strategy dominates the count — degree hubs are
near-useless on bounded-degree lattices while spread-out hubs recover the
pruning power.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e7_hubs


def test_e7_hub_sensitivity(benchmark):
    rows = run_rows(
        benchmark, run_e7_hubs, "E7 — hub count / strategy ablation",
        hub_counts=(1, 4, 16, 32), num_pairs=16,
    )
    social = {r["k"]: r["act%"] for r in rows
              if r["dataset"] == "social-pl" and r["strategy"] == "degree"}
    assert social[32] <= social[1]
    road = {r["strategy"]: r["act%"] for r in rows
            if r["dataset"] == "road-grid" and r["k"] == 16}
    assert road["far-apart"] < road["degree"]
