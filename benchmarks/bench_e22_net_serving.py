"""E22 — TCP plane transport: loopback overhead + fetch-on-publish cost.

Claim reproduced (shape): moving the serving plane across a socket instead
of a shared-memory mapping costs one payload fetch per (reader, epoch) —
never per query.  Readers cache each fetched plane by digest and run the
bit-identical ``_search_dense`` hot path locally, so steady-state
throughput tracks the shm pool and the transport gap shows up only in the
publish→remote-visibility latency rows.

Three assertions, in decreasing universality:

* correctness is unconditional — every TCP pool answer (value and all six
  stats counters) matches a single-process reference engine at the final
  epoch, teardown leaks nothing, and the server's fetch counters show
  every plane crossed the socket exactly once per reader;
* loopback overhead is bounded — with queries off the socket the TCP pool
  may not run more than 5x the shm pool over the identical
  query/ingest/publish schedule (generous: the observed gap is 1.0-1.3x);
* a cached re-acquire ships zero payload bytes, so the warm ``refresh()``
  poll must be cheaper than the cold fetch+decode path (floored at 1ms so
  sub-millisecond jitter cannot flake the run).

``REPRO_E22_WORKERS`` (comma list, e.g. ``1,2``) caps the sweep for smoke
runs.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e22_net_serving
from repro.serving import shm_available
from repro.serving.net import net_available

import pytest

pytestmark = pytest.mark.skipif(
    not net_available(), reason="loopback TCP sockets unavailable"
)


def test_e22_net_serving_table(benchmark):
    rows = run_rows(
        benchmark, run_e22_net_serving,
        "E22 — TCP plane transport",
    )
    tcp_rows = [r for r in rows if r["mode"] == "tcp-pool"]
    visibility_rows = [r for r in rows if r["mode"] == "visibility"]
    assert tcp_rows and visibility_rows

    # Unconditional: bit-identical answers, zero leaks, and exactly one
    # socket crossing per (reader, plane) at every worker count.
    for row in tcp_rows:
        answered, total = map(int, row["parity"].split("/"))
        assert answered == total, (
            f"{row['dataset']} x{row['workers']}: {row['parity']} parity"
        )
        assert row["leaked"] == 0
        assert row["fetches"] == "max 1/plane", row["fetches"]

    # Queries never touch the socket, so the TCP pool runs the identical
    # schedule within a small factor of the shm pool (when shm exists to
    # compare against).
    if shm_available():
        for row in tcp_rows:
            assert row["overhead"] <= 5.0, (
                f"{row['dataset']} x{row['workers']}: "
                f"tcp/shm overhead {row['overhead']}"
            )

    # Fetch-on-publish: the cold refresh pays poll + fetch + verify +
    # decode once; the warm refresh is a single control message.
    for row in visibility_rows:
        assert row["cached_poll_ms"] <= max(row["fetch_refresh_ms"], 1.0), (
            f"cached poll {row['cached_poll_ms']}ms slower than cold "
            f"fetch {row['fetch_refresh_ms']}ms"
        )
