"""E11 (ablation) — bound tightness by hub strategy and count.

The mechanism behind every pruning result: the fraction of query pairs
whose lower and upper bounds coincide, and the gap-ratio distribution of
the rest.  Degree hubs dominate on skewed graphs; spread-out hubs are
required on flat road topologies.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e11_bound_tightness


def test_e11_bound_tightness(benchmark):
    rows = run_rows(
        benchmark, run_e11_bound_tightness,
        "E11 — bound tightness ablation", num_pairs=32,
    )
    social = {(r["strategy"], r["k"]): r for r in rows
              if r["dataset"] == "social-pl"}
    # More degree hubs never loosen the median gap on the skewed graph.
    assert social[("degree", 64)]["gap_p50"] <= social[("degree", 4)]["gap_p50"]
    road = {(r["strategy"], r["k"]): r for r in rows
            if r["dataset"] == "road-grid"}
    assert road[("far-apart", 16)]["gap_p50"] <= road[("degree", 16)]["gap_p50"]
