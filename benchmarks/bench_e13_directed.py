"""E13 (extension) — directed graphs.

Exercises the dual forward/backward hub tables and the lower bound's
unreachability proofs: on a directed web proxy many pairs have no path at
all, and SGraph answers those from the index with zero traversal while the
baselines must exhaust a component to conclude the same.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e13_directed


def test_e13_directed(benchmark):
    rows = run_rows(benchmark, run_e13_directed,
                    "E13 — directed web proxy", num_pairs=16)
    by_engine = {r["engine"]: r for r in rows}
    assert by_engine["sgraph"]["act/query"] < by_engine["none"]["act/query"]
    assert by_engine["sgraph"]["index-only%"] > 0
