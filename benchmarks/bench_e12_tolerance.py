"""E12 (extension) — bounded-error approximation trade-off.

Sweeping the allowed error factor: a growing share of queries closes
straight from the index bounds and the surviving searches prune harder,
while the *actual* error stays within the requested bound (and is usually
far smaller).
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e12_tolerance


def test_e12_tolerance_tradeoff(benchmark):
    rows = run_rows(
        benchmark, run_e12_tolerance, "E12 — approximation trade-off",
        tolerances=(0.0, 0.25, 0.5, 1.0), num_pairs=16,
    )
    acts = [r["act/query"] for r in rows]
    assert acts == sorted(acts, reverse=True)  # monotone work reduction
    for row in rows:
        assert row["worst_err%"] <= 100.0 * row["tolerance"] + 1e-6
    assert rows[-1]["index-only%"] > rows[0]["index-only%"]
