"""E6 — incremental index maintenance vs full rebuild.

Claim reproduced: repairing the hub trees per update batch is orders of
magnitude cheaper than rebuilding, converging toward rebuild cost only for
very large batches — the justification for SGraph's incremental design.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e6_maintenance


def test_e6_maintenance_cost(benchmark):
    rows = run_rows(
        benchmark, run_e6_maintenance,
        "E6 — per-batch maintenance: incremental vs rebuild",
        batch_sizes=(1, 10, 100, 1000),
    )
    assert all(row["speedup"] > 1.0 for row in rows)
    speedups = [row["speedup"] for row in rows]
    assert speedups[0] > 100  # single updates: huge win
    assert speedups == sorted(speedups, reverse=True)
