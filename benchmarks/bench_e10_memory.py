"""E10 — hub index size.

The index stores k cost entries per reachable vertex (2k on directed
graphs): linear in |V| and in k, the modest-memory-overhead argument.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e10_memory


def test_e10_index_size(benchmark):
    rows = run_rows(
        benchmark, run_e10_memory, "E10 — index size vs k and graph scale",
        hub_counts=(4, 16, 64), scales=(0.5, 1.0, 2.0),
    )
    for row in rows:
        assert row["entries"] == row["k"] * row["|V|"]
