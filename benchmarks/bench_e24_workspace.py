"""E24 — epoch-scoped search workspaces: O(touched) setup, not O(|V|).

Claim reproduced (shape): per-query state for the dense verbs (distance
labels, settled bytemaps, heaps) is owned by a :class:`SearchWorkspace`
reused across queries via sparse reset — each search resets only the
entries its heap journal proves it touched.  On a ≥100k-vertex plane an
index-pruned pairwise query touches a few dozen entries, so the O(|V|)
allocation the pre-workspace path paid per call dominates its latency;
reuse removes it.

Assertions, in decreasing universality:

* correctness is unconditional — every parity row (all three pruning
  policies, pairwise and batched, warm vs the fresh-state reference path)
  matches on values AND the six search counters; reuse can never trade
  correctness for latency;
* the headline claim — warm median latency for index-pruned pairwise
  queries is at least 2x below cold (observed: ~9x); the warm engine
  allocated its workspace exactly once for the whole run;
* the batched verb rides the same machinery (plus the per-epoch residual
  row LRU) — asserted at the same 2x bar (observed: ~4.5x);
* the unpruned row is reported but unasserted: when the search itself is
  O(thousands of pops), setup reuse legitimately fades toward 1x — that
  row documents where the optimization stops mattering.

``REPRO_E24_SIDE`` / ``REPRO_E24_QUERIES`` shrink the plane and workload
for smoke runs.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e24_workspace


def test_e24_workspace_table(benchmark):
    rows = run_rows(
        benchmark, run_e24_workspace,
        "E24 — epoch-scoped search workspaces",
    )
    pruned_rows = [r for r in rows if r["mode"] == "pairwise-pruned"]
    batched_rows = [r for r in rows if r["mode"] == "batched"]
    parity_rows = [r for r in rows if r["mode"] == "parity"]
    assert pruned_rows and batched_rows and len(parity_rows) == 3

    # Unconditional: bit-identity against the fresh-state reference under
    # every policy, and one workspace allocation per engine lifetime.
    for row in parity_rows:
        matched, total = map(int, row["parity"].split("/"))
        assert matched == total, (
            f"policy {row['policy']}: {row['parity']} parity"
        )
        assert row["workspace_allocs"] == 1, row
        assert row["workspace_hits"] >= row["queries"] - 1, row

    # Headline: index-pruned pairwise queries on a >=100k-vertex plane run
    # at least 2x faster warm than cold.
    for row in pruned_rows:
        assert row["vertices"] >= 100_000, row
        assert row["ratio"] >= 2.0, (
            f"warm {row['warm_ms']}ms vs cold {row['cold_ms']}ms "
            f"(ratio {row['ratio']}) — workspace reuse is not paying"
        )

    # Batched one-to-many rides the same workspace + row-cache machinery.
    for row in batched_rows:
        assert row["ratio"] >= 2.0, row
