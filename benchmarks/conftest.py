"""Shared helpers for the experiment benchmarks.

Each ``bench_eN`` module regenerates the rows of one reconstructed paper
table/figure (see DESIGN.md's experiment index); the tables are buffered in
:mod:`repro.bench.capture` and printed in the terminal summary, so a
``pytest benchmarks/ --benchmark-only`` run leaves the full set of tables
in its output despite pytest's capture.  `run_rows` wraps the pedantic
single-round timing used for the table generators (the interesting timing
lives *inside* the harness; re-running a whole experiment many times would
only re-measure the same loops).
"""

from __future__ import annotations

import pytest

from repro.bench.capture import drain_tables, record_table


def pytest_collection_modifyitems(items):
    # Experiment generators legitimately run for minutes; widen the
    # tier-1 --timeout=120 hang guard rather than opting benchmarks out.
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(900))


def run_rows(benchmark, fn, title, **kwargs):
    """Execute one experiment under the benchmark timer and record its table."""
    rows = benchmark.pedantic(
        lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    record_table(rows, title)
    return rows


def pytest_terminal_summary(terminalreporter):
    tables = drain_tables()
    if not tables:
        return
    terminalreporter.section("reproduced experiment tables")
    for table in tables:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
