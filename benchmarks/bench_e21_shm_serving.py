"""E21 — multiprocess shm serving: throughput scaling + attach latency.

Claim reproduced (shape): serving the dense plane from shared memory lets
reader processes scale pairwise throughput without copying the graph —
workers attach O(#buffers) views over the writer's segments and run the
bit-identical ``_search_dense`` hot path, while the writer keeps ingesting
and publishing epochs.

Three assertions, in decreasing universality:

* correctness is unconditional — every pool answer (value and all six
  stats counters) matches a single-process reference engine over the same
  frozen epoch, and teardown leaves zero segments in ``/dev/shm``;
* attach latency is O(#buffers), so it must stay essentially flat while
  ``load_scaled`` quadruples the plane;
* the ≥2.5× 4-worker scaling claim needs actual cores: it is asserted
  only when the box grants this process 4+ CPUs (a 1-core CI container
  pays IPC for no parallelism, and the table documents that honestly).

``REPRO_E21_WORKERS`` (comma list, e.g. ``1,2``) caps the sweep for smoke
runs.
"""

import os

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e21_shm_serving
from repro.serving import shm_available

import pytest

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_e21_shm_serving_table(benchmark):
    rows = run_rows(
        benchmark, run_e21_shm_serving,
        "E21 — multiprocess shm serving",
    )
    pool_rows = [r for r in rows if r["mode"] == "shm-pool"]
    attach_rows = [r for r in rows if r["mode"] == "attach"]
    assert pool_rows and attach_rows

    # Unconditional: bit-identical answers and zero leaked segments at
    # every worker count on both topologies.
    for row in pool_rows:
        answered, total = map(int, row["parity"].split("/"))
        assert answered == total, (
            f"{row['dataset']} x{row['workers']}: {row['parity']} parity"
        )
        assert row["leaked"] == 0

    # Attach is O(#buffers): the largest plane may not cost more than 5x
    # the smallest's attach latency despite 4x the bytes (generous bound —
    # both are fractions of a millisecond; O(V+E) attach would be tens).
    attach_rows.sort(key=lambda r: r["plane_mb"])
    assert attach_rows[-1]["attach_ms"] <= max(
        5 * attach_rows[0]["attach_ms"], 5.0
    )

    # Scaling needs cores.  Gate the paper-shaped claim on actually having
    # them; the rows above document single-core behavior either way.
    if _cpus() >= 4:
        for dataset in {r["dataset"] for r in pool_rows}:
            best = max(r["speedup"] for r in pool_rows
                       if r["dataset"] == dataset and r["workers"] >= 4)
            assert best >= 2.5, (
                f"{dataset}: 4-worker speedup {best} < 2.5 on a "
                f"{_cpus()}-cpu box"
            )
