"""E15 (extension) — adaptive per-query strategy selection.

The adaptive engine reads each query's own bound gap and dispatches to
pruned or plain search, tracking the better fixed strategy on every
topology instead of committing to one globally.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e15_adaptive


def test_e15_adaptive(benchmark):
    rows = run_rows(benchmark, run_e15_adaptive,
                    "E15 — adaptive dispatch", num_pairs=20)
    for dataset in ("social-pl", "collab-sw", "road-grid"):
        sub = {r["engine"]: r["mean_ms"] for r in rows
               if r["dataset"] == dataset}
        best_fixed = min(sub["always-pruned"], sub["always-plain"])
        # Adaptive must stay within 2x of the better fixed strategy (it
        # pays one bound evaluation per query for the dispatch decision).
        assert sub["adaptive"] <= 2.0 * best_fixed + 0.2
