"""E3 — pairwise query latency vs baseline engines.

Claim reproduced (shape): SGraph's latency sits orders of magnitude below
the exhaustive recompute model and at/below the strongest index-free
search, with the gap widest on skewed graphs.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e3_latency


def test_e3_latency_table(benchmark):
    rows = run_rows(
        benchmark, run_e3_latency, "E3 — mean query latency by engine",
        num_pairs=16,
    )
    by_key = {(r["dataset"], r["engine"]): r["mean_ms"] for r in rows}
    for dataset in ("social-pl", "road-grid", "collab-sw"):
        assert by_key[(dataset, "sgraph")] < by_key[(dataset, "recompute")] / 2
