"""E16 (extension) — the multiplicative (most-reliable-path) algebra.

Same index, same search, third semiring: pruning effectiveness carries
over to probability-product path queries on a sensor-mesh proxy.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e16_reliability


def test_e16_reliability(benchmark):
    rows = run_rows(benchmark, run_e16_reliability,
                    "E16 — most-reliable-path queries", num_pairs=16)
    by_engine = {r["engine"]: r for r in rows}
    assert by_engine["sgraph"]["act/query"] < by_engine["none"]["act/query"]
