"""E9 — crossover against continuous per-query maintenance.

The streaming-engine trade: maintaining answers per registered query source
wins only while the query working set is tiny; its update cost scales with
the number of sources, while SGraph's index maintenance is independent of
it.  The table sweeps the source count and reports the total-cost winner.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e9_crossover


def test_e9_crossover(benchmark):
    rows = run_rows(
        benchmark, run_e9_crossover,
        "E9 — SGraph vs continuous maintenance (total cost)",
        source_counts=(1, 4, 16, 64), num_updates=300, num_queries=150,
    )
    assert rows[0]["winner"] == "continuous"  # one source: lookup engine wins
    # SGraph's total cost must stay roughly flat across source counts...
    sg = [r["sgraph_total_ms"] for r in rows]
    assert max(sg) < 3 * min(sg)
    # ...while the continuous engine's grows with the working set.
    cont = [r["continuous_total_ms"] for r in rows]
    assert cont[-1] > 5 * cont[0]
