"""E18 — snapshot + publish latency vs churn delta.

Claim reproduced: delta-versioned storage makes publishing a queryable
version O(updates since the last publish).  The table sweeps delta sizes
(1, 10, 100, 1000 updates between publishes) on a fixed R-MAT graph at two
scales; the small-delta publish latency must be measurably independent of
|V| (the two scales differ ~8x in size), while the initial full-copy
publish is allowed to — and does — grow with the graph.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e18_publish


def test_e18_publish_latency(benchmark):
    rows = run_rows(
        benchmark, run_e18_publish,
        "E18 — publish latency vs churn delta (two graph scales)",
        scales=(12, 15), deltas=(1, 10, 100, 1000), publishes_per_delta=3,
    )
    by_scale = {}
    for r in rows:
        by_scale.setdefault(r["scale"], {})[r["delta"]] = r

    small, large = (by_scale[s] for s in sorted(by_scale))
    # The larger graph really is much larger (≈8x vertices, >100k edges).
    assert large[10]["vertices"] > 5 * small[10]["vertices"]
    assert large[10]["edges"] > 100_000

    # O(Δ) publish: after a 10-update batch, latency on the big graph must
    # be within noise of the small graph (generous 4x for CI jitter), not
    # scaled by the ~8x size ratio.
    assert large[10]["publish_ms"] < 4 * max(small[10]["publish_ms"], 0.01)

    # The full first publish does scale with the graph — the delta publish
    # must beat it by a wide margin at both scales.
    for table in (small, large):
        assert table[10]["publish_ms"] < table[10]["full_publish_ms"] / 5

    # Latency grows with delta, not with graph size: the 1000-update publish
    # dwarfs the 1-update publish on the same graph.
    assert large[1000]["publish_ms"] > large[1]["publish_ms"]
