"""E5 — update ingestion throughput.

Claim reproduced (relative form — absolute updates/second are a property of
the C++/NUMA testbed, not of the algorithm): raw graph ingestion runs at
memory speed and hub-index maintenance costs a bounded factor on top,
cheapest for insert-only streams and highest for deletion-heavy windows.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e5_ingest


def test_e5_ingest_throughput(benchmark):
    rows = run_rows(
        benchmark, run_e5_ingest, "E5 — ingestion throughput",
        num_updates=2000,
    )
    by_key = {(r["stream"], r["pipeline"]): r["ups"] for r in rows}
    for stream in ("insert-only", "sliding-window", "mixed-80/20"):
        assert by_key[(stream, "graph-only")] > by_key[
            (stream, "graph+index(k=16)")
        ]
    # Insert-only maintenance is cheaper than the deletion-heavy window.
    assert by_key[("insert-only", "graph+index(k=16)")] > by_key[
        ("sliding-window", "graph+index(k=16)")
    ]
