"""E4 — latency and activations across the pairwise query algebra.

Distance, hop-count, reachability, and bottleneck queries through the
SGraph facade.  Reachability (and often bottleneck) resolves purely from
the index, which is the generality argument for the hub-bound technique.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e4_query_types


def test_e4_query_type_table(benchmark):
    rows = run_rows(
        benchmark, run_e4_query_types, "E4 — query kinds via the facade",
        num_pairs=16,
    )
    reach = [r for r in rows if r["query"] == "reachability"]
    assert all(r["index-only%"] == 100.0 for r in reach)
