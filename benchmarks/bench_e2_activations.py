"""E2 — vertex activations per pruning policy (the headline figure).

Claim reproduced: upper-bound-only pruning eliminates only about half of
the activations of the unpruned propagation model, while lower-bound
pruning (SGraph) activates on the order of 1% of the vertices.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e2_activations


def test_e2_activation_fractions(benchmark):
    rows = run_rows(
        benchmark, run_e2_activations,
        "E2 — mean activation fraction by pruning policy",
        num_pairs=16,
    )
    by_key = {(r["dataset"], r["engine"]): r["act%"] for r in rows}
    for dataset in ("social-pl", "collab-sw"):
        none = by_key[(dataset, "propagate/none")]
        ub = by_key[(dataset, "propagate/upper-only")]
        sg = by_key[(dataset, "sgraph (ordered)")]
        assert ub < 0.8 * none, "UB pruning should remove a large share"
        assert sg < 0.1 * none, "SGraph should activate a tiny fraction"
    # The abstract's signature number: <1% activations on the social graph.
    assert by_key[("social-pl", "sgraph (ordered)")] < 1.5
