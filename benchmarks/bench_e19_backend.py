"""E19 — dict vs dense serving plane on the same frozen state.

Claim reproduced (shape): routing the pruned bidirectional search through
the dense plane — CSR adjacency, numpy hub rows, flat array search state —
cuts the pairwise query median below the dict reference plane on both the
R-MAT-style and the grid stand-in, while returning identical answers
(the ``match`` column is asserted, not just reported).
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e19_backend


def test_e19_backend_table(benchmark):
    rows = run_rows(
        benchmark, run_e19_backend, "E19 — dict vs dense serving plane",
        num_pairs=24,
    )
    by_key = {(r["dataset"], r["backend"]): r for r in rows}
    for dataset in ("social-pl", "road-grid"):
        dense = by_key[(dataset, "dense")]
        dict_ = by_key[(dataset, "dict")]
        # Answer parity is non-negotiable; latency must strictly improve.
        assert dense["match"] and dict_["match"]
        assert dense["median_ms"] < dict_["median_ms"]
        # Same algorithm, same pruning decisions — identical traversal work.
        assert dense["act/query"] == dict_["act/query"]
