"""Micro-benchmarks: single-query latency per engine under pytest-benchmark.

Unlike the table generators, these use the benchmark fixture's statistical
machinery directly (many rounds of a single query batch), so relative
engine cost shows up in pytest-benchmark's own comparison table.
"""

from __future__ import annotations

import pytest

from repro.baselines.dijkstra import bidirectional_dijkstra, dijkstra_distance
from repro.bench.workloads import build_workload
from repro.core.engine import PairwiseEngine
from repro.core.pruning import PruningPolicy


@pytest.fixture(scope="module")
def workload():
    return build_workload("social-pl", num_pairs=8, num_hubs=16)


def _run_batch(query_fn, pairs):
    total = 0.0
    for s, t in pairs:
        value, _stats = query_fn(s, t)
        total += 0.0 if value == float("inf") else value
    return total


def test_query_batch_dijkstra(benchmark, workload):
    benchmark(
        _run_batch,
        lambda s, t: dijkstra_distance(workload.graph, s, t),
        workload.pairs,
    )


def test_query_batch_bidirectional(benchmark, workload):
    benchmark(
        _run_batch,
        lambda s, t: bidirectional_dijkstra(workload.graph, s, t),
        workload.pairs,
    )


def test_query_batch_upper_only(benchmark, workload):
    engine = PairwiseEngine(workload.graph, index=workload.index,
                            policy=PruningPolicy.UPPER_ONLY)
    benchmark(_run_batch, engine.best_cost, workload.pairs)


def test_query_batch_sgraph(benchmark, workload):
    engine = PairwiseEngine(workload.graph, index=workload.index,
                            policy=PruningPolicy.UPPER_AND_LOWER)
    benchmark(_run_batch, engine.best_cost, workload.pairs)


def test_index_build(benchmark, workload):
    from repro.core.hub_index import HubIndex

    benchmark.pedantic(
        lambda: HubIndex.build(workload.graph, 16),
        rounds=2, iterations=1, warmup_rounds=0,
    )


def test_single_update_maintenance(benchmark, workload):
    """Cost of one insert+delete round-trip through index maintenance."""
    index = workload.index
    graph = workload.graph

    def one_roundtrip():
        graph.add_edge(0, 1, 2.5)
        index.notify_edge_inserted(0, 1, 2.5)
        graph.remove_edge(0, 1)
        index.notify_edge_deleted(0, 1, 2.5)

    if graph.has_edge(0, 1):
        w = graph.edge_weight(0, 1)
        graph.remove_edge(0, 1)
        index.notify_edge_deleted(0, 1, w)
    benchmark(one_roundtrip)
