"""E17 (extension) — epoch-guarded query cache under skewed workloads.

Serving workloads re-ask hot pairs between updates; the cache exploits the
epoch counter for free, airtight invalidation.  Hit rate rises with query
skew and falls with update frequency.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e17_cache


def test_e17_cache(benchmark):
    rows = run_rows(benchmark, run_e17_cache,
                    "E17 — epoch-guarded result cache", num_queries=200)
    by_skew = {r["query_skew"]: r for r in rows}
    skews = sorted(by_skew)
    # Heavier skew means more repeats, hence a higher hit rate.
    assert by_skew[skews[-1]]["hit%"] > by_skew[skews[0]]["hit%"]
