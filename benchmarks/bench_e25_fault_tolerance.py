"""E25 — fault-tolerant serving: bit-identical answers under injection.

Claim reproduced (shape): the serving plane's failure handling is
*invisible to correctness*.  A seeded :class:`FaultPolicy` drops,
truncates, corrupts, and delays the reader's connections through a
:class:`FaultProxy`, and a SIGKILL takes out a pool worker mid-workload
— yet every answer (value AND search-stats counters) matches an
undisturbed deployment serving the same planes, because retries replay
idempotent reads, corrupt frames are caught by digest before decode, and
lost pool requests are resubmitted around the corpse while it respawns.

Assertions, in decreasing universality:

* correctness is unconditional — both the ``churn`` epochs (faulted vs
  clean reader) and the ``respawn`` leg (post-SIGKILL vs baseline)
  report full parity;
* the fault accounting is exact — every scheduled fault fired, each
  disruptive one cost exactly one retry (``retries == disruptions``),
  and nothing timed out, went stale, or hung;
* the recovery completed — the killed worker was respawned and the pool
  is back to full strength with the breaker closed.

``REPRO_E25_EPOCHS`` / ``REPRO_E25_QUERIES`` cap the workload for CI
smoke runs.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e25_fault_tolerance
from repro.serving.net import net_available

import pytest

pytestmark = pytest.mark.skipif(
    not net_available(), reason="loopback TCP sockets unavailable"
)


def test_e25_fault_tolerance_table(benchmark):
    rows = run_rows(
        benchmark, run_e25_fault_tolerance,
        "E25 — fault-tolerant serving",
    )
    churn_rows = [r for r in rows if r["mode"] == "churn"]
    summary_rows = [r for r in rows if r["mode"] == "summary"]
    respawn_rows = [r for r in rows if r["mode"] == "respawn"]
    assert churn_rows and summary_rows

    # Unconditional: every faulted answer matched the clean reader's.
    for row in churn_rows:
        answered, total = map(int, row["parity"].split("/"))
        assert answered == total, f"epoch {row['epoch']}: {row['parity']}"

    # Exact accounting: one retry per disruption that fired, each kind
    # surfacing on its own counter (drops/truncations as peer-closed
    # reconnects, corruptions caught by the frame digest), and the
    # reader never timed out or served stale.  ``injected`` can trail
    # ``scheduled``: a plan is pulled per *connection*, and a delay
    # leaves its connection alive to serve out the workload.
    for row in summary_rows:
        assert row["disruptions"] >= 1, row
        assert row["injected"] <= row["scheduled"], row
        assert row["retries"] == row["disruptions"], row
        assert row["peer_closed"] == row["inj_closed"], row
        assert row["corrupt_frames"] == row["inj_corrupt"], row
        assert row["deadline_exceeded"] == 0, row
        assert row["stale_serves"] == 0, row

    # Recovery: the SIGKILLed worker came back and parity held (the leg
    # is skipped, not failed, where POSIX shm is unavailable).
    for row in respawn_rows:
        answered, total = map(int, row["parity"].split("/"))
        assert answered == total, row["parity"]
        assert row["respawns"] >= 1, row
        assert row["alive"] == row["workers"], row
        assert row["breaker_open"] is False, row
