"""E20 — batched one-to-many: dict vs dense serving plane.

Claim reproduced (shape): the amortized one-to-many search (E14's
workload) gains a second axis of speedup when served from the dense
plane — one flat ``g`` array shared across the whole target set, batched
numpy bound rows instead of per-target hub-dict probes on every pop.
The dense median must drop below the dict reference for every target set
of 16 or more on both stand-in topologies, at *identical* activation
counts (the dense path is a transliteration, not a different algorithm).
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e20_many_backend


def test_e20_many_backend_table(benchmark):
    rows = run_rows(
        benchmark, run_e20_many_backend,
        "E20 — batched one-to-many: dict vs dense",
        target_counts=(4, 16, 64), repeats=3,
    )
    by_key = {(r["dataset"], r["targets"], r["backend"]): r for r in rows}
    for dataset in ("social-pl", "road-grid"):
        for count in (4, 16, 64):
            dense = by_key[(dataset, count, "dense")]
            dict_ = by_key[(dataset, count, "dict")]
            # Value parity and identical traversal work, every batch size.
            assert dense["match"] and dict_["match"]
            assert dense["act="] and dict_["act="]
            assert dense["activations"] == dict_["activations"]
            # Latency must strictly improve once the batch amortizes the
            # vectorized bound setup.
            if count >= 16:
                assert dense["median_ms"] < dict_["median_ms"]
