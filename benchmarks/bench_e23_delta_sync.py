"""E23 — delta-encoded plane sync: O(Δ) bytes per epoch, not O(|plane|).

Claim reproduced (shape): when an epoch's churn is byte-local — here ~1%
of road-grid edges re-weighted inside one vertex-id window, restricted to
edges off every hub's shortest-path tree so the hub table is provably
unchanged — a reader holding the previous payload needs only the dirty
chunks plus the new manifest, not the whole plane.  The chunk-addressed
delta frame composes onto the cached base bit-identically (same
``plane_digest``, verified on every apply), so delta mode can never trade
correctness for bytes.

Assertions, in decreasing universality:

* correctness is unconditional — the parity pass at the final epoch
  matches the in-process view answer for answer in both churn regimes,
  and the delta session's later epochs actually travelled as deltas;
* the O(Δ) claim — every localized ~1% churn epoch ships a delta frame
  under 10% of the full encoding (observed: ~3%); scattered churn is
  reported but unasserted (hub-table ripple legitimately dirties most
  chunks — that row documents the adversarial bound);
* the fallback is safe — with ``cache_planes=1`` and two publishes per
  refresh the reader's base digest is always evicted server side; every
  fetch must degrade to a full frame (zero delta fetches, bytes ratio
  1.0), never an error.

``REPRO_E23_EPOCHS`` caps the per-regime epoch count for smoke runs.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e23_delta_sync
from repro.serving.net import net_available

import pytest

pytestmark = pytest.mark.skipif(
    not net_available(), reason="loopback TCP sockets unavailable"
)


def test_e23_delta_sync_table(benchmark):
    rows = run_rows(
        benchmark, run_e23_delta_sync,
        "E23 — delta-encoded plane sync",
    )
    local_rows = [r for r in rows if r["mode"] == "local-churn"]
    summary_rows = [r for r in rows if r["mode"] == "summary"]
    evict_rows = [r for r in rows if r["mode"] == "evict-fallback"]
    assert local_rows and summary_rows and evict_rows

    # Unconditional: the delta-composed plane answers like the in-process
    # view, and the session actually used the delta path after bootstrap.
    for row in summary_rows:
        answered, total = map(int, row["parity"].split("/"))
        assert answered == total, (
            f"{row['dataset']}: {row['parity']} parity"
        )
        assert row["delta_fetches"] >= 1, row
        assert row["bytes_ratio"] < 1.0, row

    # O(Δ): localized ~1% churn must ship well under 10% of the plane.
    for row in local_rows:
        assert row["ratio"] < 0.10, (
            f"epoch {row['epoch']}: delta ratio {row['ratio']} "
            f"({row['delta_kb']}kB of {row['full_kb']}kB) for "
            f"{row['churn_pct']}% churn"
        )

    # Evicted base: every refresh degrades to a full frame, cleanly.
    for row in evict_rows:
        assert row["delta_fetches"] == 0, row
        assert row["full_fetches"] >= 3, row
        assert row["bytes_ratio"] == 1.0, row
