"""E14 (extension) — one-to-many amortization.

A recommendation-style workload asks one source against many targets;
the shared search answers the whole set at a fraction of the per-target
activation cost, with the saving growing in the target count.
"""

from benchmarks.conftest import run_rows
from repro.bench.experiments import run_e14_one_to_many


def test_e14_one_to_many(benchmark):
    rows = run_rows(benchmark, run_e14_one_to_many,
                    "E14 — one-to-many amortization",
                    target_counts=(1, 4, 16, 64))
    # At large target sets the shared search must activate fewer vertices
    # than the per-target loop.
    assert rows[-1]["many_act"] < rows[-1]["singles_act"]
    savings = [r["act_saving"] for r in rows]
    assert savings[-1] >= savings[0]
