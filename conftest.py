"""Repo-root pytest plugin: a stand-in for ``pytest-timeout``.

Tier-1 runs with ``--timeout`` in ``addopts`` so a regression that
reintroduces a hang (a reader blocking forever on a dead socket, a pool
wedged on a crashed worker) fails fast with a traceback instead of
stalling the run.  CI installs the real ``pytest-timeout``; dev
containers often only have the baked-in toolchain, so when the real
plugin is absent this conftest registers a compatible ``--timeout``
option and ``timeout`` marker backed by ``SIGALRM``.  When the real
plugin is importable this file defines nothing and defers entirely.

The shim intentionally implements only the subset the suite uses: a
whole-test wall-clock budget (fixture setup + call + teardown), marker
override per test, ``--timeout=0`` to disable.  POSIX-only — on
platforms without ``SIGALRM`` it degrades to a no-op rather than
failing collection.
"""

from __future__ import annotations

import importlib.util
import signal
import threading

import pytest

_HAVE_REAL_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None
_HAVE_SIGALRM = hasattr(signal, "SIGALRM") and hasattr(signal, "setitimer")


class TestAborted(Exception):
    """Raised inside the test when its wall-clock budget expires."""


if not _HAVE_REAL_PLUGIN:

    def pytest_addoption(parser):
        try:
            parser.addoption(
                "--timeout",
                type=float,
                default=None,
                help="fail any test running longer than this many seconds "
                     "(0 disables; shim for pytest-timeout)",
            )
        except ValueError:  # pragma: no cover - option already registered
            pass

    def pytest_configure(config):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): override the per-test wall-clock budget",
        )

    def _budget_for(item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            return float(marker.args[0])
        configured = item.config.getoption("--timeout", default=None)
        return float(configured) if configured else 0.0

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        budget = _budget_for(item)
        if (budget <= 0 or not _HAVE_SIGALRM
                or threading.current_thread()
                is not threading.main_thread()):
            yield
            return

        def _expire(_signum, _frame):
            raise TestAborted(
                f"test exceeded its {budget:g}s timeout (pytest-timeout shim)"
            )

        previous = signal.signal(signal.SIGALRM, _expire)
        signal.setitimer(signal.ITIMER_REAL, budget)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
