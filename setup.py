"""Setuptools shim.

The evaluation environment has no network and no ``wheel`` package, so PEP
517 editable installs fail at the ``bdist_wheel`` step.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
