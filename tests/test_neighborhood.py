"""Neighborhood query tests (nearest / within)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SGraphConfig
from repro.errors import QueryError
from repro.graph.generators import erdos_renyi_graph
from repro.sgraph import SGraph
from tests.conftest import reference_dijkstra


@pytest.fixture
def sg_line(line_graph):
    return SGraph(graph=line_graph, config=SGraphConfig(num_hubs=2))


class TestNearest:
    def test_sorted_by_distance(self, sg_line):
        assert sg_line.nearest(0, 3) == [(1, 1.0), (2, 2.0), (3, 3.0)]

    def test_excludes_source(self, sg_line):
        assert all(v != 0 for v, _d in sg_line.nearest(0, 5))

    def test_fewer_than_k(self, sg_line):
        assert len(sg_line.nearest(0, 50)) == 4

    def test_component_bounded(self, two_components):
        sg = SGraph(graph=two_components, config=SGraphConfig(num_hubs=1))
        assert sg.nearest(0, 10) == [(1, 1.0)]

    def test_invalid_k(self, sg_line):
        with pytest.raises(QueryError):
            sg_line.nearest(0, 0)

    def test_missing_source(self, sg_line):
        with pytest.raises(QueryError):
            sg_line.nearest(99, 2)


class TestWithin:
    def test_radius_inclusive(self, sg_line):
        assert sg_line.within(0, 2.0) == [(1, 1.0), (2, 2.0)]

    def test_zero_radius(self, sg_line):
        assert sg_line.within(0, 0.0) == []

    def test_negative_radius(self, sg_line):
        with pytest.raises(QueryError):
            sg_line.within(0, -1.0)


@given(st.integers(0, 10_000), st.integers(1, 15))
@settings(max_examples=10, deadline=None)
def test_nearest_matches_reference(seed, k):
    graph = erdos_renyi_graph(25, 45, seed=seed, weight_range=(1.0, 5.0))
    sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=2))
    source = sorted(graph.vertices())[0]
    got = sg.nearest(source, k)
    ref = reference_dijkstra(graph, source)
    expected = sorted(
        ((v, d) for v, d in ref.items() if v != source),
        key=lambda pair: (pair[1], 0),
    )[:k]
    assert [d for _v, d in got] == pytest.approx([d for _v, d in expected])
    # Vertices may differ under distance ties; distances must agree.
    got_dist = {v: d for v, d in got}
    for v, d in got_dist.items():
        assert ref[v] == pytest.approx(d)
