"""Baseline engines: search algorithms, recompute, continuous maintenance."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import (
    bfs_hops,
    bidirectional_dijkstra,
    dijkstra_distance,
    full_sssp,
)
from repro.baselines.recompute import RecomputeEngine
from repro.baselines.streaming_engine import ContinuousPairwiseEngine
from repro.baselines.ub_only import UpperBoundOnlyEngine
from repro.core.pairwise import QueryKind
from repro.errors import QueryError
from repro.graph.generators import erdos_renyi_graph
from repro.streaming.ingest import IngestEngine
from repro.streaming.update import EdgeUpdate
from tests.conftest import reference_dijkstra


class TestDijkstraVariants:
    def test_unidirectional(self, triangle_graph):
        value, stats = dijkstra_distance(triangle_graph, 0, 2)
        assert value == 3.0
        assert stats.activations >= 1

    def test_bidirectional(self, triangle_graph):
        value, _stats = bidirectional_dijkstra(triangle_graph, 0, 2)
        assert value == 3.0

    def test_same_vertex(self, triangle_graph):
        assert dijkstra_distance(triangle_graph, 1, 1)[0] == 0.0
        assert bidirectional_dijkstra(triangle_graph, 1, 1)[0] == 0.0

    def test_unreachable(self, two_components):
        assert dijkstra_distance(two_components, 0, 3)[0] == math.inf
        assert bidirectional_dijkstra(two_components, 0, 3)[0] == math.inf

    def test_missing_vertex_raises(self, triangle_graph):
        with pytest.raises(QueryError):
            dijkstra_distance(triangle_graph, 0, 99)
        with pytest.raises(QueryError):
            bidirectional_dijkstra(triangle_graph, 99, 0)
        with pytest.raises(QueryError):
            bfs_hops(triangle_graph, 99, 0)
        with pytest.raises(QueryError):
            full_sssp(triangle_graph, 99)

    def test_bfs_hops_ignores_weights(self, triangle_graph):
        value, _stats = bfs_hops(triangle_graph, 0, 2)
        assert value == 1.0  # direct edge, despite weight 4.0

    def test_bfs_unreachable(self, two_components):
        assert bfs_hops(two_components, 0, 3)[0] == math.inf

    def test_full_sssp_settles_component(self, small_powerlaw):
        source = next(iter(small_powerlaw.vertices()))
        dist, stats = full_sssp(small_powerlaw, source)
        ref = reference_dijkstra(small_powerlaw, source)
        assert dist == pytest.approx(ref)
        assert stats.activations == len(ref)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_variants_agree(self, seed):
        graph = erdos_renyi_graph(20, 34, seed=seed, weight_range=(1.0, 5.0))
        verts = sorted(graph.vertices())
        ref = reference_dijkstra(graph, verts[0])
        for t in verts[1:10]:
            expected = ref.get(t, math.inf)
            assert dijkstra_distance(graph, verts[0], t)[0] == pytest.approx(
                expected
            )
            assert bidirectional_dijkstra(graph, verts[0], t)[0] == pytest.approx(
                expected
            )

    def test_bidirectional_cheaper_on_grid(self, small_grid):
        _v, uni = dijkstra_distance(small_grid, 0, 63)
        _v, bi = bidirectional_dijkstra(small_grid, 0, 63)
        assert bi.activations < uni.activations


class TestRecompute:
    def test_distance_and_kind(self, triangle_graph):
        engine = RecomputeEngine(triangle_graph)
        result = engine.distance(0, 2)
        assert result.value == 3.0
        assert result.kind is QueryKind.DISTANCE

    def test_activates_whole_component(self, small_powerlaw):
        engine = RecomputeEngine(small_powerlaw)
        verts = sorted(small_powerlaw.vertices())
        result = engine.distance(verts[0], verts[1])
        assert result.stats.activations >= 0.9 * small_powerlaw.num_vertices

    def test_reachable(self, two_components):
        engine = RecomputeEngine(two_components)
        assert engine.reachable(0, 1).value == 1.0
        assert engine.reachable(0, 3).value == 0.0

    def test_notifications_are_noops(self, triangle_graph):
        engine = RecomputeEngine(triangle_graph)
        engine.notify_edge_inserted(0, 1, 1.0)
        engine.notify_edge_deleted(0, 1, 1.0)
        assert engine.settled_last_update == 0


class TestUpperBoundOnly:
    def test_distance_correct(self, small_powerlaw):
        engine = UpperBoundOnlyEngine(small_powerlaw, num_hubs=4)
        verts = sorted(small_powerlaw.vertices())
        ref = reference_dijkstra(small_powerlaw, verts[0])
        for t in verts[1:8]:
            assert engine.distance(verts[0], t).value == pytest.approx(
                ref.get(t, math.inf)
            )

    def test_tracks_updates_via_listener(self, line_graph):
        engine = UpperBoundOnlyEngine(line_graph, num_hubs=2)
        ingest = IngestEngine(line_graph, [engine])
        ingest.apply_update(EdgeUpdate.insert(0, 4, 0.5))
        assert engine.distance(0, 4).value == 0.5
        ingest.apply_update(EdgeUpdate.delete(0, 4))
        assert engine.distance(0, 4).value == 4.0

    def test_reachable(self, two_components):
        engine = UpperBoundOnlyEngine(two_components, num_hubs=2)
        assert engine.reachable(0, 1).value == 1.0
        assert engine.reachable(0, 2).value == 0.0


class TestContinuousEngine:
    def test_requires_registration(self, triangle_graph):
        engine = ContinuousPairwiseEngine(triangle_graph)
        with pytest.raises(QueryError):
            engine.distance(0, 2)

    def test_registered_lookup(self, triangle_graph):
        engine = ContinuousPairwiseEngine(triangle_graph)
        engine.register_source(0)
        result = engine.distance(0, 2)
        assert result.value == 3.0
        assert result.stats.answered_by_index
        assert result.stats.activations == 0

    def test_register_pairs_dedups(self, triangle_graph):
        engine = ContinuousPairwiseEngine(triangle_graph)
        engine.register_pairs([(0, 1), (0, 2), (1, 2)])
        assert engine.num_registered == 2

    def test_stays_fresh_under_updates(self, line_graph):
        engine = ContinuousPairwiseEngine(line_graph)
        engine.register_source(0)
        ingest = IngestEngine(line_graph, [engine])
        ingest.apply_update(EdgeUpdate.insert(0, 3, 0.5))
        assert engine.distance(0, 4).value == 1.5
        ingest.apply_update(EdgeUpdate.delete(0, 3))
        assert engine.distance(0, 4).value == 4.0

    def test_reachable(self, two_components):
        engine = ContinuousPairwiseEngine(two_components)
        engine.register_source(0)
        assert engine.reachable(0, 1).value == 1.0
        assert engine.reachable(0, 3).value == 0.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_continuous_matches_recompute_after_churn(self, seed):
        graph = erdos_renyi_graph(18, 30, seed=seed, weight_range=(1.0, 5.0))
        verts = sorted(graph.vertices())
        engine = ContinuousPairwiseEngine(graph)
        engine.register_source(verts[0])
        ingest = IngestEngine(graph, [engine])
        import random

        rng = random.Random(seed)
        for _ in range(25):
            u, v = rng.sample(verts, 2)
            if graph.has_edge(u, v) and rng.random() < 0.5:
                ingest.apply_update(EdgeUpdate.delete(u, v))
            else:
                ingest.apply_update(
                    EdgeUpdate.insert(u, v, rng.uniform(1.0, 5.0))
                )
        ref = reference_dijkstra(graph, verts[0])
        for t in verts[1:]:
            assert engine.distance(verts[0], t).value == pytest.approx(
                ref.get(t, math.inf)
            )
