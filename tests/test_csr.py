"""CSRGraph materialization tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import VertexNotFoundError
from repro.graph.generators import erdos_renyi_graph
from tests.conftest import reference_dijkstra


class TestConstruction:
    def test_counts(self, triangle_graph):
        csr = triangle_graph.snapshot().to_csr()
        assert csr.num_vertices == 3
        # Undirected: each edge stored as two arcs.
        assert csr.num_arcs == 6
        assert len(csr) == 3

    def test_id_round_trip(self, small_powerlaw):
        csr = small_powerlaw.snapshot().to_csr()
        for v in small_powerlaw.vertices():
            assert csr.vertex_id(csr.dense_id(v)) == v

    def test_dense_id_missing_raises(self, triangle_graph):
        csr = triangle_graph.snapshot().to_csr()
        with pytest.raises(VertexNotFoundError):
            csr.dense_id(99)

    def test_arcs_match_adjacency(self, triangle_graph):
        csr = triangle_graph.snapshot().to_csr()
        for v in triangle_graph.vertices():
            expected = {
                csr.dense_id(u): w for u, w in triangle_graph.out_items(v)
            }
            got = dict(csr.out_arcs(csr.dense_id(v)))
            assert got == expected

    def test_directed_reverse_arcs(self, directed_diamond):
        csr = directed_diamond.snapshot().to_csr()
        d3 = csr.dense_id(3)
        incoming = {csr.vertex_id(u) for u, _w in csr.in_arcs(d3)}
        assert incoming == {1, 2}

    def test_undirected_reverse_aliases_forward(self, triangle_graph):
        csr = triangle_graph.snapshot().to_csr()
        assert csr.rev_indptr is csr.indptr

    def test_epoch_carried(self, triangle_graph):
        snap = triangle_graph.snapshot()
        assert snap.to_csr().epoch == snap.epoch

    def test_sorted_indices_within_rows(self, small_powerlaw):
        csr = small_powerlaw.snapshot().to_csr()
        for v in range(csr.num_vertices):
            row = csr.indices[csr.indptr[v]:csr.indptr[v + 1]]
            assert np.all(np.diff(row) >= 0)


class TestSSSP:
    def test_matches_reference_undirected(self, small_powerlaw):
        csr = small_powerlaw.snapshot().to_csr()
        source = next(iter(small_powerlaw.vertices()))
        ref = reference_dijkstra(small_powerlaw, source)
        dist = csr.sssp(source)
        for v in small_powerlaw.vertices():
            got = dist[csr.dense_id(v)]
            expected = ref.get(v, math.inf)
            assert got == pytest.approx(expected)

    def test_backward_on_directed(self):
        g = erdos_renyi_graph(60, 240, seed=3, directed=True,
                              weight_range=(1.0, 4.0))
        csr = g.snapshot().to_csr()
        target = next(iter(g.vertices()))
        dist_to = csr.sssp(target, backward=True)
        # Oracle: forward Dijkstra on the explicitly reversed graph.
        from repro.graph.dynamic_graph import DynamicGraph

        rev = DynamicGraph(directed=True)
        for v in g.vertices():
            rev.add_vertex(v)
        for s, d, w in g.edges():
            rev.add_edge(d, s, w)
        ref = reference_dijkstra(rev, target)
        for v in g.vertices():
            assert dist_to[csr.dense_id(v)] == pytest.approx(
                ref.get(v, math.inf)
            )

    def test_unreachable_is_inf(self, two_components):
        csr = two_components.snapshot().to_csr()
        dist = csr.sssp(0)
        assert dist[csr.dense_id(2)] == math.inf
        assert dist[csr.dense_id(1)] == 1.0
