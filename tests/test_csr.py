"""CSRGraph materialization tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import VertexNotFoundError
from repro.graph.generators import erdos_renyi_graph
from tests.conftest import reference_dijkstra


class TestConstruction:
    def test_counts(self, triangle_graph):
        csr = triangle_graph.snapshot().to_csr()
        assert csr.num_vertices == 3
        # Undirected: each edge stored as two arcs.
        assert csr.num_arcs == 6
        assert len(csr) == 3

    def test_id_round_trip(self, small_powerlaw):
        csr = small_powerlaw.snapshot().to_csr()
        for v in small_powerlaw.vertices():
            assert csr.vertex_id(csr.dense_id(v)) == v

    def test_dense_id_missing_raises(self, triangle_graph):
        csr = triangle_graph.snapshot().to_csr()
        with pytest.raises(VertexNotFoundError):
            csr.dense_id(99)

    def test_arcs_match_adjacency(self, triangle_graph):
        csr = triangle_graph.snapshot().to_csr()
        for v in triangle_graph.vertices():
            expected = {
                csr.dense_id(u): w for u, w in triangle_graph.out_items(v)
            }
            got = dict(csr.out_arcs(csr.dense_id(v)))
            assert got == expected

    def test_directed_reverse_arcs(self, directed_diamond):
        csr = directed_diamond.snapshot().to_csr()
        d3 = csr.dense_id(3)
        incoming = {csr.vertex_id(u) for u, _w in csr.in_arcs(d3)}
        assert incoming == {1, 2}

    def test_undirected_reverse_aliases_forward(self, triangle_graph):
        csr = triangle_graph.snapshot().to_csr()
        assert csr.rev_indptr is csr.indptr

    def test_epoch_carried(self, triangle_graph):
        snap = triangle_graph.snapshot()
        assert snap.to_csr().epoch == snap.epoch

    def test_sorted_indices_within_rows(self, small_powerlaw):
        csr = small_powerlaw.snapshot().to_csr()
        for v in range(csr.num_vertices):
            row = csr.indices[csr.indptr[v]:csr.indptr[v + 1]]
            assert np.all(np.diff(row) >= 0)


class TestEdgeCases:
    def test_directed_isolated_vertex(self):
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph(directed=True)
        g.add_edge(0, 1, 1.0)
        g.add_vertex(7)  # no arcs at all
        csr = g.snapshot().to_csr()
        d7 = csr.dense_id(7)
        assert csr.out_degree(d7) == 0
        assert csr.in_degree(d7) == 0
        assert list(csr.out_arcs(d7)) == []
        assert list(csr.in_arcs(d7)) == []
        nbrs, wts = csr.out_slice(d7)
        assert nbrs.size == 0 and wts.size == 0
        # Still fully addressable and reachable-from-itself only.
        dist = csr.sssp(7)
        assert dist[d7] == 0.0
        assert dist[csr.dense_id(0)] == math.inf

    def test_directed_sink_and_source_vertices(self):
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph(directed=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        csr = g.snapshot().to_csr()
        # 2 is a sink: in-arcs only.  0 is a source: out-arcs only.
        assert csr.out_degree(csr.dense_id(2)) == 0
        assert csr.in_degree(csr.dense_id(2)) == 1
        assert csr.out_degree(csr.dense_id(0)) == 1
        assert csr.in_degree(csr.dense_id(0)) == 0
        assert csr.sssp(2)[csr.dense_id(0)] == math.inf
        assert csr.sssp(2, backward=True)[csr.dense_id(0)] == 3.0

    def test_round_trip_after_churn(self):
        g = erdos_renyi_graph(50, 150, seed=5, directed=True,
                              weight_range=(1.0, 3.0))
        csr0 = g.snapshot().to_csr()
        # Churn edges only: the vertex set is unchanged, so the rebuilt CSR
        # may adopt the previous id space by reference.
        edges = list(g.edges())
        for s, d, _w in edges[:10]:
            g.remove_edge(s, d)
        g.add_edge(0, 49, 9.0)
        csr1 = g.snapshot().to_csr(reuse=csr0)
        assert csr1.same_id_space(csr0)
        for v in g.vertices():
            assert csr1.vertex_id(csr1.dense_id(v)) == v
        assert csr1.to_ids(csr1.to_dense(sorted(g.vertices()))) == sorted(
            g.vertices()
        )
        # Arc content reflects the churned snapshot, not the old one.
        assert dict(csr1.out_arcs(csr1.dense_id(0)))[csr1.dense_id(49)] == 9.0

    def test_vertex_churn_breaks_id_space_reuse(self):
        g = erdos_renyi_graph(30, 90, seed=6, weight_range=(1.0, 3.0))
        csr0 = g.snapshot().to_csr()
        g.add_edge(999, 0, 1.0)  # new vertex: dense numbering must change
        csr1 = g.snapshot().to_csr(reuse=csr0)
        assert not csr1.same_id_space(csr0)
        assert csr1.num_vertices == csr0.num_vertices + 1
        assert csr1.vertex_id(csr1.dense_id(999)) == 999
        with pytest.raises(VertexNotFoundError):
            csr0.dense_id(999)

    def test_unit_weights_share_id_space_and_structure(self, small_powerlaw):
        csr = small_powerlaw.snapshot().to_csr()
        unit = csr.with_unit_weights()
        assert unit.same_id_space(csr)
        assert unit.indptr is csr.indptr
        assert unit.indices is csr.indices
        assert np.all(unit.weights == 1.0)
        assert csr.with_unit_weights() is unit  # memoized

    def test_empty_rows_well_formed_lists(self):
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph(directed=True)
        for v in range(4):
            g.add_vertex(v)
        g.add_edge(1, 2, 1.0)
        csr = g.snapshot().to_csr()
        indptr, indices, weights = csr.out_lists()
        assert len(indptr) == csr.num_vertices + 1
        assert indptr[-1] == len(indices) == len(weights) == 1
        for v in range(csr.num_vertices):
            assert indptr[v] <= indptr[v + 1]


class TestSSSP:
    def test_matches_reference_undirected(self, small_powerlaw):
        csr = small_powerlaw.snapshot().to_csr()
        source = next(iter(small_powerlaw.vertices()))
        ref = reference_dijkstra(small_powerlaw, source)
        dist = csr.sssp(source)
        for v in small_powerlaw.vertices():
            got = dist[csr.dense_id(v)]
            expected = ref.get(v, math.inf)
            assert got == pytest.approx(expected)

    def test_backward_on_directed(self):
        g = erdos_renyi_graph(60, 240, seed=3, directed=True,
                              weight_range=(1.0, 4.0))
        csr = g.snapshot().to_csr()
        target = next(iter(g.vertices()))
        dist_to = csr.sssp(target, backward=True)
        # Oracle: forward Dijkstra on the explicitly reversed graph.
        from repro.graph.dynamic_graph import DynamicGraph

        rev = DynamicGraph(directed=True)
        for v in g.vertices():
            rev.add_vertex(v)
        for s, d, w in g.edges():
            rev.add_edge(d, s, w)
        ref = reference_dijkstra(rev, target)
        for v in g.vertices():
            assert dist_to[csr.dense_id(v)] == pytest.approx(
                ref.get(v, math.inf)
            )

    def test_unreachable_is_inf(self, two_components):
        csr = two_components.snapshot().to_csr()
        dist = csr.sssp(0)
        assert dist[csr.dense_id(2)] == math.inf
        assert dist[csr.dense_id(1)] == 1.0
