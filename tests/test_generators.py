"""Graph-generator property tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.graph.generators import (
    erdos_renyi_graph,
    grid_graph,
    power_law_graph,
    rmat_graph,
    small_world_graph,
)
from repro.graph.stats import degree_sequence, degree_skew


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi_graph(50, 120, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges == 120

    def test_deterministic(self):
        a = erdos_renyi_graph(40, 80, seed=7)
        b = erdos_renyi_graph(40, 80, seed=7)
        assert sorted(a.edge_list()) == sorted(b.edge_list())

    def test_seed_changes_graph(self):
        a = erdos_renyi_graph(40, 80, seed=7)
        b = erdos_renyi_graph(40, 80, seed=8)
        assert sorted(a.edge_list()) != sorted(b.edge_list())

    def test_directed(self):
        g = erdos_renyi_graph(20, 100, seed=2, directed=True)
        assert g.directed
        assert g.num_edges == 100

    def test_too_many_edges_raises(self):
        with pytest.raises(ConfigError):
            erdos_renyi_graph(5, 11, seed=1)

    def test_no_self_loops(self):
        g = erdos_renyi_graph(30, 60, seed=3)
        assert all(s != d for s, d, _w in g.edges())

    def test_weight_range_respected(self):
        g = erdos_renyi_graph(30, 60, seed=3, weight_range=(2.0, 3.0))
        assert all(2.0 <= w <= 3.0 for _s, _d, w in g.edges())

    def test_bad_weight_range_raises(self):
        with pytest.raises(ConfigError):
            erdos_renyi_graph(10, 5, seed=0, weight_range=(3.0, 2.0))


class TestPowerLaw:
    def test_size(self):
        g = power_law_graph(300, 4, seed=5)
        assert g.num_vertices == 300
        # m edges per new vertex beyond the seed clique.
        core = 5
        assert g.num_edges == core * (core - 1) // 2 + (300 - core) * 4

    def test_skew_exceeds_uniform(self):
        pl = power_law_graph(500, 4, seed=5)
        er = erdos_renyi_graph(500, pl.num_edges, seed=5)
        assert degree_skew(degree_sequence(pl)) > 2 * degree_skew(
            degree_sequence(er)
        )

    def test_deterministic(self):
        a = power_law_graph(100, 3, seed=1)
        b = power_law_graph(100, 3, seed=1)
        assert sorted(a.edge_list()) == sorted(b.edge_list())

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            power_law_graph(3, 4)
        with pytest.raises(ConfigError):
            power_law_graph(10, 0)


class TestRmat:
    def test_vertex_bound(self):
        g = rmat_graph(scale=8, edge_factor=4, seed=2)
        assert all(0 <= v < 256 for v in g.vertices())

    def test_deterministic(self):
        a = rmat_graph(scale=7, edge_factor=4, seed=9)
        b = rmat_graph(scale=7, edge_factor=4, seed=9)
        assert sorted(a.edge_list()) == sorted(b.edge_list())

    def test_skewed_degrees(self):
        g = rmat_graph(scale=9, edge_factor=8, seed=3)
        assert degree_skew(degree_sequence(g)) > 5.0

    def test_bad_probabilities(self):
        with pytest.raises(ConfigError):
            rmat_graph(scale=5, probabilities=(0.5, 0.2, 0.2, 0.2))

    def test_bad_scale(self):
        with pytest.raises(ConfigError):
            rmat_graph(scale=0)


class TestGrid:
    def test_lattice_structure(self):
        g = grid_graph(4, 5, seed=0, weight_range=None)
        assert g.num_vertices == 20
        # 4 rows x 5 cols lattice: 4*(5-1) horizontal + (4-1)*5 vertical.
        assert g.num_edges == 4 * 4 + 3 * 5

    def test_bounded_degree(self):
        g = grid_graph(10, 10, seed=1)
        assert max(degree_sequence(g)) <= 4

    def test_diagonals_increase_edges(self):
        base = grid_graph(10, 10, seed=1)
        diag = grid_graph(10, 10, seed=1, diagonal_fraction=1.0)
        assert diag.num_edges == base.num_edges + 9 * 9

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            grid_graph(0, 5)
        with pytest.raises(ConfigError):
            grid_graph(3, 3, diagonal_fraction=1.5)


class TestSmallWorld:
    def test_ring_edges_present_at_zero_rewire(self):
        g = small_world_graph(30, 4, rewire_probability=0.0, seed=0)
        assert g.num_edges == 30 * 2
        for v in range(30):
            assert g.has_edge(v, (v + 1) % 30)
            assert g.has_edge(v, (v + 2) % 30)

    def test_rewire_changes_topology(self):
        a = small_world_graph(60, 4, rewire_probability=0.0, seed=1)
        b = small_world_graph(60, 4, rewire_probability=0.5, seed=1)
        assert sorted(a.edge_list()) != sorted(b.edge_list())

    def test_odd_k_raises(self):
        with pytest.raises(ConfigError):
            small_world_graph(20, 3)

    def test_too_small_raises(self):
        with pytest.raises(ConfigError):
            small_world_graph(4, 4)

    def test_bad_probability_raises(self):
        with pytest.raises(ConfigError):
            small_world_graph(20, 4, rewire_probability=2.0)
