"""Fault tolerance of the serving plane, under deterministic injection.

Three layers of claims:

* **Primitives** — :class:`FaultPolicy` schedules are seed-reproducible,
  :class:`Backoff` delays are bounded and jittered, the
  :class:`RespawnBreaker` opens after N failures in a window and
  re-closes as they age out.
* **Client retry** — a :class:`NetReader` dialing the real server
  through a :class:`FaultProxy` answers *bit-identically* (values and
  stats counters) to a clean reader across a multi-epoch churn
  workload, and its fault counters match the injected schedule exactly.
* **Pool resilience** — crashed workers are respawned onto the current
  epoch (batches in flight are resubmitted, never lost), the breaker
  degrades the pool to survivors instead of crash-loop forking, and a
  SIGKILL'd server restarted on the same address — with a *colliding*
  generation counter — is detected and re-synced, including the
  delta-history-lost → full-frame-fetch fallback.
"""

from __future__ import annotations

import multiprocessing as mp
import random

import pytest

from repro.errors import ConfigError
from repro.serving import shm_available
from repro.serving.faults import (
    Backoff,
    FaultPolicy,
    FaultProxy,
    RespawnBreaker,
)
from repro.serving.net import NetReader, net_available
from repro.serving.pool import ServeSession

from tests.test_serving_net import _sgraph, _stats_tuple, _wait_until

net_only = [
    pytest.mark.net,
    pytest.mark.skipif(not net_available(),
                       reason="loopback TCP sockets unavailable"),
]
shm_only = [
    pytest.mark.shm,
    pytest.mark.skipif(not shm_available(),
                       reason="POSIX shared memory unavailable"),
]


# -- primitives --------------------------------------------------------------


class TestFaultPolicy:
    def test_same_seed_same_schedule(self):
        a = FaultPolicy(seed=7, drops=2, truncations=1, corruptions=2,
                        delays=1)
        b = FaultPolicy(seed=7, drops=2, truncations=1, corruptions=2,
                        delays=1)
        assert a.plans == b.plans
        assert a.scheduled() == {"drop": 2, "truncate": 1,
                                 "corrupt": 2, "delay": 1}

    def test_round_robin_interleave(self):
        policy = FaultPolicy(seed=1, drops=2, corruptions=2)
        assert [p.kind for p in policy.plans] == \
            ["drop", "corrupt", "drop", "corrupt"]

    def test_offsets_inside_window(self):
        policy = FaultPolicy(seed=3, drops=8, window=(64, 2048))
        assert all(64 <= p.at_bytes < 2048 for p in policy.plans)

    def test_one_plan_per_connection_then_exhausted(self):
        policy = FaultPolicy(seed=0, drops=1, delays=1)
        assert policy.plan_for_connection().kind == "drop"
        assert policy.plan_for_connection().kind == "delay"
        assert policy.plan_for_connection() is None

    def test_explicit_schedule_and_validation(self):
        policy = FaultPolicy(schedule=["truncate", "drop"])
        assert [p.kind for p in policy.plans] == ["truncate", "drop"]
        with pytest.raises(ConfigError):
            FaultPolicy(schedule=["meteor"])
        with pytest.raises(ConfigError):
            FaultPolicy(window=(10, 10))

    def test_disruptions_excludes_delays(self):
        policy = FaultPolicy(seed=0, drops=1, delays=3)
        for kind in ("drop", "delay", "delay"):
            policy.record(kind)
        assert policy.disruptions() == 1
        assert policy.injected["delay"] == 2


class TestBackoff:
    def test_grows_exponentially_and_caps(self):
        b = Backoff(initial=0.1, maximum=0.8, factor=2.0, jitter=0.0)
        assert [b.delay(i) for i in range(5)] == [0.1, 0.2, 0.4, 0.8, 0.8]

    def test_jitter_bounded_and_seed_reproducible(self):
        b1 = Backoff(initial=0.1, maximum=2.0, jitter=0.5,
                     rng=random.Random(9))
        b2 = Backoff(initial=0.1, maximum=2.0, jitter=0.5,
                     rng=random.Random(9))
        for attempt in range(8):
            d1, d2 = b1.delay(attempt), b2.delay(attempt)
            assert d1 == d2
            base = min(2.0, 0.1 * 2.0 ** attempt)
            assert 0.5 * base <= d1 <= 1.5 * base

    def test_validation(self):
        with pytest.raises(ConfigError):
            Backoff(initial=0.0)
        with pytest.raises(ConfigError):
            Backoff(jitter=1.0)


class TestRespawnBreaker:
    def test_opens_after_n_failures_and_recloses(self):
        now = [0.0]
        breaker = RespawnBreaker(max_failures=2, window_s=10.0,
                                 clock=lambda: now[0])
        assert breaker.allow()
        breaker.record()
        assert breaker.allow()
        breaker.record()
        assert not breaker.allow()
        assert breaker.open
        assert breaker.trips == 1
        # failures age out of the window -> the breaker re-closes itself
        now[0] = 11.0
        assert not breaker.open
        assert breaker.allow()
        assert breaker.failures_in_window() == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            RespawnBreaker(max_failures=0)
        with pytest.raises(ConfigError):
            RespawnBreaker(window_s=0.0)


# -- client retry under the fault proxy --------------------------------------


class TestFaultProxy:
    pytestmark = net_only

    def test_churn_bit_identical_under_seeded_faults(self):
        """The acceptance workload: 3 churn epochs through drops,
        truncations, corruption, and a latency spike — every answer
        (value AND stats counters) matches a clean reader, and the
        client's fault counters match the injected schedule exactly."""
        sg = _sgraph(81)
        verts = sorted(sg.graph.vertices())
        rng = random.Random(17)
        policy = FaultPolicy(seed=42, drops=2, truncations=2,
                             corruptions=2, delays=1, delay_s=0.05)
        with ServeSession(sg, workers=1, transport="tcp") as session:
            server = session.transport.server
            with FaultProxy(server.host, server.port, policy) as proxy:
                faulted = NetReader(proxy.address, retry=6, backoff=0.01,
                                    max_backoff=0.05)
                clean = NetReader(server.address)
                try:
                    for round_no in range(3):
                        if round_no:
                            u, v = rng.sample(verts[:40], 2)
                            sg.add_edge(u, v, rng.uniform(0.1, 0.4))
                            session.publish()
                        pairs = [tuple(rng.sample(verts, 2))
                                 for _ in range(16)]
                        for s, t in pairs:
                            fv, fstats, fepoch = faulted.distance(s, t)
                            cv, cstats, cepoch = clean.distance(s, t)
                            assert fv == cv
                            assert _stats_tuple(fstats) == \
                                _stats_tuple(cstats)
                            assert fepoch == cepoch
                    stats = faulted.transfer_stats()
                    injected = policy.injected
                    # every disruptive fault that fired cost exactly one
                    # retry; nothing hung, nothing went stale
                    assert stats["retries"] == policy.disruptions()
                    assert stats["peer_closed"] == \
                        injected["drop"] + injected["truncate"]
                    assert stats["corrupt_frames"] == injected["corrupt"]
                    assert stats["deadline_exceeded"] == 0
                    assert stats["stale_serves"] == 0
                    assert not faulted.stale
                    assert proxy.stats()["connections"] >= \
                        policy.disruptions() + 1
                finally:
                    faulted.close()
                    clean.close()

    def test_pool_workers_dial_through_proxy(self):
        """`advertise=` points pool reader specs at the proxy; worker-side
        retry counters surface through ``client_stats``/``stats_row``."""
        import socket as socket_mod

        probe = socket_mod.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        policy = FaultPolicy(seed=5, drops=1, corruptions=1)
        sg = _sgraph(83)
        with FaultProxy("127.0.0.1", port, policy) as proxy:
            with ServeSession(sg, workers=1, transport="tcp", port=port,
                              advertise=(proxy.host, proxy.port),
                              retry=6, backoff=0.01,
                              max_backoff=0.05) as session:
                clean = NetReader(f"127.0.0.1:{port}")
                try:
                    verts = sorted(sg.graph.vertices())
                    rng = random.Random(3)
                    for _ in range(12):
                        s, t = rng.sample(verts, 2)
                        pv, pstats, pepoch = session.distance(s, t)
                        cv, cstats, cepoch = clean.distance(s, t)
                        assert pv == cv
                        assert _stats_tuple(pstats) == _stats_tuple(cstats)
                        assert pepoch == cepoch
                    rows = session.client_stats()
                    assert len(rows) == 1
                    assert rows[0]["retries"] == policy.disruptions()
                    assert not rows[0]["stale"]
                    row = session.stats_row()
                    assert row["retries"] == policy.disruptions()
                    assert row["respawns"] == 0
                finally:
                    clean.close()

    def test_delay_fault_costs_no_retry(self):
        sg = _sgraph(85)
        policy = FaultPolicy(seed=11, delays=2, delay_s=0.05)
        with ServeSession(sg, workers=1, transport="tcp") as session:
            server = session.transport.server
            with FaultProxy(server.host, server.port, policy) as proxy:
                with NetReader(proxy.address) as reader:
                    value, _stats, _epoch = reader.distance(0, 1)
                    assert value >= 0
                    assert reader.transfer_stats()["retries"] == 0


# -- pool respawn and degradation --------------------------------------------


class TestWorkerRespawn:
    pytestmark = shm_only

    def test_killed_worker_is_respawned_and_answers(self):
        sg = _sgraph(91)
        with sg.serve(workers=2) as session:
            value, stats, epoch = session.distance(0, 1)
            session.pool.kill_worker(0)
            # the next queries route around / resubmit past the corpse,
            # then the reap respawns it onto the current epoch.  Search
            # counters must match bit for bit (workspace reuse counters
            # legitimately reset on the respawned worker's fresh arrays).
            for _ in range(4):
                got_value, got_stats, got_epoch = session.distance(0, 1)
                assert (got_value, got_epoch) == (value, epoch)
                assert _stats_tuple(got_stats) == _stats_tuple(stats)
            assert _wait_until(lambda: session.pool.respawns >= 1)
            assert _wait_until(
                lambda: sorted(session.pool.alive()) == [0, 1]
            )
            assert session.distance(0, 1)[0] == value

    def test_batch_survives_killing_every_worker(self):
        """The one-shot-resubmission fix: a batched verb keeps reaping,
        respawning, and resubmitting until the whole batch is answered —
        even with *all* workers dead at submit time."""
        sg = _sgraph(92)
        verts = sorted(sg.graph.vertices())
        with sg.serve(workers=2) as session:
            targets = verts[1:25]
            pairs = [(0, t) for t in targets]
            expected, _stats, _epoch = session.distance_many(0, targets)
            expected_rows = [row[0]
                             for row in session.map_distance(pairs,
                                                             chunk_size=4)]
            session.pool.kill_worker(0)
            session.pool.kill_worker(1)
            values, _stats, _epoch = session.distance_many(0, targets)
            assert values == expected
            assert session.pool.respawns >= 2
            rows = session.map_distance(pairs, chunk_size=4)
            assert [row[0] for row in rows] == expected_rows

    def test_breaker_degrades_to_survivors(self):
        sg = _sgraph(93)
        with sg.serve(workers=2, respawn_limit=1,
                      respawn_window=60.0) as session:
            value, _stats, epoch = session.distance(0, 1)
            session.pool.kill_worker(0)
            # limit=1: the first crash already opens the breaker, so the
            # corpse stays dead and the pool serves from the survivor
            for _ in range(4):
                assert session.distance(0, 1)[0] == value
                assert session.distance(0, 1)[2] == epoch
            assert session.pool.respawns == 0
            assert session.pool.alive() == [1]
            row = session.stats_row()
            assert row["breaker_open"] is True
            assert row["breaker_trips"] >= 1
            assert row["respawns"] == 0

    def test_respawn_disabled_keeps_pool_shrunk(self):
        sg = _sgraph(94)
        with sg.serve(workers=2, respawn=False) as session:
            value = session.distance(0, 1)[0]
            session.pool.kill_worker(1)
            assert session.distance(0, 1)[0] == value
            assert session.pool.alive() == [0]
            assert session.pool.respawns == 0


# -- server restart (SIGKILL + same-address rebind) ---------------------------


def _server_incarnation(port, seed, mutate, generation_base, ready):
    """Child-process PlaneServer serving one deterministic plane forever.

    Rebuilds the seed graph (plus one deterministic mutation for the
    second incarnation), publishes its dense plane, reports the bound
    port, then parks until SIGKILL/terminate.
    """
    import time as time_mod

    from repro.serving.codec import encode_plane
    from repro.serving.net import PlaneServer
    from repro.streaming.versioning import VersionedStore

    sg = _sgraph(seed)
    epoch = 1
    if mutate:
        verts = sorted(sg.graph.vertices())
        sg.add_edge(verts[0], verts[-1], 0.25)
        epoch = 2
    view = VersionedStore(sg).publish()
    server = PlaneServer(host="127.0.0.1", port=port,
                         generation_base=generation_base)
    server.publish(encode_plane(view.dense_plane("distance"), epoch=epoch),
                   epoch)
    ready.put(server.port)
    while True:  # parked; the parent kills us
        time_mod.sleep(3600)


class TestServerRestart:
    pytestmark = net_only

    def test_reader_survives_sigkill_restart_bit_identically(self):
        """SIGKILL the server, restart on the same address with the next
        epoch and a *colliding* generation counter: the reader detects
        the restart (server identity, not generation arithmetic), serves
        stale during the outage, re-syncs, and every answer before and
        after matches an uninterrupted run bit for bit — including the
        delta reader, whose lost diff-base history degrades to a
        full-frame fetch rather than an error."""
        from repro.serving.codec import encode_plane
        from repro.serving.net import PlaneServer
        from repro.streaming.versioning import VersionedStore

        seed = 96
        ctx = mp.get_context("fork")
        pairs = [(0, 9), (3, 41), (7, 22), (11, 50)]

        # -- uninterrupted reference run (in-process server) --------------
        sg1 = _sgraph(seed)
        view1 = VersionedStore(sg1).publish()
        payload1 = encode_plane(view1.dense_plane("distance"), epoch=1)
        sg2 = _sgraph(seed)
        verts = sorted(sg2.graph.vertices())
        sg2.add_edge(verts[0], verts[-1], 0.25)
        view2 = VersionedStore(sg2).publish()
        payload2 = encode_plane(view2.dense_plane("distance"), epoch=2)

        reference = {}
        ref_server = PlaneServer()
        try:
            ref_server.publish(payload1, 1)
            with NetReader(ref_server.address) as ref_reader:
                reference[1] = [ref_reader.distance(s, t) for s, t in pairs]
                ref_server.publish(payload2, 2)
                assert ref_reader.refresh() == 2
                reference[2] = [ref_reader.distance(s, t) for s, t in pairs]
        finally:
            ref_server.close(drain=False)

        # -- faulted run: child server, SIGKILL, same-address restart -----
        ready = ctx.Queue()
        first = ctx.Process(target=_server_incarnation,
                            args=(0, seed, False, 0, ready), daemon=True)
        first.start()
        port = ready.get(timeout=30)
        readers = {
            "full": NetReader(f"127.0.0.1:{port}", retry=2, backoff=0.01,
                              max_backoff=0.05),
            "delta": NetReader(f"127.0.0.1:{port}", delta=True, retry=2,
                               backoff=0.01, max_backoff=0.05),
        }
        second = None
        try:
            for reader in readers.values():
                answers = [reader.distance(s, t) for s, t in pairs]
                for got, want in zip(answers, reference[1]):
                    assert got[0] == want[0]
                    assert _stats_tuple(got[1]) == _stats_tuple(want[1])
                    assert got[2] == want[2] == 1

            first.kill()
            first.join(timeout=10)

            # outage: degraded readers keep answering epoch 1, flagged
            for reader in readers.values():
                value, stats, epoch = reader.distance(*pairs[0])
                assert (value, epoch) == \
                    (reference[1][0][0], 1)
                assert _stats_tuple(stats) == _stats_tuple(reference[1][0][1])
                assert reader.stale
                assert reader.transfer_stats()["stale_serves"] >= 1

            # restart on the SAME port; generation_base=0 makes the new
            # server's generation collide with the cached one
            ready2 = ctx.Queue()
            second = ctx.Process(target=_server_incarnation,
                                 args=(port, seed, True, 0, ready2),
                                 daemon=True)
            second.start()
            assert ready2.get(timeout=30) == port

            for name, reader in readers.items():
                assert _wait_until(lambda r=reader: r.refresh() == 2,
                                   timeout=10.0)
                assert not reader.stale
                answers = [reader.distance(s, t) for s, t in pairs]
                for got, want in zip(answers, reference[2]):
                    assert got[0] == want[0]
                    assert _stats_tuple(got[1]) == _stats_tuple(want[1])
                    assert got[2] == want[2] == 2
                stats = reader.transfer_stats()
                assert stats["server_restarts"] == 1
                assert stats["reconnects"] >= 1
                # the restarted server never saw the old plane: the delta
                # reader's base history is gone, so epoch 2 arrived as a
                # full frame for both readers
                assert stats["full_fetches"] == 2
                assert stats["delta_fetches"] == 0, name
        finally:
            for reader in readers.values():
                reader.close()
            for proc in (first, second):
                if proc is not None and proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5)
