"""SGraph facade tests: the public API end to end."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SGraphConfig
from repro.core.pairwise import QueryKind
from repro.errors import ConfigError, QueryError
from repro.graph.generators import erdos_renyi_graph
from repro.sgraph import SGraph
from repro.streaming.update import EdgeUpdate
from tests.conftest import reference_dijkstra, reference_widest


@pytest.fixture
def sg_triangle(triangle_graph):
    return SGraph(
        graph=triangle_graph,
        config=SGraphConfig(num_hubs=2, queries=("distance", "hops",
                                                 "capacity")),
    )


class TestConstruction:
    def test_from_edges(self):
        sg = SGraph.from_edges([(0, 1, 2.0), (1, 2)])
        assert sg.num_vertices == 3
        assert sg.num_edges == 2
        assert sg.distance(0, 2).value == 3.0

    def test_empty_graph_query_raises(self):
        sg = SGraph()
        with pytest.raises(QueryError):
            sg.distance(0, 1)

    def test_hub_count_clamped_to_graph(self):
        sg = SGraph.from_edges([(0, 1)], config=SGraphConfig(num_hubs=50))
        assert sg.distance(0, 1).value == 1.0
        assert sg.index_for("distance").num_hubs == 2

    def test_unconfigured_family_raises(self, triangle_graph):
        sg = SGraph(graph=triangle_graph,
                    config=SGraphConfig(queries=("distance",)))
        with pytest.raises(ConfigError):
            sg.bottleneck(0, 2)
        with pytest.raises(ConfigError):
            sg.index_for("capacity")

    def test_repr(self, sg_triangle):
        assert "SGraph" in repr(sg_triangle)


class TestQueries:
    def test_distance(self, sg_triangle):
        result = sg_triangle.distance(0, 2)
        assert result.value == 3.0
        assert result.kind is QueryKind.DISTANCE
        assert result.reachable
        assert result.distance == 3.0
        assert result.epoch == sg_triangle.epoch

    def test_hops_ignore_weights(self, sg_triangle):
        result = sg_triangle.hop_distance(0, 2)
        assert result.value == 1.0
        assert result.hops == 1

    def test_bottleneck(self, sg_triangle):
        result = sg_triangle.bottleneck(0, 2)
        assert result.value == 4.0
        assert result.capacity == 4.0

    def test_reachable(self, sg_triangle):
        assert sg_triangle.reachable(0, 2).value == 1.0

    def test_unreachable_results(self, two_components):
        sg = SGraph(graph=two_components,
                    config=SGraphConfig(num_hubs=2,
                                        queries=("distance", "capacity")))
        d = sg.distance(0, 3)
        assert d.value == math.inf
        assert not d.reachable
        c = sg.bottleneck(0, 3)
        assert c.value == -math.inf
        assert not c.reachable
        assert sg.reachable(0, 3).value == 0.0

    def test_result_property_guards(self, sg_triangle):
        result = sg_triangle.distance(0, 2)
        with pytest.raises(AttributeError):
            _ = result.capacity
        with pytest.raises(AttributeError):
            _ = result.hops
        hop_result = sg_triangle.hop_distance(0, 2)
        with pytest.raises(AttributeError):
            _ = hop_result.capacity


class TestMutation:
    def test_add_edge_then_query(self, sg_triangle):
        sg_triangle.add_edge(2, 3, 1.0)
        assert sg_triangle.distance(0, 3).value == 4.0
        assert sg_triangle.hop_distance(0, 3).value == 2.0

    def test_weight_change(self, sg_triangle):
        sg_triangle.add_edge(0, 2, 1.5)  # was 4.0
        assert sg_triangle.distance(0, 2).value == 1.5
        # topology unchanged → hop answer unchanged
        assert sg_triangle.hop_distance(0, 2).value == 1.0

    def test_identical_weight_is_noop(self, sg_triangle):
        epoch = sg_triangle.epoch
        sg_triangle.add_edge(0, 2, 4.0)
        assert sg_triangle.epoch == epoch

    def test_remove_edge(self, sg_triangle):
        sg_triangle.remove_edge(0, 2)
        assert sg_triangle.distance(0, 2).value == 3.0
        assert sg_triangle.hop_distance(0, 2).value == 2.0

    def test_discard_edge(self, sg_triangle):
        assert sg_triangle.discard_edge(0, 2)
        assert not sg_triangle.discard_edge(0, 2)

    def test_add_vertex(self, sg_triangle):
        assert sg_triangle.add_vertex(9)
        assert sg_triangle.num_vertices == 4

    def test_remove_plain_vertex(self):
        sg = SGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 9)],
                               config=SGraphConfig(num_hubs=1))
        sg.distance(0, 1)  # build index; hub is vertex with max degree
        sg.remove_vertex(3)
        assert sg.num_vertices == 4
        assert sg.distance(0, 2).value == 2.0

    def test_remove_hub_vertex_rebuilds(self):
        sg = SGraph.from_edges(
            [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)],
            config=SGraphConfig(num_hubs=1),
        )
        sg.distance(1, 3)
        hub = sg.index_for("distance").hubs[0]
        assert hub == 0  # highest degree
        sg.remove_vertex(0)
        assert sg.distance(1, 3).value == 2.0
        assert 0 not in sg.index_for("distance").hubs

    def test_apply_updates(self, sg_triangle):
        applied = sg_triangle.apply([
            EdgeUpdate.insert(2, 3, 2.0),
            EdgeUpdate.delete(0, 1),
            EdgeUpdate.delete(7, 8),  # redundant: tolerated
        ])
        assert applied == 3
        assert sg_triangle.distance(0, 3).value == 6.0  # 0-2 (4) + 2-3 (2)

    def test_maintenance_counter_updates(self, sg_triangle):
        sg_triangle.distance(0, 2)  # force index build
        sg_triangle.add_edge(1, 3, 1.0)
        assert sg_triangle.last_maintenance_settled >= 1


class TestEquivalenceUnderChurn:
    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_facade_matches_oracles_after_random_updates(self, seed):
        graph = erdos_renyi_graph(20, 32, seed=seed, weight_range=(1.0, 5.0))
        sg = SGraph(
            graph=graph,
            config=SGraphConfig(num_hubs=4,
                                queries=("distance", "hops", "capacity")),
        )
        sg.distance(*list(graph.vertices())[:2])  # build indexes
        rng = random.Random(seed)
        verts = list(graph.vertices())
        for _ in range(30):
            u, v = rng.sample(verts, 2)
            roll = rng.random()
            if graph.has_edge(u, v) and roll < 0.4:
                sg.remove_edge(u, v)
            else:
                sg.add_edge(u, v, rng.uniform(1.0, 5.0))
        dist_ref = {v: reference_dijkstra(graph, v) for v in verts[:4]}
        cap_ref = {v: reference_widest(graph, v) for v in verts[:4]}
        for s in verts[:4]:
            for t in verts:
                if s == t:
                    continue
                assert sg.distance(s, t).value == pytest.approx(
                    dist_ref[s].get(t, math.inf)
                )
                assert sg.bottleneck(s, t).value == pytest.approx(
                    cap_ref[s].get(t, -math.inf)
                )

    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_hops_match_bfs_after_updates(self, seed):
        graph = erdos_renyi_graph(18, 26, seed=seed, weight_range=(1.0, 5.0))
        sg = SGraph(graph=graph,
                    config=SGraphConfig(num_hubs=3, queries=("hops",)))
        verts = list(graph.vertices())
        sg.hop_distance(verts[0], verts[1])
        rng = random.Random(seed + 1)
        for _ in range(20):
            u, v = rng.sample(verts, 2)
            if graph.has_edge(u, v) and rng.random() < 0.5:
                sg.remove_edge(u, v)
            else:
                sg.add_edge(u, v, rng.uniform(1.0, 5.0))
        from repro.baselines.dijkstra import bfs_hops

        for t in verts[1:10]:
            ref, _stats = bfs_hops(graph, verts[0], t)
            assert sg.hop_distance(verts[0], t).value == ref
