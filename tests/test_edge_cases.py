"""Edge-case hardening across modules: empty/tiny/degenerate inputs."""

from __future__ import annotations

import math

import pytest

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.errors import QueryError
from repro.graph.dynamic_graph import DynamicGraph
from repro.persist import load_sgraph, save_sgraph
from repro.sgraph import SGraph


class TestTinyGraphs:
    def test_single_vertex_graph(self):
        g = DynamicGraph()
        g.add_vertex(0)
        sg = SGraph(graph=g, config=SGraphConfig(num_hubs=4))
        assert sg.distance(0, 0).value == 0.0
        with pytest.raises(QueryError):
            sg.distance(0, 1)

    def test_single_edge_graph(self):
        sg = SGraph.from_edges([(0, 1, 2.0)], config=SGraphConfig(num_hubs=8))
        assert sg.distance(0, 1).value == 2.0
        assert sg.shortest_path(0, 1).path == [0, 1]
        assert sg.nearest(0, 5) == [(1, 2.0)]

    def test_self_loop_does_not_affect_paths(self):
        g = DynamicGraph()
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 0, 0.5)
        sg = SGraph(graph=g, config=SGraphConfig(num_hubs=2))
        assert sg.distance(0, 1).value == 2.0
        assert sg.distance(0, 0).value == 0.0

    def test_star_center_hub(self):
        g = DynamicGraph()
        for leaf in range(1, 30):
            g.add_edge(0, leaf, 1.0)
        sg = SGraph(graph=g, config=SGraphConfig(num_hubs=1))
        result = sg.distance(5, 17)
        assert result.value == 2.0
        # A midpoint hub gives UB=2 but LB=|1-1|=0 — bounds don't close,
        # yet the search is still tiny (the hub witness prunes everything).
        assert result.stats.activations <= 3

    def test_isolated_query_endpoint(self):
        g = DynamicGraph()
        g.add_edge(0, 1, 1.0)
        g.add_vertex(9)
        sg = SGraph(graph=g, config=SGraphConfig(num_hubs=2))
        assert sg.distance(0, 9).value == math.inf
        assert sg.shortest_path(9, 0).path is None
        assert sg.reachable(9, 9).value == 1.0


class TestDegenerateIndexes:
    def test_hub_in_small_component(self, two_components):
        # Hub lives in the component the queries avoid: bounds are trivial
        # but answers must remain exact.
        index = HubIndex(two_components, [2])
        engine = PairwiseEngine(two_components, index=index)
        assert engine.best_cost(0, 1)[0] == 1.0
        assert engine.best_cost(0, 3)[0] == math.inf

    def test_all_vertices_are_hubs(self, triangle_graph):
        index = HubIndex(triangle_graph, [0, 1, 2])
        engine = PairwiseEngine(triangle_graph, index=index)
        for s in range(3):
            for t in range(3):
                value, stats = engine.best_cost(s, t)
                assert stats.answered_by_index  # full coverage closes all

    def test_churn_to_empty_and_back(self):
        sg = SGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)],
                               config=SGraphConfig(num_hubs=2))
        assert sg.distance(0, 2).value == 2.0
        sg.remove_edge(0, 1)
        sg.remove_edge(1, 2)
        assert sg.num_edges == 0
        assert sg.distance(0, 2).value == math.inf
        sg.add_edge(0, 2, 7.0)
        assert sg.distance(0, 2).value == 7.0


class TestPersistCorners:
    def test_directed_with_hops_family(self, tmp_path):
        from repro.graph.generators import erdos_renyi_graph

        graph = erdos_renyi_graph(40, 160, seed=9, directed=True,
                                  weight_range=(1.0, 4.0))
        sg = SGraph(graph=graph,
                    config=SGraphConfig(num_hubs=3,
                                        queries=("distance", "hops")))
        sg.rebuild_indexes()
        save_sgraph(sg, tmp_path / "d")
        restored = load_sgraph(tmp_path / "d", verify=True)
        verts = sorted(graph.vertices())
        for t in verts[1:12]:
            assert restored.hop_distance(verts[0], t).value == sg.hop_distance(
                verts[0], t
            ).value

    def test_empty_graph_save(self, tmp_path):
        sg = SGraph()
        save_sgraph(sg, tmp_path / "empty")
        restored = load_sgraph(tmp_path / "empty")
        assert restored.num_vertices == 0


class TestStatsCorners:
    def test_merge_accumulates(self):
        from repro.core.stats import QueryStats

        a = QueryStats(activations=2, pushes=3, relaxations=4,
                       pruned_by_lower_bound=1, elapsed=0.5)
        b = QueryStats(activations=5, pushes=1, relaxations=2,
                       pruned_by_upper_bound=2, elapsed=0.25)
        a.merge(b)
        assert a.activations == 7
        assert a.pushes == 4
        assert a.pruned_by_upper_bound == 2
        assert a.elapsed == 0.75

    def test_aggregate_empty(self):
        from repro.core.stats import StatsAggregate

        agg = StatsAggregate()
        assert agg.mean_activations == 0.0
        assert agg.mean_elapsed == 0.0
        assert agg.p(0.5) == 0.0
        assert agg.mean_activation_fraction(0) == 0.0

    def test_activation_fraction_zero_vertices(self):
        from repro.core.stats import QueryStats

        assert QueryStats(activations=5).activation_fraction(0) == 0.0
