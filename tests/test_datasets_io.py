"""Dataset registry and edge-list I/O tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, GraphError
from repro.graph.datasets import (
    DATASETS,
    dataset_names,
    load_dataset,
    load_scaled,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.io import read_edge_list, write_edge_list


class TestDatasets:
    def test_registry_names(self):
        assert set(dataset_names()) == set(DATASETS)
        assert "social-pl" in dataset_names()

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_every_dataset_builds(self, name):
        g = load_dataset(name)
        assert g.num_vertices > 100
        assert g.num_edges > 100

    def test_deterministic(self):
        a = load_dataset("road-grid")
        b = load_dataset("road-grid")
        assert sorted(a.edge_list()) == sorted(b.edge_list())

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            load_dataset("nope")

    def test_scaled_variants(self):
        small = load_scaled("social-pl", 0.25)
        big = load_scaled("social-pl", 1.0)
        assert small.num_vertices < big.num_vertices

    def test_scaled_invalid(self):
        with pytest.raises(ConfigError):
            load_scaled("social-pl", 0.0)
        with pytest.raises(ConfigError):
            load_scaled("web-rmat", 1.0)

    def test_specs_have_provenance(self):
        for spec in DATASETS.values():
            assert spec.stands_in_for
            assert spec.topology


class TestEdgeListIO:
    def test_round_trip_undirected(self, tmp_path, small_powerlaw):
        path = tmp_path / "g.txt"
        write_edge_list(small_powerlaw, path)
        back = read_edge_list(path)
        assert not back.directed
        assert sorted(back.edge_list()) == sorted(small_powerlaw.edge_list())

    def test_round_trip_directed(self, tmp_path, small_directed):
        path = tmp_path / "g.txt"
        write_edge_list(small_directed, path)
        back = read_edge_list(path)
        assert back.directed
        assert sorted(back.edge_list()) == sorted(small_directed.edge_list())

    def test_isolated_vertices_survive(self, tmp_path):
        g = DynamicGraph()
        g.add_edge(0, 1)
        g.add_vertex(7)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.has_vertex(7)
        assert back.num_vertices == 3

    def test_snap_style_no_header(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# comment\n1 2\n2 3\n")
        g = read_edge_list(path)
        assert not g.directed
        assert g.edge_weight(1, 2) == 1.0

    def test_directed_override(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("1 2\n")
        g = read_edge_list(path, directed=True)
        assert g.directed
        assert not g.has_edge(2, 1)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3 4\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_malformed_vertex_record_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\nv 1 2\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        g = read_edge_list(path)
        assert g.num_vertices == 0

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("\n1 2\n\n  \n3 4 2.5\n")
        g = read_edge_list(path)
        assert g.num_edges == 2
        assert g.edge_weight(3, 4) == 2.5
