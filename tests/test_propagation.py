"""PropagationEngine (label-correcting system model) tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.propagation import PropagationEngine
from repro.core.hub_index import HubIndex
from repro.core.pruning import PruningPolicy
from repro.core.semiring import BOTTLENECK_CAPACITY
from repro.errors import ConfigError, QueryError
from repro.graph.generators import erdos_renyi_graph, power_law_graph
from tests.conftest import reference_dijkstra


class TestConstruction:
    def test_index_required_for_pruning(self, triangle_graph):
        with pytest.raises(ConfigError):
            PropagationEngine(triangle_graph, policy="upper-only")

    def test_distance_semiring_only(self, triangle_graph):
        index = HubIndex(triangle_graph, [0], semiring=BOTTLENECK_CAPACITY)
        with pytest.raises(ConfigError):
            PropagationEngine(triangle_graph, index=index, policy="upper-only")

    def test_policy_property(self, triangle_graph):
        engine = PropagationEngine(triangle_graph, policy="none")
        assert engine.policy is PruningPolicy.NONE


class TestCorrectness:
    @pytest.mark.parametrize("policy", list(PruningPolicy))
    def test_triangle(self, triangle_graph, policy):
        index = HubIndex(triangle_graph, [1]) if policy.uses_index else None
        engine = PropagationEngine(triangle_graph, index=index, policy=policy)
        assert engine.distance(0, 2).value == 3.0

    @pytest.mark.parametrize("policy", list(PruningPolicy))
    def test_unreachable(self, two_components, policy):
        index = HubIndex(two_components, [0]) if policy.uses_index else None
        engine = PropagationEngine(two_components, index=index, policy=policy)
        assert engine.distance(0, 3).value == math.inf

    def test_same_vertex(self, triangle_graph):
        engine = PropagationEngine(triangle_graph, policy="none")
        assert engine.distance(2, 2).value == 0.0

    def test_missing_vertex_raises(self, triangle_graph):
        engine = PropagationEngine(triangle_graph, policy="none")
        with pytest.raises(QueryError):
            engine.distance(0, 99)

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_policies_agree_with_oracle(self, seed):
        graph = erdos_renyi_graph(18, 30, seed=seed, weight_range=(1.0, 5.0))
        hubs = sorted(graph.vertices(), key=graph.degree)[-3:]
        index = HubIndex(graph, hubs)
        engines = [
            PropagationEngine(graph, policy="none"),
            PropagationEngine(graph, index=index, policy="upper-only"),
            PropagationEngine(graph, index=index, policy="upper+lower"),
        ]
        verts = sorted(graph.vertices())
        ref = reference_dijkstra(graph, verts[0])
        for t in verts[1:]:
            expected = ref.get(t, math.inf)
            for engine in engines:
                assert engine.distance(verts[0], t).value == pytest.approx(
                    expected
                ), engine.policy


class TestActivationShape:
    """The paper's headline claim, asserted as a test on a skewed graph."""

    def test_pruning_hierarchy(self):
        graph = power_law_graph(1200, 5, seed=4, weight_range=(1.0, 4.0))
        index = HubIndex.build(graph, 16)
        from repro.graph.stats import sample_vertex_pairs

        pairs = sample_vertex_pairs(graph, 12, seed=6, min_hops=2)
        totals = {}
        for policy in ("none", "upper-only", "upper+lower"):
            engine = PropagationEngine(
                graph,
                index=index if policy != "none" else None,
                policy=policy,
            )
            totals[policy] = sum(
                engine.distance(s, t).stats.activations for s, t in pairs
            )
        # Upper bound prunes a large share (the paper reports about half)…
        assert totals["upper-only"] < 0.8 * totals["none"]
        # …and lower-bound pruning is dramatically stronger still.
        assert totals["upper+lower"] < 0.15 * totals["upper-only"]

    def test_prune_counters_populate(self):
        graph = power_law_graph(300, 4, seed=2, weight_range=(1.0, 4.0))
        index = HubIndex.build(graph, 8)
        engine = PropagationEngine(graph, index=index, policy="upper+lower")
        verts = sorted(graph.vertices())
        stats = engine.distance(verts[0], verts[-1]).stats
        assert stats.pruned_by_lower_bound + stats.pruned_by_upper_bound >= 0
