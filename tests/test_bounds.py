"""QueryBounds soundness: UB is a witness, residuals never overshoot truth.

These are the properties the whole pruning approach rests on, so they are
checked exhaustively on small random graphs against a brute-force oracle.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import QueryBounds
from repro.core.hub_index import HubIndex
from repro.core.semiring import BOTTLENECK_CAPACITY
from repro.graph.generators import erdos_renyi_graph
from tests.conftest import reference_dijkstra, reference_widest


class TestDistanceBounds:
    def test_upper_bound_is_witness(self, triangle_graph):
        index = HubIndex(triangle_graph, [1])
        bounds = QueryBounds(index, 0, 2)
        # s→h→t through hub 1: 1.0 + 2.0 = 3.0 (also the true distance).
        assert bounds.upper_bound == 3.0
        # |d(h,t) - d(h,s)| = |2 - 1| = 1: valid but not tight here.
        assert bounds.lower_bound() == 1.0
        assert not bounds.is_exact()

    def test_endpoint_hub_gives_exactness(self, line_graph):
        index = HubIndex(line_graph, [0])
        bounds = QueryBounds(index, 0, 4)
        assert bounds.upper_bound == 4.0
        assert bounds.is_exact()

    def test_unreachable_proof(self, two_components):
        index = HubIndex(two_components, [0])
        bounds = QueryBounds(index, 0, 2)
        assert bounds.upper_bound == math.inf
        assert bounds.lower_bound() == math.inf
        assert bounds.proves_unreachable()
        assert bounds.is_exact()

    def test_no_information_is_trivial(self, two_components):
        # Hub in the other component knows nothing about this pair.
        index = HubIndex(two_components, [2])
        bounds = QueryBounds(index, 0, 1)
        assert bounds.upper_bound == math.inf
        assert bounds.lower_bound() == 0.0
        assert not bounds.is_exact()

    def test_residual_backward_roles(self, line_graph):
        index = HubIndex(line_graph, [4])
        bounds = QueryBounds(index, 0, 4)
        # Bound on d(0, v) via hub 4: |d(4,0) - d(4,v)| = |4 - (4-v)| = v.
        for v in range(5):
            assert bounds.residual_backward(v) == pytest.approx(float(v))


def _bounds_sound_for_graph(graph, hubs, num_checks=None):
    index = HubIndex(graph, hubs)
    truth = {v: reference_dijkstra(graph, v) for v in graph.vertices()}
    verts = sorted(graph.vertices())
    for s in verts:
        for t in verts:
            if s == t:
                continue
            bounds = QueryBounds(index, s, t)
            true_st = truth[s].get(t, math.inf)
            assert bounds.upper_bound >= true_st - 1e-9
            lb = bounds.lower_bound()
            assert lb <= true_st + 1e-9, (s, t, lb, true_st)
            for v in verts:
                r_f = bounds.residual_forward(v)
                true_vt = truth[v].get(t, math.inf)
                assert r_f <= true_vt + 1e-9, (
                    f"forward residual overshoots: v={v} t={t} "
                    f"r={r_f} true={true_vt}"
                )
                r_b = bounds.residual_backward(v)
                true_sv = truth[s].get(v, math.inf)
                assert r_b <= true_sv + 1e-9, (
                    f"backward residual overshoots: s={s} v={v} "
                    f"r={r_b} true={true_sv}"
                )


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_distance_bounds_sound_random_undirected(seed):
    graph = erdos_renyi_graph(14, 22, seed=seed, weight_range=(1.0, 5.0))
    hubs = sorted(graph.vertices(), key=graph.degree)[-3:]
    _bounds_sound_for_graph(graph, hubs)


@given(st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_distance_bounds_sound_random_directed(seed):
    graph = erdos_renyi_graph(12, 40, seed=seed, directed=True,
                              weight_range=(1.0, 5.0))
    hubs = list(graph.vertices())[:3]
    _bounds_sound_for_graph(graph, hubs)


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_prunable_agrees_with_residual_semantics(seed):
    """prunable_forward/backward must match the unspecialized definition."""
    graph = erdos_renyi_graph(14, 24, seed=seed, weight_range=(1.0, 5.0))
    hubs = list(graph.vertices())[:3]
    index = HubIndex(graph, hubs)
    verts = sorted(graph.vertices())
    import random

    rng = random.Random(seed)
    for _ in range(30):
        s, t, v = rng.choice(verts), rng.choice(verts), rng.choice(verts)
        if s == t:
            continue
        bounds = QueryBounds(index, s, t)
        cost = rng.uniform(0.0, 10.0)
        incumbent = rng.choice([rng.uniform(0.0, 15.0), math.inf])
        expected_f = not (cost + bounds.residual_forward(v) < incumbent)
        assert bounds.prunable_forward(v, cost, incumbent) == expected_f
        expected_b = not (cost + bounds.residual_backward(v) < incumbent)
        assert bounds.prunable_backward(v, cost, incumbent) == expected_b


class TestCapacityBounds:
    def test_upper_bound_is_witness_capacity(self, triangle_graph):
        index = HubIndex(triangle_graph, [1], semiring=BOTTLENECK_CAPACITY)
        bounds = QueryBounds(index, 0, 2)
        # Witness through hub 1: min(cap(0⇝1), cap(1⇝2)) = min(2, 2) = 2
        # (cap(0⇝1) = 2 via the detour 0-2-1); the true widest 0⇝2 is 4.
        assert bounds.upper_bound == 2.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_capacity_bounds_sound(self, seed):
        graph = erdos_renyi_graph(12, 20, seed=seed, weight_range=(1.0, 5.0))
        hubs = list(graph.vertices())[:3]
        index = HubIndex(graph, hubs, semiring=BOTTLENECK_CAPACITY)
        truth = {v: reference_widest(graph, v) for v in graph.vertices()}
        verts = sorted(graph.vertices())
        for s in verts[:6]:
            for t in verts[:6]:
                if s == t:
                    continue
                bounds = QueryBounds(index, s, t)
                true_st = truth[s].get(t, -math.inf)
                # witness path: never better than the true optimum
                assert bounds.upper_bound <= true_st + 1e-9
                # residual: optimistic, never below the truth
                assert bounds.residual_forward(s) >= true_st - 1e-9
