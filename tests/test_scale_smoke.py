"""Scale smoke tests: moderate-size graphs finish in sane time.

These don't assert wall-clock numbers (CI noise); they assert the work
*counters* stay sub-linear where the design promises it, on graphs an
order of magnitude beyond the unit-test sizes — the canary for accidental
O(V²) regressions.
"""

from __future__ import annotations

import pytest

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.graph.generators import power_law_graph
from repro.graph.stats import sample_vertex_pairs
from repro.sgraph import SGraph
from repro.streaming.workload import sliding_window_stream


@pytest.fixture(scope="module")
def big_graph():
    return power_law_graph(12_000, 5, seed=77, weight_range=(1.0, 4.0))


@pytest.fixture(scope="module")
def big_index(big_graph):
    return HubIndex.build(big_graph, 16)


class TestScale:
    def test_queries_touch_tiny_fraction(self, big_graph, big_index):
        engine = PairwiseEngine(big_graph, index=big_index)
        pairs = sample_vertex_pairs(big_graph, 12, seed=78, min_hops=2)
        for s, t in pairs:
            _value, stats = engine.best_cost(s, t)
            assert stats.activations < 0.02 * big_graph.num_vertices

    def test_index_size_exact(self, big_graph, big_index):
        assert big_index.size_entries() == 16 * big_graph.num_vertices

    def test_update_maintenance_is_local(self, big_graph):
        # Private copy: the module-scoped graph/index must stay pristine
        # for the other tests.
        graph = big_graph.copy()
        index = HubIndex.build(graph, 8)
        sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=8))
        sg.adopt_indexes({"distance": index})
        total_settled = 0
        updates = list(sliding_window_stream(graph, 200, seed=79))
        for update in updates:
            sg.apply_update(update)
            total_settled += sg.last_maintenance_settled
        # Mean maintenance work per update stays far below |V| per hub.
        mean = total_settled / len(updates)
        assert mean < 0.05 * graph.num_vertices * index.num_hubs
