"""DynamicGraph storage semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    EdgeNotFoundError,
    InvalidWeightError,
    VertexNotFoundError,
)
from repro.graph.dynamic_graph import DynamicGraph


class TestVertices:
    def test_add_vertex(self):
        g = DynamicGraph()
        assert g.add_vertex(1)
        assert not g.add_vertex(1)
        assert g.has_vertex(1)
        assert g.num_vertices == 1
        assert 1 in g
        assert list(g.vertices()) == [1]

    def test_remove_vertex_drops_incident_edges(self):
        g = DynamicGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.remove_vertex(1)
        assert not g.has_vertex(1)
        assert g.num_edges == 0
        assert g.out_degree(0) == 0
        assert g.out_degree(2) == 0

    def test_remove_vertex_directed_in_edges(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 1)
        g.remove_vertex(1)
        assert g.num_edges == 0
        assert g.out_degree(0) == 0
        assert g.out_degree(2) == 0

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexNotFoundError):
            DynamicGraph().remove_vertex(3)

    def test_degree_of_missing_vertex_raises(self):
        g = DynamicGraph()
        with pytest.raises(VertexNotFoundError):
            g.degree(0)
        with pytest.raises(VertexNotFoundError):
            g.out_items(0)


class TestEdgesUndirected:
    def test_add_edge_creates_both_directions(self):
        g = DynamicGraph()
        assert g.add_edge(0, 1, 2.5)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.edge_weight(1, 0) == 2.5
        assert g.num_edges == 1

    def test_update_weight_returns_false(self):
        g = DynamicGraph()
        g.add_edge(0, 1, 1.0)
        assert not g.add_edge(0, 1, 3.0)
        assert g.edge_weight(0, 1) == 3.0
        assert g.num_edges == 1

    def test_remove_edge_symmetric(self):
        g = DynamicGraph()
        g.add_edge(0, 1)
        g.remove_edge(1, 0)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 0
        assert g.has_vertex(0) and g.has_vertex(1)

    def test_edges_listed_once(self):
        g = DynamicGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 1, 2.0)
        assert sorted(g.edge_list()) == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_self_loop(self):
        g = DynamicGraph()
        g.add_edge(3, 3, 1.0)
        assert g.has_edge(3, 3)
        assert g.num_edges == 1
        g.remove_edge(3, 3)
        assert g.num_edges == 0

    def test_degree_counts_neighbors(self):
        g = DynamicGraph()
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        assert g.degree(0) == 2
        assert g.degree(1) == 1


class TestEdgesDirected:
    def test_arc_is_one_way(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1, 1.5)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_in_items_tracks_reverse(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1, 1.5)
        g.add_edge(2, 1, 2.5)
        assert dict(g.in_items(1)) == {0: 1.5, 2: 2.5}
        assert dict(g.out_items(1)) == {}

    def test_degree_sums_both(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.degree(1) == 2
        assert g.in_degree(1) == 1
        assert g.out_degree(1) == 1

    def test_antiparallel_arcs_are_distinct(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 0, 9.0)
        assert g.num_edges == 2
        g.remove_edge(0, 1)
        assert g.has_edge(1, 0)


class TestErrors:
    def test_remove_missing_edge_raises(self):
        g = DynamicGraph()
        g.add_edge(0, 1)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_discard_edge_is_tolerant(self):
        g = DynamicGraph()
        g.add_edge(0, 1)
        assert g.discard_edge(0, 1)
        assert not g.discard_edge(0, 1)

    def test_weight_of_missing_edge_raises(self):
        g = DynamicGraph()
        g.add_vertex(0)
        with pytest.raises(EdgeNotFoundError):
            g.edge_weight(0, 1)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_weights_rejected(self, bad):
        g = DynamicGraph()
        with pytest.raises(InvalidWeightError):
            g.add_edge(0, 1, bad)


class TestEpoch:
    def test_epoch_advances_on_mutation(self):
        g = DynamicGraph()
        e0 = g.epoch
        g.add_edge(0, 1)
        assert g.epoch > e0
        e1 = g.epoch
        g.remove_edge(0, 1)
        assert g.epoch > e1

    def test_noop_add_vertex_does_not_advance(self):
        g = DynamicGraph()
        g.add_vertex(0)
        e = g.epoch
        g.add_vertex(0)
        assert g.epoch == e

    def test_failed_discard_does_not_advance(self):
        g = DynamicGraph()
        g.add_vertex(0)
        e = g.epoch
        g.discard_edge(0, 5)
        assert g.epoch == e


class TestBulk:
    def test_from_edges_mixed_arity(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2, 3.5)])
        assert g.edge_weight(0, 1) == 1.0
        assert g.edge_weight(1, 2) == 3.5

    def test_copy_is_independent(self):
        g = DynamicGraph()
        g.add_edge(0, 1, 2.0)
        clone = g.copy()
        clone.add_edge(1, 2, 1.0)
        assert not g.has_edge(1, 2)
        assert clone.has_edge(0, 1)
        assert clone.num_edges == 2

    def test_copy_directed_reverse_adjacency(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1, 2.0)
        clone = g.copy()
        assert dict(clone.in_items(1)) == {0: 2.0}
        clone.remove_edge(0, 1)
        assert dict(g.in_items(1)) == {0: 2.0}

    def test_repr_mentions_shape(self):
        g = DynamicGraph()
        g.add_edge(0, 1)
        assert "|V|=2" in repr(g)
        assert "|E|=1" in repr(g)


@given(
    st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12), st.booleans()),
        max_size=120,
    ),
    st.booleans(),
)
@settings(max_examples=50, deadline=None)
def test_edge_count_invariant(ops, directed):
    """num_edges always equals the size of the tracked edge set, and
    undirected adjacency stays symmetric."""
    g = DynamicGraph(directed=directed)
    live = set()
    for u, v, is_insert in ops:
        key = (u, v) if directed or u <= v else (v, u)
        if is_insert:
            g.add_edge(u, v, 1.0)
            live.add(key)
        else:
            assert g.discard_edge(u, v) == (key in live)
            live.discard(key)
    assert g.num_edges == len(live)
    if not directed:
        for s, d, w in g.edges():
            assert g.has_edge(d, s)
            assert g.edge_weight(d, s) == w
