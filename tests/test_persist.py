"""Persistence round-trip tests."""

from __future__ import annotations

import json

import pytest

from repro.core.config import SGraphConfig
from repro.graph.generators import erdos_renyi_graph, power_law_graph
from repro.graph.stats import sample_vertex_pairs
from repro.persist import PersistError, load_sgraph, save_sgraph
from repro.sgraph import SGraph


@pytest.fixture
def built_sgraph():
    graph = power_law_graph(150, 3, seed=2, weight_range=(1.0, 4.0))
    sg = SGraph(
        graph=graph,
        config=SGraphConfig(num_hubs=4,
                            queries=("distance", "hops", "capacity")),
    )
    sg.rebuild_indexes()
    return sg


class TestRoundTrip:
    def test_answers_identical(self, built_sgraph, tmp_path):
        save_sgraph(built_sgraph, tmp_path / "snap")
        restored = load_sgraph(tmp_path / "snap")
        pairs = sample_vertex_pairs(built_sgraph.graph, 12, seed=3)
        for s, t in pairs:
            assert restored.distance(s, t).value == pytest.approx(
                built_sgraph.distance(s, t).value
            )
            assert restored.hop_distance(s, t).value == built_sgraph.hop_distance(
                s, t
            ).value
            assert restored.bottleneck(s, t).value == pytest.approx(
                built_sgraph.bottleneck(s, t).value
            )

    def test_config_restored(self, built_sgraph, tmp_path):
        save_sgraph(built_sgraph, tmp_path / "snap")
        restored = load_sgraph(tmp_path / "snap")
        assert restored.config == built_sgraph.config
        assert restored.index_for("distance").hubs == built_sgraph.index_for(
            "distance"
        ).hubs

    def test_verify_mode_passes_on_clean_save(self, built_sgraph, tmp_path):
        save_sgraph(built_sgraph, tmp_path / "snap")
        restored = load_sgraph(tmp_path / "snap", verify=True)
        assert restored.num_edges == built_sgraph.num_edges

    def test_restored_instance_keeps_evolving(self, built_sgraph, tmp_path):
        save_sgraph(built_sgraph, tmp_path / "snap")
        restored = load_sgraph(tmp_path / "snap")
        verts = sorted(restored.graph.vertices())
        restored.add_edge(verts[0], verts[-1], 1.0)
        assert restored.distance(verts[0], verts[-1]).value == 1.0
        restored.remove_edge(verts[0], verts[-1])
        from repro.baselines.dijkstra import dijkstra_distance

        ref, _stats = dijkstra_distance(restored.graph, verts[0], verts[-1])
        assert restored.distance(verts[0], verts[-1]).value == pytest.approx(ref)

    def test_directed_round_trip(self, tmp_path):
        graph = erdos_renyi_graph(60, 240, seed=4, directed=True,
                                  weight_range=(1.0, 4.0))
        sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=3))
        sg.rebuild_indexes()
        save_sgraph(sg, tmp_path / "snap")
        restored = load_sgraph(tmp_path / "snap", verify=True)
        assert restored.graph.directed
        verts = sorted(graph.vertices())
        for t in verts[1:10]:
            assert restored.distance(verts[0], t).value == pytest.approx(
                sg.distance(verts[0], t).value
            )


class TestFailureModes:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(PersistError):
            load_sgraph(tmp_path / "nothing")

    def test_bad_format_version(self, built_sgraph, tmp_path):
        save_sgraph(built_sgraph, tmp_path / "snap")
        meta = json.loads((tmp_path / "snap" / "meta.json").read_text())
        meta["format_version"] = 999
        (tmp_path / "snap" / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(PersistError):
            load_sgraph(tmp_path / "snap")

    def test_missing_table_detected(self, built_sgraph, tmp_path):
        save_sgraph(built_sgraph, tmp_path / "snap")
        tables = json.loads((tmp_path / "snap" / "tables.json").read_text())
        del tables["distance"]
        (tmp_path / "snap" / "tables.json").write_text(json.dumps(tables))
        with pytest.raises(PersistError):
            load_sgraph(tmp_path / "snap")

    def test_verify_catches_tampered_table(self, built_sgraph, tmp_path):
        save_sgraph(built_sgraph, tmp_path / "snap")
        tables = json.loads((tmp_path / "snap" / "tables.json").read_text())
        hub, table = next(iter(tables["distance"]["forward"].items()))
        vertex = next(iter(table))
        table[vertex] = table[vertex] + 5.0
        (tmp_path / "snap" / "tables.json").write_text(json.dumps(tables))
        with pytest.raises(PersistError):
            load_sgraph(tmp_path / "snap", verify=True)
        # Unverified load still succeeds structurally (caveat documented).
        load_sgraph(tmp_path / "snap")

    def test_non_integer_ids_rejected(self, tmp_path):
        sg = SGraph.from_edges([("a", "b", 1.0)],
                               config=SGraphConfig(num_hubs=1))
        sg.rebuild_indexes()
        with pytest.raises(PersistError):
            save_sgraph(sg, tmp_path / "snap")
