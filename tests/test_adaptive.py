"""AdaptiveEngine tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveEngine
from repro.core.hub_index import HubIndex
from repro.core.semiring import BOTTLENECK_CAPACITY
from repro.errors import ConfigError, QueryError
from repro.graph.generators import erdos_renyi_graph, power_law_graph
from tests.conftest import reference_dijkstra


class TestConstruction:
    def test_distance_only(self, triangle_graph):
        index = HubIndex(triangle_graph, [0], semiring=BOTTLENECK_CAPACITY)
        with pytest.raises(ConfigError):
            AdaptiveEngine(triangle_graph, index)

    def test_threshold_validation(self, triangle_graph):
        index = HubIndex(triangle_graph, [0])
        with pytest.raises(ConfigError):
            AdaptiveEngine(triangle_graph, index, gap_threshold=0.5)
        assert AdaptiveEngine(triangle_graph, index).gap_threshold == 2.5

    def test_missing_endpoint(self, triangle_graph):
        engine = AdaptiveEngine(triangle_graph, HubIndex(triangle_graph, [0]))
        with pytest.raises(QueryError):
            engine.best_cost(0, 99)


class TestDispatch:
    def test_exact_bounds_skip_search(self, line_graph):
        engine = AdaptiveEngine(line_graph, HubIndex(line_graph, [0]))
        value, stats = engine.best_cost(0, 4)
        assert value == 4.0
        assert stats.answered_by_index
        assert engine.dispatch_counts()["index"] == 1

    def test_unreachable_proof(self, two_components):
        engine = AdaptiveEngine(two_components,
                                HubIndex(two_components, [0, 2]))
        value, stats = engine.best_cost(0, 3)
        assert value == math.inf
        assert stats.answered_by_index

    def test_same_vertex(self, triangle_graph):
        engine = AdaptiveEngine(triangle_graph, HubIndex(triangle_graph, [0]))
        assert engine.best_cost(1, 1)[0] == 0.0

    def test_threshold_extremes_control_dispatch(self):
        graph = power_law_graph(400, 4, seed=4, weight_range=(1.0, 4.0))
        index = HubIndex.build(graph, 8)
        verts = sorted(graph.vertices())
        pairs = [(verts[i], verts[-1 - i]) for i in range(10)]

        always_pruned = AdaptiveEngine(graph, index, gap_threshold=1e9)
        always_plain = AdaptiveEngine(graph, index, gap_threshold=1.0)
        for s, t in pairs:
            always_pruned.best_cost(s, t)
            always_plain.best_cost(s, t)
        assert always_pruned.dispatch_counts()["plain"] == 0
        # gap==1.0 pairs are answered from the index, so only non-exact
        # pairs reach dispatch — all of them must go plain.
        assert always_plain.dispatch_counts()["pruned"] == 0

    @given(st.integers(0, 10_000), st.floats(1.0, 5.0))
    @settings(max_examples=10, deadline=None)
    def test_always_exact(self, seed, threshold):
        graph = erdos_renyi_graph(20, 36, seed=seed, weight_range=(1.0, 5.0))
        hubs = sorted(graph.vertices(), key=graph.degree)[-3:]
        engine = AdaptiveEngine(graph, HubIndex(graph, hubs),
                                gap_threshold=threshold)
        verts = sorted(graph.vertices())
        ref = reference_dijkstra(graph, verts[0])
        for t in verts[1:]:
            value, _stats = engine.best_cost(verts[0], t)
            assert value == pytest.approx(ref.get(t, math.inf))
