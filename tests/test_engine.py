"""PairwiseEngine correctness under every pruning policy.

The make-or-break property: pruning must never change the answer.  Checked
against textbook Dijkstra on random graphs (directed and undirected, both
semirings), plus stats semantics and error handling.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.core.pruning import PruningPolicy
from repro.core.semiring import BOTTLENECK_CAPACITY, SHORTEST_DISTANCE
from repro.errors import ConfigError, QueryError
from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
)
from tests.conftest import reference_dijkstra, reference_widest

ALL_POLICIES = list(PruningPolicy)


class TestConstruction:
    def test_policy_requires_index(self, triangle_graph):
        with pytest.raises(ConfigError):
            PairwiseEngine(triangle_graph, policy=PruningPolicy.UPPER_ONLY)

    def test_policy_string_parsing(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        assert engine.policy is PruningPolicy.NONE

    def test_semiring_conflict_rejected(self, triangle_graph):
        index = HubIndex(triangle_graph, [0])
        with pytest.raises(ConfigError):
            PairwiseEngine(triangle_graph, index=index,
                           semiring=BOTTLENECK_CAPACITY)

    def test_semiring_inherited_from_index(self, triangle_graph):
        index = HubIndex(triangle_graph, [0], semiring=BOTTLENECK_CAPACITY)
        engine = PairwiseEngine(triangle_graph, index=index)
        assert engine.semiring is index.semiring
        assert engine.index is index

    def test_default_semiring(self, triangle_graph):
        assert PairwiseEngine(
            triangle_graph, policy="none"
        ).semiring is SHORTEST_DISTANCE

    def test_index_graph_mismatch_rejected(self, triangle_graph, line_graph):
        index = HubIndex(triangle_graph, [0])
        with pytest.raises(ConfigError):
            PairwiseEngine(line_graph, index=index)


class TestBasicQueries:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_triangle(self, triangle_graph, policy):
        index = HubIndex(triangle_graph, [1]) if policy.uses_index else None
        engine = PairwiseEngine(triangle_graph, index=index, policy=policy)
        value, _stats = engine.best_cost(0, 2)
        assert value == 3.0

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_unreachable(self, two_components, policy):
        index = HubIndex(two_components, [0]) if policy.uses_index else None
        engine = PairwiseEngine(two_components, index=index, policy=policy)
        value, _stats = engine.best_cost(0, 3)
        assert value == math.inf

    def test_same_endpoint(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        value, stats = engine.best_cost(1, 1)
        assert value == 0.0
        assert stats.activations == 0

    def test_missing_endpoint_raises(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        with pytest.raises(QueryError):
            engine.best_cost(0, 99)
        with pytest.raises(QueryError):
            engine.best_cost(99, 0)

    def test_directed_asymmetry(self, directed_diamond):
        engine = PairwiseEngine(directed_diamond, policy="none")
        assert engine.best_cost(0, 3)[0] == 2.0
        assert engine.best_cost(3, 0)[0] == math.inf


class TestIndexShortCircuits:
    def test_exact_bounds_skip_search(self, line_graph):
        index = HubIndex(line_graph, [0])
        engine = PairwiseEngine(line_graph, index=index)
        value, stats = engine.best_cost(0, 4)
        assert value == 4.0
        assert stats.answered_by_index
        assert stats.activations == 0

    def test_unreachable_proof_skips_search(self, two_components):
        index = HubIndex(two_components, [0, 2])
        engine = PairwiseEngine(two_components, index=index)
        value, stats = engine.best_cost(0, 3)
        assert value == math.inf
        assert stats.answered_by_index
        assert stats.activations == 0

    def test_upper_only_never_answers_finite_from_index(self, line_graph):
        index = HubIndex(line_graph, [0])
        engine = PairwiseEngine(line_graph, index=index, policy="upper-only")
        value, stats = engine.best_cost(0, 4)
        assert value == 4.0
        assert not stats.answered_by_index


class TestReachability:
    def test_feasible_true(self, line_graph):
        index = HubIndex(line_graph, [2])
        engine = PairwiseEngine(line_graph, index=index)
        ok, stats = engine.feasible(0, 4)
        assert ok
        assert stats.answered_by_index  # finite witness via the hub

    def test_feasible_false_via_proof(self, two_components):
        index = HubIndex(two_components, [0, 2])
        engine = PairwiseEngine(two_components, index=index)
        ok, stats = engine.feasible(0, 2)
        assert not ok
        assert stats.answered_by_index

    def test_feasible_without_index(self, two_components):
        engine = PairwiseEngine(two_components, policy="none")
        assert engine.feasible(0, 1)[0]
        assert not engine.feasible(0, 2)[0]

    def test_feasible_stops_early(self, small_powerlaw):
        engine = PairwiseEngine(small_powerlaw, policy="none")
        verts = sorted(small_powerlaw.vertices())
        ok, stats = engine.feasible(verts[0], verts[1])
        assert ok
        # Early exit: far fewer activations than full exploration.
        assert stats.activations < small_powerlaw.num_vertices


class TestStats:
    def test_pruning_reduces_activations(self, small_grid):
        pairs = [(0, 63), (7, 56), (3, 60)]
        index = HubIndex.build(small_grid, 6, strategy="far-apart", seed=1)
        none_engine = PairwiseEngine(small_grid, policy="none")
        lb_engine = PairwiseEngine(small_grid, index=index)
        total_none = total_lb = 0
        for s, t in pairs:
            v0, st0 = none_engine.best_cost(s, t)
            v1, st1 = lb_engine.best_cost(s, t)
            assert v0 == pytest.approx(v1)
            total_none += st0.activations
            total_lb += st1.activations
        assert total_lb < total_none

    def test_counters_populate(self, small_grid):
        index = HubIndex.build(small_grid, 4, strategy="far-apart")
        engine = PairwiseEngine(small_grid, index=index)
        _value, stats = engine.best_cost(0, 63)
        assert stats.pushes >= stats.activations
        assert stats.relaxations >= stats.activations
        row = stats.as_row()
        assert set(row) >= {"act", "push", "relax"}


def _check_policy_equivalence(graph, hubs, semiring, oracle):
    index = HubIndex(graph, hubs, semiring=semiring)
    engines = [
        PairwiseEngine(graph, policy="none", semiring=semiring),
        PairwiseEngine(graph, index=index, policy="upper-only"),
        PairwiseEngine(graph, index=index, policy="upper+lower"),
    ]
    verts = sorted(graph.vertices())
    truth = {v: oracle(graph, v) for v in verts[:8]}
    for s in verts[:8]:
        for t in verts:
            expected = truth[s].get(t, semiring.unreachable)
            if s == t:
                expected = semiring.source_value
            for engine in engines:
                value, _stats = engine.best_cost(s, t)
                assert value == pytest.approx(expected), (
                    f"{engine.policy.value}: {s}->{t} got {value}, "
                    f"want {expected}"
                )


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_distance_policies_agree_undirected(seed):
    graph = erdos_renyi_graph(16, 28, seed=seed, weight_range=(1.0, 5.0))
    hubs = sorted(graph.vertices(), key=graph.degree)[-3:]
    _check_policy_equivalence(graph, hubs, SHORTEST_DISTANCE,
                              reference_dijkstra)


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_distance_policies_agree_directed(seed):
    graph = erdos_renyi_graph(14, 50, seed=seed, directed=True,
                              weight_range=(1.0, 5.0))
    hubs = list(graph.vertices())[:3]
    _check_policy_equivalence(graph, hubs, SHORTEST_DISTANCE,
                              reference_dijkstra)


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_capacity_policies_agree(seed):
    graph = erdos_renyi_graph(14, 24, seed=seed, weight_range=(1.0, 5.0))
    hubs = list(graph.vertices())[:3]
    _check_policy_equivalence(graph, hubs, BOTTLENECK_CAPACITY,
                              reference_widest)


@given(st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_powerlaw_distance_agreement(seed):
    graph = power_law_graph(60, 3, seed=seed, weight_range=(1.0, 5.0))
    hubs = sorted(graph.vertices(), key=graph.degree)[-4:]
    _check_policy_equivalence(graph, hubs, SHORTEST_DISTANCE,
                              reference_dijkstra)
