"""Multiprocess shm serving: export/attach parity, epoch handoff, cleanup.

The serving plane's contract is threefold: workers attached over shared
memory answer *bit-identically* to the in-process dict reference (values
and stats counters), every published epoch is handed off without torn
reads or stale answers labeled with the wrong epoch, and no shm segment
outlives the session — including when a worker is SIGKILLed mid-query.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.pruning import PruningPolicy
from repro.graph.dynamic_graph import DynamicGraph
from repro.serving import PlaneGraph, ShmPlane, leaked_segments, shm_available
from repro.sgraph import SGraph
from repro.streaming.versioning import VersionedStore

pytestmark = [
    pytest.mark.shm,
    pytest.mark.skipif(not shm_available(),
                       reason="POSIX shared memory unavailable"),
]


def _random_graph(seed: int, directed: bool = False, n: int = 60,
                  m: int = 180) -> DynamicGraph:
    rng = random.Random(seed)
    g = DynamicGraph(directed=directed)
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u, v = rng.randrange(n - 3), rng.randrange(n - 3)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, rng.uniform(0.5, 3.0))
        added += 1
    return g


def _sgraph(seed: int, directed: bool = False) -> SGraph:
    return SGraph(graph=_random_graph(seed, directed),
                  config=SGraphConfig(num_hubs=6, queries=("distance",)))


def _stats_tuple(stats):
    return (
        stats.activations,
        stats.pushes,
        stats.relaxations,
        stats.pruned_by_upper_bound,
        stats.pruned_by_lower_bound,
        stats.answered_by_index,
    )


def _dict_reference(view, policy=PruningPolicy.UPPER_AND_LOWER):
    """An index-backed dict engine over the view's frozen snapshot."""
    return PairwiseEngine(
        view.snapshot,
        index=view.engine("distance").index,
        policy=policy,
    )


class TestShmPlaneRoundTrip:
    @pytest.mark.parametrize("directed", [False, True])
    def test_export_attach_parity(self, directed):
        sg = _sgraph(11, directed)
        store = VersionedStore(sg)
        view = store.publish()
        plane = view.dense_plane("distance")
        name = f"rptest-rt{int(directed)}"
        exported = ShmPlane.export(plane, name, epoch=view.epoch)
        try:
            attached = ShmPlane.attach(name)
            assert attached.epoch == view.epoch
            assert attached.directed == directed
            remote = attached.as_dense_plane()
            engine = PairwiseEngine(
                PlaneGraph(remote.csr),
                policy=PruningPolicy.UPPER_AND_LOWER,
                dense=remote,
            )
            reference = _dict_reference(view)
            rng = random.Random(5)
            verts = sorted(sg.graph.vertices())
            for _ in range(40):
                s, t = rng.sample(verts, 2)
                value, stats = engine.best_cost(s, t)
                ref_value, ref_stats = reference.best_cost(s, t)
                assert value == ref_value
                assert _stats_tuple(stats) == _stats_tuple(ref_stats)
            engine = remote = None  # drop views before unmapping
            attached.close()
        finally:
            exported.close()
            exported.unlink()
        assert leaked_segments(name) == []

    def test_attach_is_zero_copy(self):
        sg = _sgraph(12)
        store = VersionedStore(sg)
        view = store.publish()
        name = "rptest-zc"
        exported = ShmPlane.export(view.dense_plane("distance"), name)
        try:
            attached = ShmPlane.attach(name)
            arrays = attached.arrays()
            assert all(not a.flags.writeable for a in arrays.values())
            # mutate through the writer's view; the reader sees it (shared
            # bytes, not a pickle round-trip)
            exported.arrays()["weights"][0] = 99.5
            assert arrays["weights"][0] == 99.5
            arrays = None  # drop views before unmapping
            attached.close()
        finally:
            exported.close()
            exported.unlink()


class TestServeSessionParity:
    def test_pool_matches_dict_reference(self):
        sg = _sgraph(21)
        with sg.serve(workers=2) as session:
            prefix = session.prefix
            view = session.store.latest()
            reference = _dict_reference(view)
            rng = random.Random(9)
            verts = sorted(sg.graph.vertices())
            pairs = [tuple(rng.sample(verts, 2)) for _ in range(80)]
            answers = session.map_distance(pairs)
            for (s, t), (value, stats, epoch) in zip(pairs, answers):
                ref_value, ref_stats = reference.best_cost(s, t)
                assert value == ref_value
                assert _stats_tuple(stats) == _stats_tuple(ref_stats)
                assert epoch == view.epoch
        assert leaked_segments(prefix) == []

    def test_batched_and_expansion_verbs(self):
        sg = _sgraph(22)
        with sg.serve(workers=2) as session:
            view = session.store.latest()
            values, stats, epoch = session.distance_many(0, list(range(1, 30)))
            assert values == view.distance_many(0, list(range(1, 30)))
            nn, _ = session.nearest(0, 5)
            assert [d for _, d in nn] == [d for _, d in view.nearest(0, 5)]
            within, _ = session.within(0, 2.5)
            assert sorted(within) == sorted(view.within(0, 2.5))

    def test_chunked_distance_many_matches_single_requests(self):
        """The fan-out merge is exactly the sum of its single-request parts.

        Slicing the target list at chunk boundaries and asking each slice
        as its own (single-worker-path) request must reproduce the chunked
        fan-out bit for bit: disjoint value union, summed counters,
        ``answered_by_index`` AND-ed.
        """
        sg = _sgraph(24)
        targets = list(range(1, 42))
        chunk = 10
        with sg.serve(workers=3, chunk=chunk) as session:
            merged_values, merged_stats, merged_epoch = session.distance_many(
                0, targets
            )
            assert merged_epoch == session.store.latest().epoch
            expected_values = {}
            expected = (0, 0, 0, 0, 0, True)
            for i in range(0, len(targets), chunk):
                part = targets[i:i + chunk]
                values, stats, epoch = session.distance_many(0, part)
                assert epoch == merged_epoch
                expected_values.update(values)
                s = _stats_tuple(stats)
                expected = tuple(a + b for a, b in zip(expected[:5], s[:5])
                                 ) + (expected[5] and s[5],)
            assert merged_values == expected_values
            assert _stats_tuple(merged_stats) == expected
            # and the values agree with the frozen view's full batch
            view_values = session.store.latest().distance_many(0, targets)
            for t, v in view_values.items():
                assert merged_values[t] == pytest.approx(v)

    def test_chunk_knob_and_stats_row(self):
        sg = _sgraph(25)
        with sg.serve(workers=1, chunk=5) as session:
            assert session.chunk == 5
            row = session.stats_row()
            assert row["transport"] == "shm"
            assert row["chunk"] == 5
            assert row["workers"] == row["alive"] == 1
            assert row["epoch"] == session.store.latest().epoch
            assert row["slots_held"] >= 1
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            sg.serve(workers=1, chunk=0)

    def test_workspace_reuse_counters_steady_state(self):
        """Zero O(V) allocations per request: after warm-up, every worker's
        ``workspace_allocs`` is frozen while hits/resets track throughput —
        and a same-|V| epoch handoff does not move it either."""
        sg = _sgraph(26)
        rng = random.Random(11)
        verts = sorted(sg.graph.vertices())
        with sg.serve(workers=2) as session:
            pairs = [tuple(rng.sample(verts, 2)) for _ in range(40)]
            session.map_distance(pairs)
            session.distance_many(0, list(range(1, 25)))
            session.nearest(0, 5)
            rows = {r["worker"]: r for r in session.workspace_stats()}
            assert len(rows) == 2
            for row in rows.values():
                assert row["workspace_allocs"] == 1
                # every acquire after a worker's first was a reuse hit
                assert row["workspace_hits"] == row["workspace_resets"] - 1
                assert row["workspace_resets"] >= 1
                assert row["touched_reset"] >= 1
            # the session row aggregates the same counters
            agg = session.stats_row()
            assert agg["workspace_allocs"] == 2
            assert agg["workspace_resets"] == sum(
                r["workspace_resets"] for r in rows.values()
            )

            # same-|V| epoch handoff: workers rebind engines, not arrays
            sg.add_edge(verts[0], verts[50], 0.2)
            view = session.publish()
            for _ in range(20):
                s, t = rng.sample(verts, 2)
                _value, _stats, epoch = session.distance(s, t)
            after = {r["worker"]: r for r in session.workspace_stats()}
            for worker_id, row in after.items():
                assert row["workspace_allocs"] == 1, row
                assert (row["workspace_resets"]
                        >= rows[worker_id]["workspace_resets"])
            assert any(r["epoch"] == view.epoch for r in after.values())

    def test_unreachable_and_bad_endpoint(self):
        sg = _sgraph(23)
        with sg.serve(workers=1) as session:
            # 57..59 are isolated vertices: finite graph, infinite distance
            value, _stats, _epoch = session.distance(0, 58)
            assert value == math.inf
            from repro.errors import QueryError
            with pytest.raises(QueryError):
                session.distance(0, 10**9)


class TestEpochHandoff:
    def test_three_epoch_handoff_no_torn_reads(self):
        """Workers keep answering while the writer publishes 3 epochs; every
        answer must match the dict reference *of the epoch it reports*."""
        sg = _sgraph(31)
        rng = random.Random(13)
        verts = sorted(sg.graph.vertices())
        with sg.serve(workers=2) as session:
            prefix = session.prefix
            references = {
                session.store.latest().epoch:
                    _dict_reference(session.store.latest())
            }
            served_epochs = set()
            for round_no in range(3):
                for _ in range(30):
                    s, t = rng.sample(verts, 2)
                    value, stats, epoch = session.distance(s, t)
                    assert epoch in references
                    ref_value, ref_stats = references[epoch].best_cost(s, t)
                    assert value == ref_value
                    assert _stats_tuple(stats) == _stats_tuple(ref_stats)
                    served_epochs.add(epoch)
                # writer ingests and publishes a new epoch mid-serve
                u, v = rng.sample(verts[:40], 2)
                sg.add_edge(u, v, rng.uniform(0.1, 0.4))
                view = session.publish()
                references[view.epoch] = _dict_reference(view)
            # drain one more batch on the final epoch
            final_epoch = session.store.latest().epoch
            for _ in range(10):
                s, t = rng.sample(verts, 2)
                _value, _stats, epoch = session.distance(s, t)
                served_epochs.add(epoch)
            assert final_epoch in served_epochs
            assert len(served_epochs) >= 2  # handoff actually happened
        assert leaked_segments(prefix) == []

    def test_retired_plane_unlinked_after_reattach(self):
        sg = _sgraph(32)
        with sg.serve(workers=1) as session:
            prefix = session.prefix
            first = session.board.current_epoch()
            session.distance(0, 1)  # worker now holds epoch `first`
            sg.add_edge(0, 55, 0.2)
            session.publish()
            session.distance(0, 55)  # forces detach old / attach new
            names = [name for _slot, name, _e, _rc, _st in
                     session.board.slots()]
            assert f"{prefix}e{first}" not in names
            assert leaked_segments(f"{prefix}e{first}") == []
        assert leaked_segments(prefix) == []


class TestWorkerCrash:
    def test_killed_worker_leaves_no_segments(self):
        sg = _sgraph(41)
        rng = random.Random(17)
        verts = sorted(sg.graph.vertices())
        # respawn=False: this test pins the degraded-survivor protocol (a
        # respawned worker would legitimately re-pin the current slot).
        with sg.serve(workers=2, respawn=False) as session:
            prefix = session.prefix
            pairs = [tuple(rng.sample(verts, 2)) for _ in range(60)]
            before = session.map_distance(pairs)
            session.pool.kill_worker(0)
            assert session.pool.dead() == [0]
            # map_distance reaps the corpse and resubmits lost chunks
            after = session.map_distance(pairs)
            assert [a[0] for a in after] == [b[0] for b in before]
            # the dead worker's board refcount was returned
            assert all(refcount <= 1 for _s, _n, _e, refcount, _st
                       in session.board.slots())
        assert leaked_segments(prefix) == []

    def test_crash_then_publish_still_hands_off(self):
        sg = _sgraph(42)
        with sg.serve(workers=2) as session:
            prefix = session.prefix
            session.distance(0, 1)
            session.pool.kill_worker(1)
            session.reap()
            sg.add_edge(0, 56, 0.3)
            session.publish()
            value, _stats, epoch = session.distance(0, 56)
            assert value == pytest.approx(0.3)
            assert epoch == session.store.latest().epoch
        assert leaked_segments(prefix) == []
