"""IndexedHeap unit + property tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.pqueue import IndexedHeap


class TestBasics:
    def test_empty(self):
        h = IndexedHeap()
        assert len(h) == 0
        assert not h
        assert 3 not in h

    def test_push_pop_single(self):
        h = IndexedHeap()
        assert h.push(7, 1.5)
        assert 7 in h
        assert h.priority(7) == 1.5
        assert h.pop() == (7, 1.5)
        assert not h

    def test_pop_order(self):
        h = IndexedHeap()
        for key, pri in [(1, 3.0), (2, 1.0), (3, 2.0)]:
            h.push(key, pri)
        assert [h.pop()[0] for _ in range(3)] == [2, 3, 1]

    def test_decrease_key(self):
        h = IndexedHeap()
        h.push(1, 5.0)
        h.push(2, 3.0)
        assert h.push(1, 1.0)  # decrease
        assert h.priority(1) == 1.0
        assert h.pop() == (1, 1.0)

    def test_increase_ignored(self):
        h = IndexedHeap()
        h.push(1, 1.0)
        assert not h.push(1, 5.0)
        assert h.priority(1) == 1.0
        assert len(h) == 1

    def test_equal_priority_ignored(self):
        h = IndexedHeap()
        h.push(1, 1.0)
        assert not h.push(1, 1.0)

    def test_peek_does_not_remove(self):
        h = IndexedHeap()
        h.push(5, 2.0)
        assert h.peek() == (5, 2.0)
        assert len(h) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().peek()

    def test_remove_present(self):
        h = IndexedHeap()
        for i in range(10):
            h.push(i, float(10 - i))
        assert h.remove(5)
        assert 5 not in h
        popped = [h.pop()[0] for _ in range(len(h))]
        assert 5 not in popped
        assert popped == sorted(popped, key=lambda k: 10 - k)

    def test_remove_absent(self):
        h = IndexedHeap()
        h.push(1, 1.0)
        assert not h.remove(2)
        assert len(h) == 1

    def test_remove_last_element(self):
        h = IndexedHeap()
        h.push(1, 1.0)
        assert h.remove(1)
        assert not h

    def test_clear(self):
        h = IndexedHeap()
        for i in range(5):
            h.push(i, float(i))
        h.clear()
        assert not h
        h.push(1, 1.0)
        assert h.pop() == (1, 1.0)

    def test_clear_retains_backing_storage(self):
        """clear() empties in place — the backing list and position dict
        survive, so a reused heap never re-allocates its storage."""
        h = IndexedHeap()
        backing_heap, backing_pos = h._heap, h._pos
        for i in range(100):
            h.push(i, float(i))
        h.clear()
        assert not h
        assert h._heap is backing_heap
        assert h._pos is backing_pos
        for round_ in range(3):
            for i in range(50):
                h.push(i, float((i * 7 + round_) % 50))
            drained = [h.pop()[1] for _ in range(len(h))]
            assert drained == sorted(drained)
            h.clear()
            assert h._heap is backing_heap and h._pos is backing_pos

    def test_clear_after_partial_drain(self):
        """clear() mid-drain leaves a fully consistent empty heap: stale
        positions are gone and every key can be re-pushed as new."""
        h = IndexedHeap()
        for i in range(20):
            h.push(i, float(i))
        for _ in range(7):  # partial drain, then abandon the search
            h.pop()
        h.remove(15)
        h.clear()
        assert len(h) == 0
        assert 3 not in h and 15 not in h
        assert h.priority(8) is None
        # Every key — popped, removed, or abandoned — re-inserts as new.
        for i in range(20):
            assert h.push(i, float(20 - i))
        assert [h.pop()[0] for _ in range(20)] == list(range(19, -1, -1))

    def test_iter_yields_all(self):
        h = IndexedHeap()
        for i in range(6):
            h.push(i, float(i % 3))
        assert sorted(key for _p, key in h) == list(range(6))

    def test_priority_absent_is_none(self):
        assert IndexedHeap().priority(4) is None


class TestAgainstHeapq:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.floats(0, 100, allow_nan=False)),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pop_sequence_matches_best_known(self, ops):
        """Popping drains keys in nondecreasing final-priority order, and
        each key's popped priority equals the minimum it was pushed with."""
        h = IndexedHeap()
        best = {}
        for key, pri in ops:
            h.push(key, pri)
            if key not in best or pri < best[key]:
                best[key] = pri
        popped = []
        while h:
            popped.append(h.pop())
        assert {k for k, _ in popped} == set(best)
        priorities = [p for _, p in popped]
        assert priorities == sorted(priorities)
        for key, pri in popped:
            assert pri == best[key]

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_interleaved_push_pop_remove(self, seed):
        rng = random.Random(seed)
        h = IndexedHeap()
        shadow = {}
        for _ in range(300):
            action = rng.random()
            if action < 0.6 or not shadow:
                key = rng.randrange(40)
                pri = rng.uniform(0, 50)
                changed = h.push(key, pri)
                if key not in shadow or pri < shadow[key]:
                    assert changed
                    shadow[key] = pri
                else:
                    assert not changed
            elif action < 0.8:
                key, pri = h.pop()
                assert pri == shadow[key]
                assert shadow[key] == min(shadow.values())
                del shadow[key]
            else:
                key = rng.randrange(40)
                assert h.remove(key) == (key in shadow)
                shadow.pop(key, None)
            assert len(h) == len(shadow)
