"""Hub selection strategy tests."""

from __future__ import annotations

import pytest

from repro.core.hub_selection import (
    STRATEGIES,
    select_by_degree,
    select_far_apart,
    select_hubs,
    select_random,
)
from repro.errors import ConfigError
from repro.graph.dynamic_graph import DynamicGraph


@pytest.fixture
def star_plus_path():
    """Star centered at 0 (degree 6) plus a long path hanging off leaf 1."""
    g = DynamicGraph()
    for leaf in range(1, 7):
        g.add_edge(0, leaf)
    for i in range(10, 15):
        g.add_edge(i, i + 1)
    g.add_edge(1, 10)
    return g


class TestDegree:
    def test_picks_highest_degree(self, star_plus_path):
        assert select_by_degree(star_plus_path, 1) == [0]

    def test_tie_break_by_id(self):
        g = DynamicGraph()
        g.add_edge(5, 6)
        g.add_edge(1, 2)
        assert select_by_degree(g, 2) == [1, 2]

    def test_count_validation(self, star_plus_path):
        with pytest.raises(ConfigError):
            select_by_degree(star_plus_path, 0)
        with pytest.raises(ConfigError):
            select_by_degree(star_plus_path, 10_000)


class TestRandom:
    def test_deterministic(self, star_plus_path):
        assert select_random(star_plus_path, 4, seed=2) == select_random(
            star_plus_path, 4, seed=2
        )

    def test_distinct(self, star_plus_path):
        hubs = select_random(star_plus_path, 6, seed=3)
        assert len(set(hubs)) == 6

    def test_all_vertices_allowed(self, star_plus_path):
        n = star_plus_path.num_vertices
        assert sorted(select_random(star_plus_path, n, seed=1)) == sorted(
            star_plus_path.vertices()
        )


class TestFarApart:
    def test_starts_from_max_degree(self, star_plus_path):
        hubs = select_far_apart(star_plus_path, 1)
        assert hubs == [0]

    def test_second_hub_is_far(self, star_plus_path):
        hubs = select_far_apart(star_plus_path, 2)
        # The farthest vertex from the star center is the path's end.
        assert hubs[1] == 15

    def test_distinct(self, star_plus_path):
        hubs = select_far_apart(star_plus_path, 5, seed=1)
        assert len(set(hubs)) == 5

    def test_covers_components(self, two_components):
        hubs = select_far_apart(two_components, 2, seed=0)
        comp_a = {0, 1}
        comp_b = {2, 3}
        assert (set(hubs) & comp_a) and (set(hubs) & comp_b)


class TestPathCover:
    def test_bridge_vertex_selected(self):
        """Two cliques joined by one cut vertex: every cross path passes it."""
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph()
        for a in range(4):
            for b in range(a + 1, 4):
                g.add_edge(a, b)
                g.add_edge(10 + a, 10 + b)
        g.add_edge(0, 99)
        g.add_edge(99, 10)
        from repro.core.hub_selection import select_path_cover

        hubs = select_path_cover(g, 1, seed=3, sample_pairs=200)
        # Every cross-clique path runs through the 0–99–10 corridor; the
        # selected hub must lie on it.
        assert hubs[0] in {0, 99, 10}

    def test_distinct_and_complete(self, star_plus_path):
        from repro.core.hub_selection import select_path_cover

        hubs = select_path_cover(star_plus_path, 5, seed=1)
        assert len(hubs) == 5
        assert len(set(hubs)) == 5

    def test_deterministic(self, star_plus_path):
        from repro.core.hub_selection import select_path_cover

        assert select_path_cover(star_plus_path, 3, seed=4) == \
            select_path_cover(star_plus_path, 3, seed=4)

    def test_fallback_fills_count(self):
        """A graph with no length-3 paths still yields the full hub count."""
        from repro.core.hub_selection import select_path_cover
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        hubs = select_path_cover(g, 3, seed=1)
        assert len(hubs) == 3


class TestDispatch:
    def test_registry_complete(self):
        assert set(STRATEGIES) == {"degree", "random", "far-apart",
                                   "path-cover"}

    @pytest.mark.parametrize("strategy", list(STRATEGIES))
    def test_dispatch_runs(self, star_plus_path, strategy):
        hubs = select_hubs(star_plus_path, 3, strategy=strategy, seed=1)
        assert len(hubs) == 3
        assert all(star_plus_path.has_vertex(h) for h in hubs)

    def test_unknown_strategy(self, star_plus_path):
        with pytest.raises(ConfigError):
            select_hubs(star_plus_path, 2, strategy="psychic")
