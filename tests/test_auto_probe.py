"""The backend="auto" startup probe (``SGraphConfig(auto_probe=True)``).

Contract: with the probe off, the crossover uses the compiled-in
:data:`AUTO_DENSE_QUERY_RATIO` constant; with it on, the first publish
runs one timed probe (cold dense build vs per-query dict/dense gap) and
every later crossover decision uses the measured, clamped ratio.  The
probe runs once, falls back to the constant on unmeasurable graphs, and
never perturbs the EMA its result feeds.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import SGraphConfig
from repro.graph.dynamic_graph import DynamicGraph
from repro.sgraph import (
    AUTO_DENSE_QUERY_RATIO,
    AUTO_PROBE_MAX_RATIO,
    AUTO_PROBE_MIN_RATIO,
    SGraph,
)
from repro.streaming.versioning import VersionedStore


def _graph(seed: int = 0, n: int = 80, m: int = 240) -> DynamicGraph:
    rng = random.Random(seed)
    g = DynamicGraph()
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, rng.uniform(0.5, 3.0))
        added += 1
    return g


def test_default_is_compiled_in_constant():
    sg = SGraph(graph=_graph(), config=SGraphConfig(num_hubs=4))
    assert sg.auto_ratio == AUTO_DENSE_QUERY_RATIO
    VersionedStore(sg).publish()
    # probe disabled: publishing measures nothing
    assert sg.auto_ratio == AUTO_DENSE_QUERY_RATIO
    assert sg._auto_ratio is None


def test_probe_runs_once_at_first_publish(monkeypatch):
    sg = SGraph(graph=_graph(1),
                config=SGraphConfig(num_hubs=4, auto_probe=True))
    calls = []
    real = SGraph._probe_auto_ratio

    def counting(self):
        calls.append(1)
        return real(self)

    monkeypatch.setattr(SGraph, "_probe_auto_ratio", counting)
    store = VersionedStore(sg)
    store.publish()
    assert len(calls) == 1
    assert AUTO_PROBE_MIN_RATIO <= sg.auto_ratio <= AUTO_PROBE_MAX_RATIO
    first = sg.auto_ratio
    sg.add_edge(0, 79, 0.2)
    store.publish()
    assert len(calls) == 1  # one-shot: later publishes reuse the measurement
    assert sg.auto_ratio == first


def test_probe_does_not_perturb_ema():
    sg = SGraph(graph=_graph(2),
                config=SGraphConfig(num_hubs=4, auto_probe=True))
    VersionedStore(sg).publish()
    # the probe queried engines directly; the crossover saw zero queries
    assert sg._auto_queries == 0
    assert sg._auto_ema == 0.0


def test_probe_skipped_for_non_auto_backend():
    sg = SGraph(graph=_graph(3),
                config=SGraphConfig(num_hubs=4, auto_probe=True,
                                    backend="dense"))
    VersionedStore(sg).publish()
    assert sg._auto_ratio is None


def test_probe_falls_back_on_unmeasurable_graph():
    sg = SGraph(config=SGraphConfig(num_hubs=4, auto_probe=True))
    sg.add_vertex(0)
    VersionedStore(sg).publish()
    assert sg.auto_ratio == AUTO_DENSE_QUERY_RATIO


@pytest.mark.parametrize("ratio,backend", [(1.0, "dense"), (64.0, "dict")])
def test_crossover_uses_probed_ratio(ratio, backend):
    sg = SGraph(graph=_graph(4), config=SGraphConfig(num_hubs=4))
    sg.rebuild_indexes()
    sg._auto_ratio = ratio
    # one pending query against a fresh EMA: crosses over iff ratio <= 1
    assert sg.serving_backend("distance") == backend


def test_probed_ratio_drives_note_query():
    sg = SGraph(graph=_graph(5), config=SGraphConfig(num_hubs=4))
    sg.rebuild_indexes()
    sg._auto_ratio = 2.0
    assert not sg._note_query()  # 1st query: below the measured ratio
    assert sg._note_query()      # 2nd query reaches it
