"""The plane codec: the byte format both transports speak.

Contract: encoding a :class:`DensePlane` and decoding the bytes yields
bit-identical buffers at 64-byte-aligned offsets, the digest is stable
across encodes of the same plane, and a materialized plane answers
queries bit-identically (values and stats) to the original.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.pruning import PruningPolicy
from repro.errors import ConfigError
from repro.graph.dynamic_graph import DynamicGraph
from repro.serving.codec import (
    ALIGN,
    CHUNK_BYTES,
    PlaneGraph,
    apply_plane_delta,
    decode_plane,
    delta_header,
    delta_patch_bytes,
    diff_manifests,
    encode_buffers,
    encode_plane,
    encode_plane_delta,
    encoded_size,
    materialize_plane,
    payload_manifest,
    plane_digest,
)
from repro.sgraph import SGraph
from repro.streaming.versioning import VersionedStore


def _random_graph(seed: int, directed: bool = False, n: int = 60,
                  m: int = 180) -> DynamicGraph:
    rng = random.Random(seed)
    g = DynamicGraph(directed=directed)
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u, v = rng.randrange(n - 3), rng.randrange(n - 3)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, rng.uniform(0.5, 3.0))
        added += 1
    return g


def _published_plane(seed: int, directed: bool = False):
    sg = SGraph(graph=_random_graph(seed, directed),
                config=SGraphConfig(num_hubs=6, queries=("distance",)))
    view = VersionedStore(sg).publish()
    return sg, view, view.dense_plane("distance")


class TestRoundTrip:
    @pytest.mark.parametrize("directed", [False, True])
    def test_buffers_bit_identical(self, directed):
        _sg, view, plane = _published_plane(51, directed)
        payload = encode_plane(plane, epoch=view.epoch)
        assert len(payload) == encoded_size(plane, epoch=view.epoch)
        manifest, arrays = decode_plane(payload)
        assert manifest["epoch"] == view.epoch
        assert manifest["directed"] == directed
        np.testing.assert_array_equal(arrays["indptr"], plane.csr.indptr)
        np.testing.assert_array_equal(arrays["indices"], plane.csr.indices)
        np.testing.assert_array_equal(arrays["weights"], plane.csr.weights)
        np.testing.assert_array_equal(arrays["ids"],
                                      np.asarray(plane.csr.ids))
        F, B = plane.tables._stacked()
        np.testing.assert_array_equal(arrays["F"], F)
        if directed:
            np.testing.assert_array_equal(arrays["rev_indptr"],
                                          plane.csr.rev_indptr)
            if "B" in arrays:
                np.testing.assert_array_equal(arrays["B"], B)
        assert all(not a.flags.writeable for a in arrays.values())

    def test_buffer_offsets_are_aligned(self):
        _sg, view, plane = _published_plane(52, directed=True)
        payload = encode_plane(plane)
        manifest, _arrays = decode_plane(payload)
        for spec in manifest["buffers"].values():
            assert spec["offset"] % ALIGN == 0

    def test_digest_stable_and_content_sensitive(self):
        _sg, view, plane = _published_plane(53)
        a = encode_plane(plane, epoch=view.epoch)
        b = encode_plane(plane, epoch=view.epoch)
        assert a == b
        assert plane_digest(a) == plane_digest(b)
        c = encode_plane(plane, epoch=view.epoch + 1)
        assert plane_digest(c) != plane_digest(a)

    def test_materialized_plane_answers_bit_identically(self):
        sg, view, plane = _published_plane(54)
        manifest, arrays = decode_plane(encode_plane(plane,
                                                     epoch=view.epoch))
        remote = materialize_plane(manifest, arrays)
        engine = PairwiseEngine(
            PlaneGraph(remote.csr), policy=PruningPolicy.UPPER_AND_LOWER,
            dense=remote,
        )
        reference = PairwiseEngine(
            view.snapshot, index=view.engine("distance").index,
            policy=PruningPolicy.UPPER_AND_LOWER,
        )
        rng = random.Random(3)
        verts = sorted(sg.graph.vertices())
        for _ in range(40):
            s, t = rng.sample(verts, 2)
            value, stats = engine.best_cost(s, t)
            ref_value, ref_stats = reference.best_cost(s, t)
            assert value == ref_value
            assert (stats.activations, stats.pushes, stats.relaxations,
                    stats.answered_by_index) == (
                ref_stats.activations, ref_stats.pushes,
                ref_stats.relaxations, ref_stats.answered_by_index)

    def test_version_mismatch_rejected(self):
        _sg, _view, plane = _published_plane(55)
        payload = bytearray(encode_plane(plane))
        # corrupt the manifest's format version in place
        import json

        import numpy as np
        header = np.frombuffer(payload, dtype=np.uint64, count=2)
        mlen = int(header[0])
        manifest = json.loads(bytes(payload[16:16 + mlen]).decode("ascii"))
        manifest["version"] = 999
        mbytes = json.dumps(manifest, separators=(",", ":")).encode("ascii")
        # same-length rewrite keeps offsets valid
        if len(mbytes) == mlen:
            payload[16:16 + mlen] = mbytes
            with pytest.raises(ConfigError):
                decode_plane(payload)

    def test_sink_too_small_rejected(self):
        from repro.serving.codec import encode_plane_into

        _sg, _view, plane = _published_plane(56)
        with pytest.raises(ConfigError):
            encode_plane_into(plane, bytearray(16))


class TestChunkTables:
    """The chunk-addressed side of the format: dirty ranges and deltas."""

    def test_manifest_chunk_counts(self):
        x = np.arange(CHUNK_BYTES // 8 * 3 + 5, dtype=np.float64)
        payload = encode_buffers([("x", x)])
        spec = payload_manifest(payload)["buffers"]["x"]
        assert len(spec["chunks"]) == -(-x.nbytes // CHUNK_BYTES)
        assert all(len(c) == 16 for c in spec["chunks"])

    def test_empty_buffer_has_no_chunks(self):
        empty = np.zeros(0, dtype=np.float32)
        tail = np.ones(7, dtype=np.int32)
        payload = encode_buffers([("empty", empty), ("tail", tail)])
        manifest, arrays = decode_plane(payload)
        assert manifest["buffers"]["empty"]["chunks"] == []
        assert arrays["empty"].size == 0
        np.testing.assert_array_equal(arrays["tail"], tail)
        # a delta whose base and target both carry the empty buffer is
        # composable and names no patches for it
        delta = encode_plane_delta(payload, payload)
        assert not any(n == "empty" for n, _s, _e
                       in delta_header(delta)["patches"])
        assert apply_plane_delta(payload, delta) == payload

    def test_dirty_ranges_cover_exactly_the_churn(self):
        x = np.zeros(CHUNK_BYTES, dtype=np.float64)  # 8 chunks
        base = encode_buffers([("x", x)])
        y = x.copy()
        y[0] = 1.0                        # chunk 0
        y[CHUNK_BYTES // 8 * 5] = 2.0     # chunk 5
        target = encode_buffers([("x", y)])
        dirty = diff_manifests(payload_manifest(base),
                               payload_manifest(target))
        assert dirty["x"] == [(0, CHUNK_BYTES),
                              (5 * CHUNK_BYTES, 6 * CHUNK_BYTES)]
        delta = encode_plane_delta(base, target)
        assert delta_patch_bytes(delta) == 2 * CHUNK_BYTES
        assert len(delta) < len(target)
        assert apply_plane_delta(base, delta) == target

    def test_adjacent_dirty_chunks_coalesce(self):
        x = np.zeros(CHUNK_BYTES, dtype=np.float64)
        base = encode_buffers([("x", x)])
        y = x.copy()
        y[CHUNK_BYTES // 8 * 2:CHUNK_BYTES // 8 * 4] = 3.0  # chunks 2+3
        target = encode_buffers([("x", y)])
        dirty = diff_manifests(payload_manifest(base),
                               payload_manifest(target))
        assert dirty["x"] == [(2 * CHUNK_BYTES, 4 * CHUNK_BYTES)]

    @pytest.mark.parametrize("new_len", [CHUNK_BYTES // 8 * 8 + 100,
                                         CHUNK_BYTES // 8 * 2])
    def test_growth_and_shrink_force_full_buffer_patch(self, new_len):
        x = np.arange(CHUNK_BYTES, dtype=np.float64)
        base = encode_buffers([("x", x)])
        y = np.arange(new_len, dtype=np.float64)
        target = encode_buffers([("x", y)])
        dirty = diff_manifests(payload_manifest(base),
                               payload_manifest(target))
        assert dirty["x"] is None
        delta = encode_plane_delta(base, target)
        assert delta_patch_bytes(delta) == y.nbytes
        assert apply_plane_delta(base, delta) == target

    def test_dtype_change_forces_full_resend(self):
        x = np.arange(512, dtype=np.float64)
        base = encode_buffers([("x", x)])
        target = encode_buffers([("x", x.astype(np.float32))])
        dirty = diff_manifests(payload_manifest(base),
                               payload_manifest(target))
        assert dirty["x"] is None
        delta = encode_plane_delta(base, target)
        assert delta_patch_bytes(delta) == x.astype(np.float32).nbytes
        assert apply_plane_delta(base, delta) == target

    def test_new_buffer_arrives_whole_and_dropped_buffer_vanishes(self):
        x = np.arange(600, dtype=np.float64)
        z = np.arange(40, dtype=np.int32)
        base = encode_buffers([("x", x)])
        target = encode_buffers([("x", x), ("z", z)])
        dirty = diff_manifests(payload_manifest(base),
                               payload_manifest(target))
        assert dirty["x"] == [] and dirty["z"] is None
        assert apply_plane_delta(base, encode_plane_delta(base, target)) \
            == target
        # the reverse direction simply stops mentioning z
        back = diff_manifests(payload_manifest(target),
                              payload_manifest(base))
        assert set(back) == {"x"}
        assert apply_plane_delta(target, encode_plane_delta(target, base)) \
            == base

    def test_identical_plane_delta_is_header_only(self):
        """A republish under a new epoch ships zero buffer bytes."""
        _sg, view, plane = _published_plane(57)
        base = encode_plane(plane, epoch=view.epoch)
        target = encode_plane(plane, epoch=view.epoch + 1)
        delta = encode_plane_delta(base, target)
        assert delta_patch_bytes(delta) == 0
        assert len(delta) < len(target) // 4
        assert apply_plane_delta(base, delta) == target

    def test_published_epochs_compose_bit_identically(self):
        """Real churn: the composed payload answers like the full fetch."""
        sg, view, plane = _published_plane(58)
        store = VersionedStore(sg)
        base = encode_plane(plane, epoch=view.epoch)
        verts = sorted(sg.graph.vertices())
        rng = random.Random(21)
        for _ in range(5):
            u, v = rng.sample(verts[:20], 2)
            sg.add_edge(u, v, rng.uniform(0.1, 0.4))
        new_view = store.publish()
        target = encode_plane(new_view.dense_plane("distance"),
                              epoch=new_view.epoch)
        delta = encode_plane_delta(base, target)
        composed = apply_plane_delta(base, delta)
        assert composed == target
        assert plane_digest(composed) == plane_digest(target)
        manifest, arrays = decode_plane(composed)
        remote = materialize_plane(manifest, arrays)
        engine = PairwiseEngine(
            PlaneGraph(remote.csr), policy=PruningPolicy.UPPER_AND_LOWER,
            dense=remote,
        )
        for _ in range(20):
            s, t = rng.sample(verts, 2)
            value, _stats = engine.best_cost(s, t)
            assert value == new_view.distance(s, t).value

    def test_wrong_base_rejected(self):
        _sg, view, plane = _published_plane(59)
        a = encode_plane(plane, epoch=view.epoch)
        b = encode_plane(plane, epoch=view.epoch + 1)
        c = encode_plane(plane, epoch=view.epoch + 2)
        delta = encode_plane_delta(b, c)
        with pytest.raises(ConfigError, match="base mismatch"):
            apply_plane_delta(a, delta)

    def test_corrupt_patch_bytes_rejected(self):
        x = np.zeros(2048, dtype=np.float64)
        base = encode_buffers([("x", x)])
        y = x.copy()
        y[5] = 9.0
        target = encode_buffers([("x", y)])
        delta = bytearray(encode_plane_delta(base, target))
        delta[-1] ^= 0xFF  # flip one patched byte
        with pytest.raises(ConfigError, match="digest"):
            apply_plane_delta(base, bytes(delta))
