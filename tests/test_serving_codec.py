"""The plane codec: the byte format both transports speak.

Contract: encoding a :class:`DensePlane` and decoding the bytes yields
bit-identical buffers at 64-byte-aligned offsets, the digest is stable
across encodes of the same plane, and a materialized plane answers
queries bit-identically (values and stats) to the original.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.pruning import PruningPolicy
from repro.errors import ConfigError
from repro.graph.dynamic_graph import DynamicGraph
from repro.serving.codec import (
    ALIGN,
    PlaneGraph,
    decode_plane,
    encode_plane,
    encoded_size,
    materialize_plane,
    plane_digest,
)
from repro.sgraph import SGraph
from repro.streaming.versioning import VersionedStore


def _random_graph(seed: int, directed: bool = False, n: int = 60,
                  m: int = 180) -> DynamicGraph:
    rng = random.Random(seed)
    g = DynamicGraph(directed=directed)
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u, v = rng.randrange(n - 3), rng.randrange(n - 3)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, rng.uniform(0.5, 3.0))
        added += 1
    return g


def _published_plane(seed: int, directed: bool = False):
    sg = SGraph(graph=_random_graph(seed, directed),
                config=SGraphConfig(num_hubs=6, queries=("distance",)))
    view = VersionedStore(sg).publish()
    return sg, view, view.dense_plane("distance")


class TestRoundTrip:
    @pytest.mark.parametrize("directed", [False, True])
    def test_buffers_bit_identical(self, directed):
        _sg, view, plane = _published_plane(51, directed)
        payload = encode_plane(plane, epoch=view.epoch)
        assert len(payload) == encoded_size(plane, epoch=view.epoch)
        manifest, arrays = decode_plane(payload)
        assert manifest["epoch"] == view.epoch
        assert manifest["directed"] == directed
        np.testing.assert_array_equal(arrays["indptr"], plane.csr.indptr)
        np.testing.assert_array_equal(arrays["indices"], plane.csr.indices)
        np.testing.assert_array_equal(arrays["weights"], plane.csr.weights)
        np.testing.assert_array_equal(arrays["ids"],
                                      np.asarray(plane.csr.ids))
        F, B = plane.tables._stacked()
        np.testing.assert_array_equal(arrays["F"], F)
        if directed:
            np.testing.assert_array_equal(arrays["rev_indptr"],
                                          plane.csr.rev_indptr)
            if "B" in arrays:
                np.testing.assert_array_equal(arrays["B"], B)
        assert all(not a.flags.writeable for a in arrays.values())

    def test_buffer_offsets_are_aligned(self):
        _sg, view, plane = _published_plane(52, directed=True)
        payload = encode_plane(plane)
        manifest, _arrays = decode_plane(payload)
        for spec in manifest["buffers"].values():
            assert spec["offset"] % ALIGN == 0

    def test_digest_stable_and_content_sensitive(self):
        _sg, view, plane = _published_plane(53)
        a = encode_plane(plane, epoch=view.epoch)
        b = encode_plane(plane, epoch=view.epoch)
        assert a == b
        assert plane_digest(a) == plane_digest(b)
        c = encode_plane(plane, epoch=view.epoch + 1)
        assert plane_digest(c) != plane_digest(a)

    def test_materialized_plane_answers_bit_identically(self):
        sg, view, plane = _published_plane(54)
        manifest, arrays = decode_plane(encode_plane(plane,
                                                     epoch=view.epoch))
        remote = materialize_plane(manifest, arrays)
        engine = PairwiseEngine(
            PlaneGraph(remote.csr), policy=PruningPolicy.UPPER_AND_LOWER,
            dense=remote,
        )
        reference = PairwiseEngine(
            view.snapshot, index=view.engine("distance").index,
            policy=PruningPolicy.UPPER_AND_LOWER,
        )
        rng = random.Random(3)
        verts = sorted(sg.graph.vertices())
        for _ in range(40):
            s, t = rng.sample(verts, 2)
            value, stats = engine.best_cost(s, t)
            ref_value, ref_stats = reference.best_cost(s, t)
            assert value == ref_value
            assert (stats.activations, stats.pushes, stats.relaxations,
                    stats.answered_by_index) == (
                ref_stats.activations, ref_stats.pushes,
                ref_stats.relaxations, ref_stats.answered_by_index)

    def test_version_mismatch_rejected(self):
        _sg, _view, plane = _published_plane(55)
        payload = bytearray(encode_plane(plane))
        # corrupt the manifest's format version in place
        import json

        import numpy as np
        header = np.frombuffer(payload, dtype=np.uint64, count=2)
        mlen = int(header[0])
        manifest = json.loads(bytes(payload[16:16 + mlen]).decode("ascii"))
        manifest["version"] = 999
        mbytes = json.dumps(manifest, separators=(",", ":")).encode("ascii")
        # same-length rewrite keeps offsets valid
        if len(mbytes) == mlen:
            payload[16:16 + mlen] = mbytes
            with pytest.raises(ConfigError):
                decode_plane(payload)

    def test_sink_too_small_rejected(self):
        from repro.serving.codec import encode_plane_into

        _sg, _view, plane = _published_plane(56)
        with pytest.raises(ConfigError):
            encode_plane_into(plane, bytearray(16))
