"""Graph statistics and query-pair sampling tests."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.stats import (
    connected_components,
    degree_sequence,
    degree_skew,
    estimate_diameter,
    largest_component,
    profile_graph,
    sample_vertex_pairs,
)


class TestComponents:
    def test_two_components(self, two_components):
        comps = connected_components(two_components)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]

    def test_largest_component(self):
        g = DynamicGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(5, 6)
        assert sorted(largest_component(g)) == [0, 1, 2]

    def test_largest_component_empty_raises(self):
        with pytest.raises(GraphError):
            largest_component(DynamicGraph())

    def test_directed_weak_connectivity(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 1)  # 2 only reaches 1; still weakly connected
        assert len(connected_components(g)) == 1


class TestDegreeStats:
    def test_sequence(self, triangle_graph):
        assert sorted(degree_sequence(triangle_graph)) == [2, 2, 2]

    def test_skew_regular_graph_is_one(self, triangle_graph):
        assert degree_skew(degree_sequence(triangle_graph)) == pytest.approx(1.0)

    def test_skew_star(self):
        g = DynamicGraph()
        for leaf in range(1, 11):
            g.add_edge(0, leaf)
        degrees = degree_sequence(g)
        assert degree_skew(degrees) == pytest.approx(10 / (20 / 11))

    def test_skew_empty(self):
        assert degree_skew([]) == 0.0


class TestDiameter:
    def test_path_graph(self, line_graph):
        assert estimate_diameter(line_graph, samples=4) == 4

    def test_single_vertex(self):
        g = DynamicGraph()
        g.add_vertex(0)
        assert estimate_diameter(g) == 0

    def test_empty(self):
        assert estimate_diameter(DynamicGraph()) == 0

    def test_lower_bound_property(self, small_grid):
        # 8x8 grid has hop diameter 14; the double sweep must not exceed it
        # and should find most of it.
        est = estimate_diameter(small_grid, samples=6)
        assert 7 <= est <= 14


class TestProfile:
    def test_profile_fields(self, small_powerlaw):
        profile = profile_graph(small_powerlaw)
        assert profile.num_vertices == small_powerlaw.num_vertices
        assert profile.num_edges == small_powerlaw.num_edges
        assert profile.max_degree >= profile.mean_degree
        assert 0 < profile.largest_component_fraction <= 1.0
        row = profile.as_row()
        assert row["|V|"] == profile.num_vertices
        assert "diam~" in row


class TestPairSampling:
    def test_count_and_distinct_endpoints(self, small_powerlaw):
        pairs = sample_vertex_pairs(small_powerlaw, 25, seed=3)
        assert len(pairs) == 25
        assert all(s != t for s, t in pairs)

    def test_deterministic(self, small_powerlaw):
        a = sample_vertex_pairs(small_powerlaw, 10, seed=3)
        b = sample_vertex_pairs(small_powerlaw, 10, seed=3)
        assert a == b

    def test_connected_only_stays_in_lcc(self, two_components):
        pairs = sample_vertex_pairs(two_components, 10, seed=1,
                                    connected_only=True)
        lcc = set(largest_component(two_components))
        assert all(s in lcc and t in lcc for s, t in pairs)

    def test_min_hops_respected(self, line_graph):
        pairs = sample_vertex_pairs(line_graph, 5, seed=2, min_hops=3)
        # On the path 0-1-2-3-4 only pairs >= 3 hops apart qualify.
        for s, t in pairs:
            assert abs(s - t) >= 3

    def test_impossible_min_hops_raises(self, triangle_graph):
        with pytest.raises(GraphError):
            sample_vertex_pairs(triangle_graph, 5, seed=2, min_hops=5)

    def test_too_few_vertices_raises(self):
        g = DynamicGraph()
        g.add_vertex(0)
        with pytest.raises(GraphError):
            sample_vertex_pairs(g, 1, seed=0, connected_only=False)
