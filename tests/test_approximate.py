"""Approximate (bounded-error) distance query tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.core.semiring import BOTTLENECK_CAPACITY
from repro.errors import ConfigError
from repro.graph.generators import erdos_renyi_graph, power_law_graph
from repro.graph.stats import sample_vertex_pairs
from repro.sgraph import SGraph
from tests.conftest import reference_dijkstra


class TestValidation:
    def test_negative_tolerance_rejected(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        with pytest.raises(ConfigError):
            engine.best_cost(0, 2, tolerance=-0.1)

    def test_capacity_tolerance_rejected(self, triangle_graph):
        index = HubIndex(triangle_graph, [0], semiring=BOTTLENECK_CAPACITY)
        engine = PairwiseEngine(triangle_graph, index=index)
        with pytest.raises(ConfigError):
            engine.best_cost(0, 2, tolerance=0.1)

    def test_zero_tolerance_is_exact(self, triangle_graph):
        index = HubIndex(triangle_graph, [1])
        engine = PairwiseEngine(triangle_graph, index=index)
        assert engine.best_cost(0, 2, tolerance=0.0)[0] == 3.0


class TestGuarantee:
    @given(st.integers(0, 10_000), st.floats(0.0, 1.0))
    @settings(max_examples=15, deadline=None)
    def test_within_factor_of_optimum(self, seed, tolerance):
        graph = erdos_renyi_graph(20, 36, seed=seed, weight_range=(1.0, 5.0))
        hubs = sorted(graph.vertices(), key=graph.degree)[-3:]
        index = HubIndex(graph, hubs)
        engine = PairwiseEngine(graph, index=index)
        verts = sorted(graph.vertices())
        ref = reference_dijkstra(graph, verts[0])
        for t in verts[1:]:
            opt = ref.get(t, math.inf)
            value, _stats = engine.best_cost(verts[0], t, tolerance=tolerance)
            if opt == math.inf:
                assert value == math.inf
            else:
                assert opt - 1e-9 <= value <= (1.0 + tolerance) * opt + 1e-9

    def test_tolerance_reduces_work(self):
        graph = power_law_graph(1500, 5, seed=3, weight_range=(1.0, 4.0))
        index = HubIndex.build(graph, 16)
        engine = PairwiseEngine(graph, index=index)
        pairs = sample_vertex_pairs(graph, 20, seed=4, min_hops=2)
        exact_act = approx_act = 0
        approx_from_index = 0
        for s, t in pairs:
            _v, st_exact = engine.best_cost(s, t)
            _v, st_approx = engine.best_cost(s, t, tolerance=1.0)
            exact_act += st_exact.activations
            approx_act += st_approx.activations
            if st_approx.answered_by_index:
                approx_from_index += 1
        assert approx_act < exact_act
        assert approx_from_index > 0  # some queries close from bounds alone


class TestFacade:
    def test_facade_tolerance(self):
        graph = power_law_graph(400, 4, seed=5, weight_range=(1.0, 4.0))
        sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=8))
        pairs = sample_vertex_pairs(graph, 10, seed=6)
        for s, t in pairs:
            exact = sg.distance(s, t).value
            approx = sg.distance(s, t, tolerance=0.5).value
            assert exact <= approx <= 1.5 * exact + 1e-9
