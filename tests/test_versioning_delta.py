"""Differential tests for delta-derived versions.

Under a randomized churn script, every :class:`FrozenView` published along
the way must keep answering ``distance`` / ``hop_distance`` / ``reachable``
/ ``within_distance`` exactly as a from-scratch rebuild of the graph state
at that epoch — the copy-on-write sharing between snapshots, and the
journal-derived frozen hub tables, must never leak later mutations into an
older view.  Plus unit coverage for the delta substrate itself
(:mod:`repro.graph.deltas`) and the O(Δ) bookkeeping.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.config import SGraphConfig
from repro.graph.deltas import (
    TOMBSTONE,
    CostJournal,
    LayeredMapping,
    derive_mapping,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi_graph
from repro.sgraph import SGraph
from repro.streaming.versioning import VersionedStore


# ---------------------------------------------------------------------------
# delta substrate
# ---------------------------------------------------------------------------

class TestLayeredMapping:
    def test_derive_overlays_and_tombstones(self):
        base = {1: "a", 2: "b", 3: "c"}
        derived = derive_mapping(base, {2: "B", 3: TOMBSTONE, 4: "d"},
                                 min_compact=1000)
        assert isinstance(derived, LayeredMapping)
        assert derived.base is base
        assert dict(derived) == {1: "a", 2: "B", 4: "d"}
        assert len(derived) == 3
        assert 3 not in derived
        assert derived.get(3, "gone") == "gone"
        with pytest.raises(KeyError):
            derived[3]
        # The previous version is untouched.
        assert dict(base) == {1: "a", 2: "b", 3: "c"}

    def test_derive_is_chainable_without_stacking_levels(self):
        base = {i: i for i in range(100)}
        m = base
        for step in range(10):
            m = derive_mapping(m, {step: -step}, min_compact=1000)
        assert isinstance(m, LayeredMapping)
        # Still two levels deep: the base is the original dict.
        assert m.base is base
        assert m[5] == -5
        assert m[50] == 50

    def test_no_changes_returns_same_object(self):
        base = {1: "a"}
        assert derive_mapping(base, {}) is base

    def test_tombstone_then_reinsert(self):
        base = {1: "a"}
        gone = derive_mapping(base, {1: TOMBSTONE}, min_compact=1000)
        assert len(gone) == 0 and 1 not in gone
        back = derive_mapping(gone, {1: "z"}, min_compact=1000)
        assert dict(back) == {1: "z"}

    def test_compaction_returns_plain_dict(self):
        base = {i: i for i in range(20)}
        flat = derive_mapping(base, {i: -i for i in range(10)},
                              min_compact=4, compact_ratio=4)
        assert isinstance(flat, dict)
        assert flat[3] == -3 and flat[15] == 15
        assert flat is not base

    def test_equality_with_plain_dict(self):
        base = {1: 1.0, 2: 2.0}
        derived = derive_mapping(base, {2: 4.0}, min_compact=1000)
        assert derived == {1: 1.0, 2: 4.0}
        assert {1: 1.0, 2: 4.0} == derived


class TestCostJournal:
    def test_net_changes_and_noop_filtering(self):
        table = {1: 1.0, 2: 2.0}
        journal = CostJournal()
        journal.note(table, 1)
        table[1] = 5.0
        journal.note(table, 2)   # touched but ends up unchanged
        journal.note(table, 3)
        table[3] = 3.0
        journal.note(table, 1)   # second touch keeps first-seen old value
        full, changes = journal.drain(table)
        assert not full
        assert sorted(changes) == [(1, 1.0, 5.0), (3, None, 3.0)]
        # Drained: the next drain sees nothing.
        assert journal.drain(table) == (False, [])

    def test_deletion_entry(self):
        table = {7: 1.5}
        journal = CostJournal()
        journal.note(table, 7)
        del table[7]
        full, changes = journal.drain(table)
        assert not full and changes == [(7, 1.5, None)]

    def test_mark_full_resets(self):
        table = {1: 1.0}
        journal = CostJournal()
        journal.note(table, 1)
        journal.mark_full()
        assert journal.full and len(journal) == 0
        assert journal.drain(table) == (True, [])
        # A drain clears the full flag; journaling works again afterwards.
        journal.note(table, 1)
        table[1] = 9.0
        assert journal.drain(table) == (False, [(1, 1.0, 9.0)])


# ---------------------------------------------------------------------------
# copy-on-write snapshots
# ---------------------------------------------------------------------------

class TestSnapshotSharing:
    def test_unchanged_vertices_share_adjacency(self):
        g = DynamicGraph()
        for i in range(10):
            g.add_edge(i, i + 1, 1.0)
        s1 = g.snapshot()
        g.add_edge(0, 5, 2.0)
        s2 = g.snapshot()
        # Vertex 8 was untouched: both snapshots hold the same dict object.
        assert s2._out[8] is s1._out[8]
        # Vertex 0 changed: the objects differ and s1 kept the old contents.
        assert s2._out[0] is not s1._out[0]
        assert 5 not in s1._out[0] and 5 in s2._out[0]

    def test_snapshot_memoized_per_epoch(self):
        g = DynamicGraph()
        g.add_edge(0, 1, 1.0)
        s1 = g.snapshot()
        assert g.snapshot() is s1
        g.add_edge(1, 2, 1.0)
        s2 = g.snapshot()
        assert s2 is not s1
        assert g.snapshot() is s2

    def test_vertex_removal_tombstones(self):
        g = DynamicGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        s1 = g.snapshot()
        g.remove_vertex(0)
        s2 = g.snapshot()
        assert s1.has_vertex(0) and s1.has_edge(0, 1)
        assert not s2.has_vertex(0)
        assert sorted(s2.vertices()) == [1, 2, 3]
        assert s2.num_vertices == 3

    def test_live_mutation_after_snapshot_does_not_leak(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        snap = g.snapshot()
        g.add_edge(1, 3, 3.0)
        g.remove_edge(0, 1)
        assert dict(snap.out_items(1)) == {2: 2.0}
        assert dict(snap.in_items(1)) == {0: 1.0}
        assert snap.num_edges == 2


# ---------------------------------------------------------------------------
# randomized churn differential
# ---------------------------------------------------------------------------

def _churn_and_publish(directed: bool, seed: int, steps: int = 120,
                       publish_every: int = 10):
    """Run a random churn script, publishing along the way.

    Returns (store, published) where published holds
    ``(view, edge_list, vertex_list)`` captured at each publish.
    """
    rng = random.Random(seed)
    graph = erdos_renyi_graph(70, 220, seed=seed, directed=directed,
                              weight_range=(1.0, 5.0))
    config = SGraphConfig(num_hubs=4, queries=("distance", "hops"))
    sg = SGraph(graph=graph, config=config)
    sg.rebuild_indexes()
    store = VersionedStore(sg, capacity=64)
    published = []
    for step in range(steps):
        roll = rng.random()
        verts = list(sg.graph.vertices())
        if roll < 0.50:
            # Insert a fresh edge or re-weight an existing one.
            u, v = rng.choice(verts), rng.choice(verts)
            if u != v:
                sg.add_edge(u, v, rng.uniform(1.0, 5.0))
        elif roll < 0.85:
            edges = sg.graph.edge_list()
            if edges:
                s, d, _w = rng.choice(edges)
                sg.discard_edge(s, d)
        elif roll < 0.95:
            u, v = rng.choice(verts), rng.choice(verts)
            if u != v:
                sg.add_edge(u, v, rng.uniform(1.0, 5.0))
        else:
            # Occasional vertex removal; removing a hub forces a full index
            # rebuild, which must reset the freeze baseline correctly.
            victim = rng.choice(verts)
            if sg.graph.num_vertices > 10:
                sg.remove_vertex(victim)
        if step % publish_every == publish_every - 1:
            view = store.publish(label=f"step{step}")
            published.append((
                view,
                sg.graph.edge_list(),
                sorted(sg.graph.vertices()),
            ))
    return store, published, config


@pytest.mark.parametrize("directed", [False, True])
def test_views_match_from_scratch_rebuild(directed):
    _store, published, config = _churn_and_publish(directed, seed=31)
    assert len(published) >= 10
    check_rng = random.Random(99)
    for view, edges, verts in published:
        # Bit-identical structure: the shared snapshot must equal the edge
        # list recorded at publish time, untouched by later churn.
        assert sorted(view.snapshot.edge_list()) == sorted(edges)
        assert sorted(view.snapshot.vertices()) == verts

        oracle = SGraph.from_edges(edges, directed=directed, config=config)
        for v in verts:
            oracle.add_vertex(v)  # isolated vertices survive the round trip
        oracle.rebuild_indexes()
        for _ in range(12):
            s, t = check_rng.choice(verts), check_rng.choice(verts)
            expected = oracle.distance(s, t).value
            got = view.distance(s, t).value
            if math.isinf(expected):
                assert math.isinf(got), (view.label, s, t)
            else:
                assert got == pytest.approx(expected), (view.label, s, t)
            assert (view.hop_distance(s, t).value
                    == oracle.hop_distance(s, t).value), (view.label, s, t)
            assert (view.reachable(s, t).value
                    == oracle.reachable(s, t).value), (view.label, s, t)
            budget = 0.75 * expected if not math.isinf(expected) else 10.0
            assert (view.within_distance(s, t, budget).value
                    == oracle.within_distance(s, t, budget).value), (
                view.label, s, t, budget)


def test_frozen_tables_shared_when_unchanged():
    graph = erdos_renyi_graph(60, 180, seed=3, weight_range=(1.0, 4.0))
    sg = SGraph(graph=graph,
                config=SGraphConfig(num_hubs=4, queries=("distance",)))
    sg.rebuild_indexes()
    store = VersionedStore(sg, capacity=8)
    v1 = store.publish()
    # A far-away self-contained change: most hub tables see few updates, so
    # consecutive frozen tables share structure instead of being copies.
    sg.add_vertex(10_001)
    sg.add_vertex(10_002)
    sg.add_edge(10_001, 10_002, 1.0)
    v2 = store.publish()
    index = sg.index_for("distance")
    shared = 0
    for hub in index.hubs:
        t1 = v1._engines["distance"]._index.forward_tree(hub).raw_cost_table()
        t2 = v2._engines["distance"]._index.forward_tree(hub).raw_cost_table()
        if t1 is t2 or (isinstance(t2, LayeredMapping) and t2.base is t1):
            shared += 1
    assert shared == len(index.hubs)


def test_publish_tracks_last_published_epoch():
    graph = erdos_renyi_graph(40, 120, seed=5, weight_range=(1.0, 4.0))
    sg = SGraph(graph=graph,
                config=SGraphConfig(num_hubs=4, queries=("distance",)))
    sg.rebuild_indexes()
    assert sg.last_published_epoch is None
    store = VersionedStore(sg)
    store.publish()
    assert sg.last_published_epoch == sg.epoch
    before = sg.last_published_epoch
    sg.add_edge(0, 39, 2.0)
    assert sg.last_published_epoch == before
    store.publish()
    assert sg.last_published_epoch == sg.epoch
