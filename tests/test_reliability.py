"""Most-reliable-path algebra tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.core.semiring import RELIABILITY_PRODUCT
from repro.errors import ConfigError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi_graph
from repro.sgraph import SGraph


def reference_reliability(graph, source: int) -> dict:
    """Oracle: best product of probabilities from source to every vertex."""
    import heapq

    best = {source: 1.0}
    heap = [(-1.0, source)]
    done = set()
    while heap:
        negp, v = heapq.heappop(heap)
        p = -negp
        if v in done:
            continue
        done.add(v)
        for u, w in graph.out_items(v):
            np_ = p * w
            if np_ > best.get(u, 0.0):
                best[u] = np_
                heapq.heappush(heap, (-np_, u))
    return best


def _probability_graph(seed: int, n: int = 18, m: int = 32) -> DynamicGraph:
    base = erdos_renyi_graph(n, m, seed=seed)
    graph = DynamicGraph()
    rng = random.Random(seed + 1)
    for v in base.vertices():
        graph.add_vertex(v)
    for s, d, _w in base.edges():
        graph.add_edge(s, d, rng.uniform(0.05, 1.0))
    return graph


class TestSemiring:
    sr = RELIABILITY_PRODUCT

    def test_identities(self):
        assert self.sr.source_value == 1.0
        assert self.sr.unreachable == 0.0
        assert self.sr.name == "reliability"

    def test_extend_concat(self):
        assert self.sr.extend(0.5, 0.5) == 0.25
        assert self.sr.concat(0.5, 0.4) == 0.2

    def test_residual_cases(self):
        assert self.sr.residual_from_hub(0.0, 0.5) == 1.0   # no info
        assert self.sr.residual_from_hub(0.5, 0.0) == 0.0   # unreachable
        assert self.sr.residual_from_hub(0.5, 0.25) == 0.5  # binding
        assert self.sr.residual_from_hub(0.25, 0.5) == 1.0  # clamped
        assert self.sr.residual_to_hub(0.4, 0.8) == 0.5
        assert self.sr.residual_to_hub(0.0, 0.8) == 0.0
        assert self.sr.tighter_residual(0.3, 0.7) == 0.3


class TestEngine:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_policies_agree_with_oracle(self, seed):
        graph = _probability_graph(seed)
        hubs = sorted(graph.vertices(), key=graph.degree)[-3:]
        index = HubIndex(graph, hubs, semiring=RELIABILITY_PRODUCT)
        engines = [
            PairwiseEngine(graph, policy="none",
                           semiring=RELIABILITY_PRODUCT),
            PairwiseEngine(graph, index=index, policy="upper-only"),
            PairwiseEngine(graph, index=index, policy="upper+lower"),
        ]
        verts = sorted(graph.vertices())
        ref = reference_reliability(graph, verts[0])
        for t in verts[1:]:
            expected = ref.get(t, 0.0)
            for engine in engines:
                value, _stats = engine.best_cost(verts[0], t)
                assert value == pytest.approx(expected), engine.policy

    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_paths_valid(self, seed):
        from repro.core.paths import path_cost

        graph = _probability_graph(seed)
        index = HubIndex(graph, list(graph.vertices())[:2],
                         semiring=RELIABILITY_PRODUCT)
        engine = PairwiseEngine(graph, index=index)
        verts = sorted(graph.vertices())
        ref = reference_reliability(graph, verts[0])
        for t in verts[1:8]:
            value, path, _stats = engine.best_path(verts[0], t)
            assert value == pytest.approx(ref.get(t, 0.0))
            if path is not None:
                assert path_cost(graph, RELIABILITY_PRODUCT,
                                 path) == pytest.approx(value)


class TestMaintenance:
    def test_insert_and_lazy_delete(self):
        graph = DynamicGraph()
        graph.add_edge(0, 1, 0.9)
        graph.add_edge(1, 2, 0.9)
        from repro.streaming.incremental_sssp import IncrementalBestPath

        tree = IncrementalBestPath(graph, 0, RELIABILITY_PRODUCT)
        assert tree.cost(2) == pytest.approx(0.81)
        graph.add_edge(0, 2, 0.95)
        tree.on_edge_inserted(0, 2, 0.95)
        assert tree.cost(2) == pytest.approx(0.95)
        graph.remove_edge(0, 2)
        tree.on_edge_deleted(0, 2, 0.95)
        assert tree.dirty  # non-additive: lazy rebuild
        assert tree.cost(2) == pytest.approx(0.81)


class TestFacade:
    def test_reliability_queries(self):
        sg = SGraph.from_edges(
            [(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.5)],
            config=SGraphConfig(num_hubs=2, queries=("reliability",)),
        )
        result = sg.reliability(0, 2)
        assert result.value == pytest.approx(0.81)
        assert result.probability == pytest.approx(0.81)
        assert result.reachable

    def test_weight_validation(self):
        sg = SGraph.from_edges(
            [(0, 1, 2.0)],
            config=SGraphConfig(num_hubs=1, queries=("reliability",)),
        )
        with pytest.raises(ConfigError):
            sg.reliability(0, 1)

    def test_evolving(self):
        sg = SGraph.from_edges(
            [(0, 1, 0.9), (1, 2, 0.9)],
            config=SGraphConfig(num_hubs=2, queries=("reliability",)),
        )
        assert sg.reliability(0, 2).value == pytest.approx(0.81)
        sg.add_edge(0, 2, 0.99)
        assert sg.reliability(0, 2).value == pytest.approx(0.99)
        sg.remove_edge(0, 2)
        assert sg.reliability(0, 2).value == pytest.approx(0.81)

    def test_reliability_at_least(self):
        sg = SGraph.from_edges(
            [(0, 1, 0.9), (1, 2, 0.9)],
            config=SGraphConfig(num_hubs=2, queries=("reliability",)),
        )
        assert sg.reliability_at_least(0, 2, 0.8).value == 1.0
        assert sg.reliability_at_least(0, 2, 0.9).value == 0.0

    def test_persist_round_trip(self, tmp_path):
        from repro.persist import load_sgraph, save_sgraph

        graph = _probability_graph(5, n=30, m=60)
        sg = SGraph(graph=graph,
                    config=SGraphConfig(num_hubs=3, queries=("reliability",)))
        sg.rebuild_indexes()
        save_sgraph(sg, tmp_path / "rel")
        restored = load_sgraph(tmp_path / "rel", verify=True)
        verts = sorted(graph.vertices())
        for t in verts[1:10]:
            assert restored.reliability(verts[0], t).value == pytest.approx(
                sg.reliability(verts[0], t).value
            )
