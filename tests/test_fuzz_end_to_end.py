"""End-to-end fuzz: random interleavings of the whole public surface.

One randomized driver exercises mutations, every query kind, path queries,
budget queries, one-to-many, versioned views, and save/load in arbitrary
order against brute-force oracles computed on a shadow copy of the graph.
This is the test that catches cross-feature interactions no unit test
thinks to write.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SGraphConfig
from repro.core.paths import path_cost
from repro.core.semiring import SHORTEST_DISTANCE
from repro.graph.generators import erdos_renyi_graph
from repro.persist import load_sgraph, save_sgraph
from repro.sgraph import SGraph
from repro.streaming.versioning import VersionedStore
from tests.conftest import reference_dijkstra, reference_widest


def _ref_hops(graph, source):
    from collections import deque

    hops = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u, _w in graph.out_items(v):
            if u not in hops:
                hops[u] = hops[v] + 1
                queue.append(u)
    return hops


class Driver:
    """Applies one random action and checks it against oracles."""

    def __init__(self, seed: int, tmp_path=None, directed: bool = False):
        self.rng = random.Random(seed)
        self.graph = erdos_renyi_graph(
            18, 34, seed=seed % 997, directed=directed,
            weight_range=(1.0, 5.0),
        )
        self.sg = SGraph(
            graph=self.graph,
            config=SGraphConfig(
                num_hubs=3,
                queries=("distance", "hops", "capacity"),
            ),
        )
        self.sg.rebuild_indexes()
        self.verts = sorted(self.graph.vertices())
        self.store = VersionedStore(self.sg, capacity=2)
        self.published = []  # (view, frozen graph copy)
        self.tmp_path = tmp_path

    # -- actions ------------------------------------------------------------

    def act_mutate(self):
        u, v = self.rng.sample(self.verts, 2)
        if self.graph.has_edge(u, v) and self.rng.random() < 0.45:
            self.sg.remove_edge(u, v)
        else:
            self.sg.add_edge(u, v, self.rng.uniform(1.0, 5.0))

    def act_remove_vertex(self):
        """Remove a vertex (possibly a hub → index rebuild) and re-add it."""
        v = self.rng.choice(self.verts)
        self.sg.remove_vertex(v)
        self.sg.add_vertex(v)
        # Reconnect with a couple of edges so the vertex stays queryable.
        for u in self.rng.sample([x for x in self.verts if x != v], 2):
            self.sg.add_edge(v, u, self.rng.uniform(1.0, 5.0))

    def act_distance(self):
        s, t = self.rng.sample(self.verts, 2)
        expected = reference_dijkstra(self.graph, s).get(t, math.inf)
        assert self.sg.distance(s, t).value == pytest.approx(expected)

    def act_hops(self):
        s, t = self.rng.sample(self.verts, 2)
        expected = _ref_hops(self.graph, s).get(t, math.inf)
        assert self.sg.hop_distance(s, t).value == expected

    def act_capacity(self):
        s, t = self.rng.sample(self.verts, 2)
        expected = reference_widest(self.graph, s).get(t, -math.inf)
        assert self.sg.bottleneck(s, t).value == pytest.approx(expected)

    def act_path(self):
        s, t = self.rng.sample(self.verts, 2)
        expected = reference_dijkstra(self.graph, s).get(t, math.inf)
        result = self.sg.shortest_path(s, t)
        assert result.value == pytest.approx(expected)
        if result.path is not None:
            assert result.path[0] == s and result.path[-1] == t
            assert path_cost(self.graph, SHORTEST_DISTANCE,
                             result.path) == pytest.approx(expected)
        else:
            assert expected == math.inf

    def act_budget(self):
        s, t = self.rng.sample(self.verts, 2)
        budget = self.rng.uniform(0.5, 15.0)
        expected = reference_dijkstra(self.graph, s).get(t, math.inf) <= budget
        assert bool(self.sg.within_distance(s, t, budget).value) == expected

    def act_one_to_many(self):
        s = self.rng.choice(self.verts)
        targets = self.rng.sample(self.verts, 5)
        ref = reference_dijkstra(self.graph, s)
        results = self.sg.distance_many(s, targets)
        for t in targets:
            expected = 0.0 if t == s else ref.get(t, math.inf)
            assert results[t] == pytest.approx(expected)

    def act_tolerance(self):
        s, t = self.rng.sample(self.verts, 2)
        tol = self.rng.uniform(0.0, 1.0)
        opt = reference_dijkstra(self.graph, s).get(t, math.inf)
        value = self.sg.distance(s, t, tolerance=tol).value
        if opt == math.inf:
            assert value == math.inf
        else:
            assert opt - 1e-9 <= value <= (1 + tol) * opt + 1e-9

    def act_publish(self):
        view = self.store.publish()
        self.published.append((view, self.graph.copy()))
        if len(self.published) > 2:
            self.published.pop(0)

    def act_query_version(self):
        if not self.published:
            return
        view, frozen = self.rng.choice(self.published)
        s, t = self.rng.sample(self.verts, 2)
        expected = reference_dijkstra(frozen, s).get(t, math.inf)
        assert view.distance(s, t).value == pytest.approx(expected)

    def act_save_load(self):
        if self.tmp_path is None:
            return
        target = self.tmp_path / f"fuzz-{self.rng.randrange(1 << 30)}"
        save_sgraph(self.sg, target)
        restored = load_sgraph(target)
        s, t = self.rng.sample(self.verts, 2)
        assert restored.distance(s, t).value == pytest.approx(
            self.sg.distance(s, t).value
        )

    def run(self, steps: int):
        actions = [
            (self.act_mutate, 8),
            (self.act_remove_vertex, 1),
            (self.act_distance, 3),
            (self.act_hops, 2),
            (self.act_capacity, 2),
            (self.act_path, 2),
            (self.act_budget, 2),
            (self.act_one_to_many, 1),
            (self.act_tolerance, 1),
            (self.act_publish, 1),
            (self.act_query_version, 2),
            (self.act_save_load, 1),
        ]
        population = [fn for fn, weight in actions for _ in range(weight)]
        for _step in range(steps):
            self.rng.choice(population)()


@given(st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_fuzz_undirected(seed):
    Driver(seed).run(steps=45)


@given(st.integers(0, 10_000))
@settings(max_examples=4, deadline=None)
def test_fuzz_directed(seed):
    Driver(seed, directed=True).run(steps=35)


def test_fuzz_with_persistence(tmp_path):
    Driver(1234, tmp_path=tmp_path).run(steps=60)
