"""GraphSnapshot isolation and protocol tests."""

from __future__ import annotations

import pytest

from repro.errors import EdgeNotFoundError, VertexNotFoundError


class TestIsolation:
    def test_snapshot_frozen_against_later_mutation(self, triangle_graph):
        snap = triangle_graph.snapshot()
        triangle_graph.add_edge(2, 3, 1.0)
        triangle_graph.remove_edge(0, 1)
        assert snap.has_edge(0, 1)
        assert not snap.has_edge(2, 3)
        assert snap.num_edges == 3
        assert snap.num_vertices == 3

    def test_snapshot_epoch_recorded(self, triangle_graph):
        epoch = triangle_graph.epoch
        snap = triangle_graph.snapshot()
        assert snap.epoch == epoch
        triangle_graph.add_edge(5, 6)
        assert snap.epoch == epoch

    def test_two_snapshots_are_independent(self, line_graph):
        s1 = line_graph.snapshot()
        line_graph.remove_edge(0, 1)
        s2 = line_graph.snapshot()
        assert s1.has_edge(0, 1)
        assert not s2.has_edge(0, 1)

    def test_directed_snapshot_reverse_adjacency(self, directed_diamond):
        snap = directed_diamond.snapshot()
        directed_diamond.remove_edge(0, 1)
        assert dict(snap.in_items(1)) == {0: 1.0}
        assert dict(snap.out_items(0)) == {1: 1.0, 2: 2.0}


class TestMemoization:
    def test_same_epoch_returns_same_object(self, triangle_graph):
        assert triangle_graph.snapshot() is triangle_graph.snapshot()

    def test_mutation_invalidates_memo(self, triangle_graph):
        s1 = triangle_graph.snapshot()
        triangle_graph.add_edge(2, 3, 1.0)
        s2 = triangle_graph.snapshot()
        assert s2 is not s1
        assert s2.epoch > s1.epoch
        assert triangle_graph.snapshot() is s2

    def test_noop_mutation_keeps_epoch_and_memo(self, triangle_graph):
        s1 = triangle_graph.snapshot()
        # Same-weight re-add still advances the epoch at the graph layer,
        # so the snapshot is re-derived but must stay content-identical.
        triangle_graph.add_edge(0, 1, 1.0)
        s2 = triangle_graph.snapshot()
        assert sorted(s2.edge_list()) == sorted(s1.edge_list())


class TestProtocol:
    def test_counts_and_membership(self, triangle_graph):
        snap = triangle_graph.snapshot()
        assert len(snap) == 3
        assert 0 in snap
        assert 9 not in snap
        assert snap.has_vertex(1)
        assert not snap.directed

    def test_degrees(self, directed_diamond):
        snap = directed_diamond.snapshot()
        assert snap.out_degree(0) == 2
        assert snap.in_degree(3) == 2
        assert snap.degree(1) == 2

    def test_edge_weight(self, triangle_graph):
        snap = triangle_graph.snapshot()
        assert snap.edge_weight(0, 2) == 4.0
        with pytest.raises(EdgeNotFoundError):
            snap.edge_weight(0, 99)
        with pytest.raises(VertexNotFoundError):
            snap.edge_weight(99, 0)

    def test_missing_vertex_traversal_raises(self, triangle_graph):
        snap = triangle_graph.snapshot()
        with pytest.raises(VertexNotFoundError):
            snap.out_items(42)
        with pytest.raises(VertexNotFoundError):
            snap.in_items(42)

    def test_edges_match_source(self, small_powerlaw):
        snap = small_powerlaw.snapshot()
        assert sorted(snap.edge_list()) == sorted(small_powerlaw.edge_list())

    def test_repr(self, triangle_graph):
        assert "GraphSnapshot" in repr(triangle_graph.snapshot())

    def test_vertices_iteration(self, two_components):
        snap = two_components.snapshot()
        assert sorted(snap.vertices()) == [0, 1, 2, 3]
