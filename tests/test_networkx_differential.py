"""Differential tests against networkx — an oracle we didn't write.

The other suites validate against reference implementations in this repo;
these validate against an independent library, closing the "both copies
share the same bug" loophole for the headline query kinds.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SGraphConfig
from repro.graph.generators import erdos_renyi_graph, power_law_graph
from repro.sgraph import SGraph


def _to_nx(graph) -> "nx.Graph | nx.DiGraph":
    nxg = nx.DiGraph() if graph.directed else nx.Graph()
    nxg.add_nodes_from(graph.vertices())
    for s, d, w in graph.edges():
        nxg.add_edge(s, d, weight=w)
    return nxg


def _nx_distance(nxg, s, t) -> float:
    try:
        return nx.shortest_path_length(nxg, s, t, weight="weight")
    except nx.NetworkXNoPath:
        return math.inf


def _nx_hops(nxg, s, t) -> float:
    try:
        return float(nx.shortest_path_length(nxg, s, t))
    except nx.NetworkXNoPath:
        return math.inf


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_distance_and_hops_match_networkx_undirected(seed):
    graph = erdos_renyi_graph(25, 40, seed=seed, weight_range=(1.0, 5.0))
    sg = SGraph(graph=graph,
                config=SGraphConfig(num_hubs=4, queries=("distance", "hops")))
    nxg = _to_nx(graph)
    verts = sorted(graph.vertices())
    for t in verts[1:]:
        assert sg.distance(verts[0], t).value == pytest.approx(
            _nx_distance(nxg, verts[0], t)
        )
        assert sg.hop_distance(verts[0], t).value == _nx_hops(nxg, verts[0], t)


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_distance_matches_networkx_directed(seed):
    graph = erdos_renyi_graph(20, 70, seed=seed, directed=True,
                              weight_range=(1.0, 5.0))
    sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=3))
    nxg = _to_nx(graph)
    verts = sorted(graph.vertices())
    for t in verts[1:12]:
        assert sg.distance(verts[0], t).value == pytest.approx(
            _nx_distance(nxg, verts[0], t)
        )


@given(st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_shortest_path_cost_matches_networkx(seed):
    graph = power_law_graph(50, 3, seed=seed, weight_range=(1.0, 5.0))
    sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=4))
    nxg = _to_nx(graph)
    verts = sorted(graph.vertices())
    for t in verts[1:10]:
        result = sg.shortest_path(verts[0], t)
        expected = _nx_distance(nxg, verts[0], t)
        assert result.value == pytest.approx(expected)
        if result.path is not None:
            # The path must be real in networkx's view and cost the optimum.
            assert nx.is_simple_path(nxg, result.path) or len(result.path) == 1
            cost = sum(nxg[a][b]["weight"]
                       for a, b in zip(result.path, result.path[1:]))
            assert cost == pytest.approx(expected)


def test_evolving_agreement_with_networkx():
    import random

    graph = erdos_renyi_graph(30, 50, seed=5, weight_range=(1.0, 5.0))
    sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=4))
    verts = sorted(graph.vertices())
    sg.distance(verts[0], verts[1])  # build index
    rng = random.Random(6)
    for _ in range(40):
        u, v = rng.sample(verts, 2)
        if graph.has_edge(u, v) and rng.random() < 0.5:
            sg.remove_edge(u, v)
        else:
            sg.add_edge(u, v, rng.uniform(1.0, 5.0))
        nxg = _to_nx(graph)
        s, t = rng.sample(verts, 2)
        assert sg.distance(s, t).value == pytest.approx(_nx_distance(nxg, s, t))
