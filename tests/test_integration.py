"""End-to-end integration scenarios exercising the whole stack."""

from __future__ import annotations

import math

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.baselines.recompute import RecomputeEngine
from repro.baselines.streaming_engine import ContinuousPairwiseEngine
from repro.baselines.ub_only import UpperBoundOnlyEngine
from repro.core.config import SGraphConfig
from repro.graph.datasets import load_dataset
from repro.graph.stats import sample_vertex_pairs
from repro.sgraph import SGraph
from repro.streaming.ingest import IngestEngine
from repro.streaming.scheduler import EpochScheduler
from repro.streaming.workload import mixed_stream, sliding_window_stream


class TestFourSystemsAgree:
    """All four systems (SGraph, UB-only, recompute, continuous) must return
    identical distances over an evolving social graph."""

    def test_agreement_through_churn(self):
        graph = load_dataset("collab-sw")
        pairs = sample_vertex_pairs(graph, 8, seed=3, min_hops=2)

        sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=8))
        sg.distance(*pairs[0])  # build index
        ub_only = UpperBoundOnlyEngine(graph, num_hubs=8)
        recompute = RecomputeEngine(graph)
        continuous = ContinuousPairwiseEngine(graph)
        continuous.register_pairs(pairs)

        # SGraph mutations go through the facade; the other listeners ride
        # along on a second ingest engine sharing the same graph object is
        # NOT allowed (double mutation), so updates are applied via the
        # facade and mirrored to listeners manually.
        updates = list(sliding_window_stream(graph, 120, seed=4))
        for upd in updates:
            from repro.streaming.update import UpdateKind

            if upd.kind is UpdateKind.INSERT:
                existed = graph.has_edge(upd.src, upd.dst)
                old_w = graph.edge_weight(upd.src, upd.dst) if existed else None
                sg.add_edge(upd.src, upd.dst, upd.weight)
                if existed:
                    ub_only.notify_edge_deleted(upd.src, upd.dst, old_w)
                    continuous.notify_edge_deleted(upd.src, upd.dst, old_w)
                ub_only.notify_edge_inserted(upd.src, upd.dst, upd.weight)
                continuous.notify_edge_inserted(upd.src, upd.dst, upd.weight)
            else:
                if graph.has_edge(upd.src, upd.dst):
                    old_w = graph.edge_weight(upd.src, upd.dst)
                    sg.remove_edge(upd.src, upd.dst)
                    ub_only.notify_edge_deleted(upd.src, upd.dst, old_w)
                    continuous.notify_edge_deleted(upd.src, upd.dst, old_w)

        for s, t in pairs:
            expected = recompute.distance(s, t).value
            assert sg.distance(s, t).value == pytest.approx(expected)
            assert ub_only.distance(s, t).value == pytest.approx(expected)
            assert continuous.distance(s, t).value == pytest.approx(expected)


class TestScheduledWorkload:
    def test_mixed_stream_with_queries_and_oracle(self):
        graph = load_dataset("uniform-er")
        sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=6))
        pairs = sample_vertex_pairs(graph, 12, seed=5)
        sg.distance(*pairs[0])
        mismatches = []

        def checked_query(s, t):
            result = sg.distance(s, t)
            ref, _stats = dijkstra_distance(graph, s, t)
            if not math.isclose(result.value, ref, rel_tol=1e-9):
                if not (result.value == ref):  # both inf compares equal
                    mismatches.append((s, t, result.value, ref))
            return result

        report = EpochScheduler(sg, checked_query).run(
            mixed_stream(graph, 150, insert_fraction=0.6, seed=6),
            pairs,
            updates_per_round=30,
            queries_per_round=4,
        )
        assert not mismatches
        assert report.total_updates == 150
        assert report.total_queries == 20


class TestIngestWithMultipleListeners:
    def test_shared_stream_keeps_everyone_consistent(self):
        graph = load_dataset("uniform-er")
        sg_view = UpperBoundOnlyEngine(graph, num_hubs=4)
        continuous = ContinuousPairwiseEngine(graph)
        verts = sorted(graph.vertices())
        continuous.register_source(verts[0])
        ingest = IngestEngine(graph, [sg_view, continuous])
        stats = ingest.apply_all(mixed_stream(graph, 100, 0.7, seed=7))
        assert stats.applied == 100
        for t in verts[1:15]:
            ref, _s = dijkstra_distance(graph, verts[0], t)
            assert sg_view.distance(verts[0], t).value == pytest.approx(ref)
            assert continuous.distance(verts[0], t).value == pytest.approx(ref)
