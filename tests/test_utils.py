"""Tests for repro.utils.rng and repro.utils.timer."""

from __future__ import annotations

import time

import pytest

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timer import Stopwatch, format_duration


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(5)
        b = make_rng(5)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_spawn_count(self):
        assert len(spawn_rngs(1, 4)) == 4
        assert spawn_rngs(1, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_children_independent(self):
        a, b = spawn_rngs(7, 2)
        seq_a = [a.random() for _ in range(20)]
        seq_b = [b.random() for _ in range(20)]
        assert seq_a != seq_b

    def test_spawn_deterministic(self):
        first = [r.random() for r in spawn_rngs(3, 3)]
        second = [r.random() for r in spawn_rngs(3, 3)]
        assert first == second

    def test_adjacent_seeds_differ(self):
        a = spawn_rngs(10, 1)[0]
        b = spawn_rngs(11, 1)[0]
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestStopwatch:
    def test_context_manager_lap(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.001)
        assert sw.elapsed > 0
        assert len(sw.laps) == 1

    def test_multiple_laps_accumulate(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw:
                pass
        assert len(sw.laps) == 3
        assert sw.elapsed == pytest.approx(sum(sw.laps))

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0
        assert sw.laps == []


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected_unit",
        [(5e-10, "ns"), (5e-7, "ns"), (5e-5, "us"), (5e-2, "ms"), (5.0, "s")],
    )
    def test_units(self, seconds, expected_unit):
        assert format_duration(seconds).endswith(expected_unit)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)

    def test_values(self):
        assert format_duration(0.0025) == "2.50 ms"
        assert format_duration(1.5) == "1.500 s"
