"""VersionedStore / FrozenView tests."""

from __future__ import annotations

import math

import pytest

from repro.core.config import SGraphConfig
from repro.errors import ConfigError, SnapshotError
from repro.graph.generators import erdos_renyi_graph, power_law_graph
from repro.sgraph import SGraph
from repro.streaming.versioning import VersionedStore
from tests.conftest import reference_dijkstra


@pytest.fixture
def sg():
    graph = power_law_graph(200, 3, seed=5, weight_range=(1.0, 4.0))
    instance = SGraph(
        graph=graph,
        config=SGraphConfig(num_hubs=4, queries=("distance", "hops")),
    )
    instance.rebuild_indexes()
    return instance


class TestPublish:
    def test_view_identity(self, sg):
        store = VersionedStore(sg)
        view = store.publish(label="v1")
        assert view.epoch == sg.epoch
        assert view.label == "v1"
        assert view.num_vertices == sg.num_vertices
        assert "FrozenView" in repr(view)

    def test_same_epoch_dedup(self, sg):
        store = VersionedStore(sg)
        assert store.publish() is store.publish()
        assert len(store) == 1

    def test_capacity_eviction(self, sg):
        store = VersionedStore(sg, capacity=2)
        first = store.publish()
        sg.add_edge(0, 199, 1.0)
        store.publish()
        sg.add_edge(1, 198, 1.0)
        store.publish()
        assert len(store) == 2
        assert first.epoch not in store.epochs()
        with pytest.raises(SnapshotError):
            store.view_at(first.epoch)

    def test_invalid_capacity(self, sg):
        with pytest.raises(ConfigError):
            VersionedStore(sg, capacity=0)

    def test_latest_requires_publish(self, sg):
        store = VersionedStore(sg)
        with pytest.raises(SnapshotError):
            store.latest()
        view = store.publish()
        assert store.latest() is view


class TestIsolation:
    def test_old_view_unaffected_by_churn(self, sg):
        store = VersionedStore(sg)
        verts = sorted(sg.graph.vertices())
        s, t = verts[0], verts[50]
        before = sg.distance(s, t).value
        view = store.publish()
        # Heavy churn after publication.
        sg.add_edge(s, t, 0.5)
        for v in verts[1:20]:
            sg.discard_edge(s, v)
        assert sg.distance(s, t).value == 0.5
        assert view.distance(s, t).value == pytest.approx(before)

    def test_view_matches_oracle_at_publication(self, sg):
        store = VersionedStore(sg)
        frozen_graph = sg.graph.copy()
        view = store.publish()
        sg.add_edge(0, 100, 0.1)  # post-publication change
        verts = sorted(frozen_graph.vertices())
        ref = reference_dijkstra(frozen_graph, verts[0])
        for t in verts[1:20]:
            assert view.distance(verts[0], t).value == pytest.approx(
                ref.get(t, math.inf)
            )

    def test_hops_and_reachable_on_view(self, sg):
        store = VersionedStore(sg)
        view = store.publish()
        verts = sorted(sg.graph.vertices())
        r = view.hop_distance(verts[0], verts[10])
        assert r.epoch == view.epoch
        assert view.reachable(verts[0], verts[10]).value in (0.0, 1.0)

    def test_unconfigured_family_raises(self, sg):
        store = VersionedStore(sg)
        view = store.publish()
        with pytest.raises(ConfigError):
            view.bottleneck(0, 1)

    def test_directed_views(self):
        graph = erdos_renyi_graph(60, 240, seed=7, directed=True,
                                  weight_range=(1.0, 4.0))
        sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=3))
        sg.rebuild_indexes()
        store = VersionedStore(sg)
        view = store.publish()
        verts = sorted(graph.vertices())
        before = [view.distance(verts[0], t).value for t in verts[1:10]]
        for s, d, _w in list(graph.edges())[:30]:
            sg.discard_edge(s, d)
        after = [view.distance(verts[0], t).value for t in verts[1:10]]
        assert before == after


class TestMultiVersionHistory:
    def test_time_travel_sequence(self, sg):
        store = VersionedStore(sg, capacity=8)
        verts = sorted(sg.graph.vertices())
        s, t = verts[0], verts[60]
        history = []
        for step in range(4):
            view = store.publish(label=f"step{step}")
            history.append((view, sg.distance(s, t).value))
            sg.add_edge(s, verts[60 - step], 0.5 + step)
        for view, expected in history:
            assert view.distance(s, t).value == pytest.approx(expected), (
                view.label
            )
        assert store.epochs() == sorted(store.epochs())
