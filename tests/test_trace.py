"""Trace record/replay tests."""

from __future__ import annotations

import pytest

from repro.bench.trace import (
    TraceEvent,
    interleave,
    read_trace,
    replay_trace,
    write_trace,
)
from repro.core.config import SGraphConfig
from repro.core.pairwise import QueryKind
from repro.errors import WorkloadError
from repro.graph.generators import power_law_graph
from repro.graph.stats import sample_vertex_pairs
from repro.sgraph import SGraph
from repro.streaming.update import EdgeUpdate
from repro.streaming.workload import sliding_window_stream


class TestEvents:
    def test_exactly_one_payload(self):
        with pytest.raises(WorkloadError):
            TraceEvent()
        with pytest.raises(WorkloadError):
            TraceEvent(update=EdgeUpdate.insert(0, 1),
                       query=(QueryKind.DISTANCE, 0, 1))

    def test_factories(self):
        assert TraceEvent.of_update(EdgeUpdate.delete(0, 1)).is_query is False
        assert TraceEvent.of_query(QueryKind.HOPS, 0, 1).is_query


class TestSerialization:
    def test_round_trip(self, tmp_path):
        events = [
            TraceEvent.of_update(EdgeUpdate.insert(1, 2, 3.25)),
            TraceEvent.of_query(QueryKind.DISTANCE, 1, 2),
            TraceEvent.of_update(EdgeUpdate.delete(1, 2)),
            TraceEvent.of_query(QueryKind.REACHABILITY, 2, 1),
        ]
        path = tmp_path / "w.trace"
        assert write_trace(path, events) == 4
        back = list(read_trace(path))
        assert back == events

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(WorkloadError):
            list(read_trace(path))

    def test_bad_event(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1\nI 1\n")
        with pytest.raises(WorkloadError):
            list(read_trace(path))

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# repro-trace v1\n\n# note\nQ hops 1 2\n")
        events = list(read_trace(path))
        assert len(events) == 1


class TestInterleave:
    def test_shape(self):
        updates = [EdgeUpdate.insert(i, i + 1) for i in range(6)]
        queries = [(QueryKind.DISTANCE, 0, 5), (QueryKind.DISTANCE, 1, 4)]
        events = interleave(updates, queries, updates_per_query=3)
        kinds = ["Q" if e.is_query else "U" for e in events]
        assert kinds == ["U", "U", "U", "Q", "U", "U", "U", "Q"]

    def test_leftover_queries_appended(self):
        updates = [EdgeUpdate.insert(0, 1)]
        queries = [(QueryKind.DISTANCE, 0, 1)] * 3
        events = interleave(updates, queries, updates_per_query=5)
        assert sum(1 for e in events if e.is_query) == 3

    def test_invalid_rate(self):
        with pytest.raises(WorkloadError):
            interleave([], [], updates_per_query=0)


class TestReplay:
    def _fresh(self):
        graph = power_law_graph(250, 3, seed=11, weight_range=(1.0, 4.0))
        return SGraph(graph=graph, config=SGraphConfig(num_hubs=4))

    def _events(self, sg):
        pairs = sample_vertex_pairs(sg.graph, 8, seed=12)
        queries = [(QueryKind.DISTANCE, s, t) for s, t in pairs]
        updates = list(sliding_window_stream(sg.graph, 40, seed=13))
        return interleave(updates, queries, updates_per_query=5)

    def test_replay_counts(self):
        sg = self._fresh()
        events = self._events(sg)
        report = replay_trace(sg, events)
        assert report.updates_applied == 40
        assert report.queries_answered == 8
        assert report.query_stats.total == 8

    def test_replay_deterministic_across_instances(self, tmp_path):
        sg1 = self._fresh()
        events = self._events(sg1)
        path = tmp_path / "w.trace"
        write_trace(path, events)
        report1 = replay_trace(sg1, read_trace(path))
        report2 = replay_trace(self._fresh(), read_trace(path))
        assert report1.answers == report2.answers

    def test_replay_engine_invariance(self, tmp_path):
        """Different pruning policies replay to identical answers."""
        sg1 = self._fresh()
        events = self._events(sg1)
        path = tmp_path / "w.trace"
        write_trace(path, events)
        report_lb = replay_trace(sg1, read_trace(path))
        graph = power_law_graph(250, 3, seed=11, weight_range=(1.0, 4.0))
        sg_ub = SGraph(graph=graph,
                       config=SGraphConfig(num_hubs=4, policy="upper-only"))
        report_ub = replay_trace(sg_ub, read_trace(path))
        assert report_lb.answers == pytest.approx(report_ub.answers)

    def test_mixed_query_kinds(self):
        sg = self._fresh()
        pairs = sample_vertex_pairs(sg.graph, 4, seed=14)
        events = [
            TraceEvent.of_query(kind, s, t)
            for (s, t), kind in zip(
                pairs,
                [QueryKind.DISTANCE, QueryKind.HOPS,
                 QueryKind.REACHABILITY, QueryKind.DISTANCE],
            )
        ]
        sg2 = SGraph(
            graph=sg.graph,
            config=SGraphConfig(num_hubs=4, queries=("distance", "hops")),
        )
        report = replay_trace(sg2, events)
        assert report.queries_answered == 4
