"""One-to-many query tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.core.semiring import BOTTLENECK_CAPACITY
from repro.errors import ConfigError, QueryError
from repro.graph.generators import erdos_renyi_graph, power_law_graph
from repro.graph.stats import sample_vertex_pairs
from repro.sgraph import SGraph
from tests.conftest import reference_dijkstra, reference_widest


class TestEngineOneToMany:
    def test_basic(self, triangle_graph):
        index = HubIndex(triangle_graph, [1])
        engine = PairwiseEngine(triangle_graph, index=index)
        results, stats = engine.one_to_many(0, [1, 2])
        assert results == {1: 1.0, 2: 3.0}

    def test_source_in_targets(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        results, _stats = engine.one_to_many(0, [0, 2])
        assert results[0] == 0.0

    def test_duplicate_targets(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        results, _stats = engine.one_to_many(0, [2, 2, 2])
        assert results == {2: 3.0}

    def test_empty_targets(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        results, stats = engine.one_to_many(0, [])
        assert results == {}
        assert stats.activations == 0

    def test_unreachable_targets(self, two_components):
        index = HubIndex(two_components, [0, 2])
        engine = PairwiseEngine(two_components, index=index)
        results, stats = engine.one_to_many(0, [1, 2, 3])
        assert results[1] == 1.0
        assert results[2] == math.inf
        assert results[3] == math.inf

    def test_missing_endpoint_raises(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        with pytest.raises(QueryError):
            engine.one_to_many(0, [99])
        with pytest.raises(QueryError):
            engine.one_to_many(99, [0])

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_matches_singles_distance(self, seed):
        graph = erdos_renyi_graph(22, 40, seed=seed, weight_range=(1.0, 5.0))
        hubs = sorted(graph.vertices(), key=graph.degree)[-3:]
        index = HubIndex(graph, hubs)
        engine = PairwiseEngine(graph, index=index)
        verts = sorted(graph.vertices())
        source = verts[0]
        ref = reference_dijkstra(graph, source)
        results, _stats = engine.one_to_many(source, verts)
        for t in verts:
            expected = 0.0 if t == source else ref.get(t, math.inf)
            assert results[t] == pytest.approx(expected), t

    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_matches_singles_capacity(self, seed):
        graph = erdos_renyi_graph(16, 28, seed=seed, weight_range=(1.0, 5.0))
        hubs = list(graph.vertices())[:3]
        index = HubIndex(graph, hubs, semiring=BOTTLENECK_CAPACITY)
        engine = PairwiseEngine(graph, index=index)
        verts = sorted(graph.vertices())
        source = verts[0]
        ref = reference_widest(graph, source)
        results, _stats = engine.one_to_many(source, verts[1:])
        for t in verts[1:]:
            assert results[t] == pytest.approx(ref.get(t, -math.inf)), t

    def test_amortization_beats_singles(self):
        graph = power_law_graph(1200, 5, seed=6, weight_range=(1.0, 4.0))
        index = HubIndex.build(graph, 16)
        engine = PairwiseEngine(graph, index=index)
        pairs = sample_vertex_pairs(graph, 24, seed=7)
        source = pairs[0][0]
        targets = [t for _s, t in pairs]
        _results, many_stats = engine.one_to_many(source, targets)
        single_total = 0
        for t in targets:
            _v, st_single = engine.best_cost(source, t)
            single_total += st_single.activations
        assert many_stats.activations <= max(single_total, 1) * 1.5


class TestFacade:
    def test_distance_many(self):
        sg = SGraph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0)],
                               config=SGraphConfig(num_hubs=2))
        results = sg.distance_many(0, [1, 2, 4])
        assert results[1] == 1.0
        assert results[2] == 3.0
        assert results[4] == math.inf

    def test_requires_distance_family(self, triangle_graph):
        sg = SGraph(graph=triangle_graph,
                    config=SGraphConfig(queries=("capacity",)))
        with pytest.raises(ConfigError):
            sg.distance_many(0, [1])

    def test_distance_many_result_surfaces_stats(self):
        sg = SGraph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0)],
                               config=SGraphConfig(num_hubs=2))
        result = sg.distance_many_result(0, [1, 2, 4])
        assert result.values == sg.distance_many(0, [1, 2, 4])
        assert result.source == 0
        assert result.epoch == sg.epoch
        assert len(result) == 3 and 2 in result and result[2] == 3.0
        assert result.reachable_count == 2
        # The combined counters of the shared search — previously discarded.
        assert result.stats.elapsed > 0.0
        assert (result.stats.activations > 0
                or result.stats.answered_by_index)
