"""TCP plane transport: differential parity vs shm, fetch-on-publish, reap.

The contract mirrors the shm suite's, plus two transport-specific claims:
(1) a loopback :class:`NetTransport` pool answers *bit-identically*
(values and stats counters) to a :class:`ShmTransport` pool serving the
same store across a multi-epoch publish sequence; (2) each published
plane's buffers cross the socket **exactly once per reader** — queries
after the first hit the reader's digest-keyed cache — and a reader that
dies without releasing is reaped by the server, returning its refcount.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.config import SGraphConfig
from repro.graph.dynamic_graph import DynamicGraph
from repro.serving import shm_available
from repro.serving.net import NetReader, net_available
from repro.serving.pool import ServeSession
from repro.serving.registry import RETIRED
from repro.sgraph import SGraph
from repro.streaming.versioning import VersionedStore

pytestmark = [
    pytest.mark.net,
    pytest.mark.skipif(not net_available(),
                       reason="loopback TCP sockets unavailable"),
]


def _random_graph(seed: int, directed: bool = False, n: int = 60,
                  m: int = 180) -> DynamicGraph:
    rng = random.Random(seed)
    g = DynamicGraph(directed=directed)
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u, v = rng.randrange(n - 3), rng.randrange(n - 3)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, rng.uniform(0.5, 3.0))
        added += 1
    return g


def _sgraph(seed: int, directed: bool = False) -> SGraph:
    return SGraph(graph=_random_graph(seed, directed),
                  config=SGraphConfig(num_hubs=6, queries=("distance",)))


def _stats_tuple(stats):
    return (
        stats.activations,
        stats.pushes,
        stats.relaxations,
        stats.pruned_by_upper_bound,
        stats.pruned_by_lower_bound,
        stats.answered_by_index,
    )


def _wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestTransportDifferential:
    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory unavailable")
    def test_tcp_bit_identical_to_shm_across_epochs(self):
        """One store, two transports, three epochs: every answer agrees.

        Both sessions subscribe to the same :class:`VersionedStore`, so
        each publish hands the identical plane to the shm segments and the
        TCP payload store.  Each round fans the same query batch through
        both pools; values AND stats counters must match pair for pair,
        and afterwards the TCP server must have shipped each plane's
        buffers exactly once per reader.
        """
        sg = _sgraph(61)
        store = VersionedStore(sg)
        rng = random.Random(7)
        verts = sorted(sg.graph.vertices())
        with ServeSession(sg, workers=2, store=store) as shm_sess, \
                ServeSession(sg, workers=2, store=store,
                             transport="tcp") as net_sess:
            epochs = []
            for round_no in range(3):
                if round_no:
                    u, v = rng.sample(verts[:40], 2)
                    sg.add_edge(u, v, rng.uniform(0.1, 0.4))
                    shm_sess.publish()  # one publish reaches both transports
                epochs.append(store.latest().epoch)
                pairs = [tuple(rng.sample(verts, 2)) for _ in range(24)]
                for s, t in pairs:
                    shm_value, shm_stats, shm_epoch = shm_sess.distance(s, t)
                    net_value, net_stats, net_epoch = net_sess.distance(s, t)
                    assert net_value == shm_value
                    assert _stats_tuple(net_stats) == _stats_tuple(shm_stats)
                    assert net_epoch == shm_epoch == epochs[-1]
            assert len(set(epochs)) == 3
            counts = net_sess.transport.server.fetch_counts()
            # every pool reader fetched every epoch's plane exactly once
            assert len(counts) == 2
            for per_digest in counts.values():
                assert len(per_digest) == len(epochs)
                assert all(n == 1 for n in per_digest.values())

    def test_batched_verbs_match_view(self):
        sg = _sgraph(62)
        with sg.serve(workers=2, transport="tcp") as session:
            view = session.store.latest()
            values, _stats, epoch = session.distance_many(
                0, list(range(1, 30)), chunk_size=8,
            )
            expected = view.distance_many(0, list(range(1, 30)))
            # per-slice searches may answer a target from the hub index,
            # whose bound sums round differently than the full batch's
            # path accumulation — equality is to float tolerance here,
            # bit-identity is the transport-vs-transport claim above
            assert values.keys() == expected.keys()
            for t in expected:
                assert values[t] == pytest.approx(expected[t])
            assert epoch == view.epoch
            nn, _ = session.nearest(0, 5)
            assert [d for _, d in nn] == [d for _, d in view.nearest(0, 5)]


class TestFetchOnPublish:
    def test_cached_plane_not_refetched(self):
        sg = _sgraph(63)
        with sg.serve(workers=1, transport="tcp") as session:
            for _ in range(10):
                session.distance(0, 1)
            counts = session.transport.server.fetch_counts()
            assert list(counts[str(0)].values()) == [1]

    def test_lru_bound_evicts_and_refetches(self):
        """With cache_planes=1 a reader bounced between epochs refetches."""
        sg = _sgraph(64)
        verts = sorted(sg.graph.vertices())
        with sg.serve(workers=1, transport="tcp",
                      cache_planes=1) as session:
            session.distance(0, 1)
            sg.add_edge(verts[0], verts[-1], 0.2)
            session.publish()
            session.distance(0, 1)
            counts = session.transport.server.fetch_counts()
            # two distinct planes fetched once each; the 1-plane LRU held
            # only the newest at any time
            assert sorted(counts[str(0)].values()) == [1, 1]

    def test_digest_verification_rejects_corruption(self):
        from repro.errors import QueryError
        from repro.serving.net import NetClient

        sg = _sgraph(65)
        with sg.serve(workers=1, transport="tcp") as session:
            server = session.transport.server
            with server.registry.lock:
                slot = next(iter(server._payloads))
                payload, digest, epoch = server._payloads[slot]
                tampered = bytearray(payload)
                tampered[-1] ^= 0xFF
                server._payloads[slot] = (bytes(tampered), digest, epoch)
            client = NetClient(server.host, server.port)
            try:
                with pytest.raises(QueryError, match="digest"):
                    client.acquire()
            finally:
                client.close()


class TestReaderReaping:
    def test_killed_reader_is_reaped_and_plane_evicted(self):
        """SIGKILL a pool worker mid-hold: its socket closes, the server
        reaps its refcount, and the plane it pinned is evicted once
        retired."""
        sg = _sgraph(66)
        verts = sorted(sg.graph.vertices())
        # respawn=False: this test pins down the reap/evict protocol for a
        # permanently lost reader; respawn recovery has its own coverage.
        with sg.serve(workers=2, transport="tcp",
                      respawn=False) as session:
            registry = session.transport.registry
            # both workers answer (and therefore hold) the first epoch
            for _ in range(4):
                session.distance(0, 1)
            assert sum(rc for _s, _r, _e, rc, _st in registry.slots()) == 2
            session.pool.kill_worker(0)
            # the dead worker's connection drops; the server-side reap runs
            # in the connection thread's finally block
            assert _wait_until(
                lambda: sum(rc for _s, _r, _e, rc, _st
                            in registry.slots()) <= 1
            )
            # retire the held epoch; the survivor moves on and the old
            # plane's payload must be evicted (refcount reached zero)
            sg.add_edge(verts[0], verts[-1], 0.2)
            session.publish()
            session.distance(0, 1)
            assert _wait_until(
                lambda: not any(st == RETIRED for _s, _r, _e, _rc, st
                                in registry.slots())
            )
            with session.transport.server.registry.lock:
                payloads = dict(session.transport.server._payloads)
            assert len(payloads) == 1  # only the live epoch's plane remains
            value, _stats, _epoch = session.distance(0, 1)
            assert value > 0

    def test_session_reap_is_idempotent_with_server_reap(self):
        sg = _sgraph(67)
        with sg.serve(workers=2, transport="tcp") as session:
            session.distance(0, 1)
            session.pool.kill_worker(1)
            _wait_until(lambda: len(session.transport.registry.readers()) <= 1)
            assert session.reap() == [1]  # no double-decrement blowup
            value, _stats, _epoch = session.distance(0, 1)
            assert value > 0


class TestNetReader:
    def test_standalone_reader_matches_view_and_refreshes(self):
        sg = _sgraph(68)
        verts = sorted(sg.graph.vertices())
        with sg.serve(workers=1, transport="tcp") as session:
            view = session.store.latest()
            with NetReader(session.transport.address) as reader:
                assert reader.refresh() == view.epoch
                rng = random.Random(5)
                for _ in range(20):
                    s, t = rng.sample(verts, 2)
                    value, _stats, epoch = reader.distance(s, t)
                    assert value == view.distance(s, t).value
                    assert epoch == view.epoch
                values, _stats, _epoch = reader.distance_many(
                    0, list(range(1, 20))
                )
                assert values == view.distance_many(0, list(range(1, 20)))
                # writer publishes; the reader's next query adopts it
                sg.add_edge(verts[0], verts[-1], 0.15)
                new_view = session.publish()
                value, _stats, epoch = reader.distance(verts[0], verts[-1])
                assert epoch == new_view.epoch
                assert value == pytest.approx(0.15)
            # context exit released the lease and closed the socket; the
            # server forgets the reader
            assert _wait_until(
                lambda: all(
                    str(r).startswith("w") or isinstance(r, int)
                    for r in session.transport.registry.readers()
                )
            )

    def test_bad_address_raises(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            NetReader("not-an-address")
        with pytest.raises(ConfigError):
            NetReader("127.0.0.1:1")  # nothing listening


def _churn_weights(sg, rng, count: int = 6) -> None:
    """Re-weight existing edges only: topology (and CSR layout) stable."""
    g = sg.graph
    verts = sorted(g.vertices())
    done = 0
    while done < count:
        u, v = rng.choice(verts), rng.choice(verts)
        if u == v or not g.has_edge(u, v):
            continue
        sg.add_edge(u, v, rng.uniform(0.5, 3.0))
        done += 1


class TestDeltaSync:
    def test_delta_bit_identical_to_full_across_epochs(self):
        """One store, delta and full TCP sessions, three churn epochs.

        Every answer (value AND stats counters) must agree pair for pair
        — the composed plane is bit-identical to the full fetch — and the
        delta session must actually have moved fewer bytes than the
        all-full hypothetical.
        """
        sg = _sgraph(71)
        store = VersionedStore(sg)
        rng = random.Random(17)
        verts = sorted(sg.graph.vertices())
        with ServeSession(sg, workers=1, store=store,
                          transport="tcp") as full_sess, \
                ServeSession(sg, workers=1, store=store, transport="tcp",
                             delta=True) as delta_sess:
            for round_no in range(3):
                if round_no:
                    _churn_weights(sg, rng)
                    full_sess.publish()  # one publish reaches both
                pairs = [tuple(rng.sample(verts, 2)) for _ in range(16)]
                for s, t in pairs:
                    f_value, f_stats, f_epoch = full_sess.distance(s, t)
                    d_value, d_stats, d_epoch = delta_sess.distance(s, t)
                    assert d_value == f_value
                    assert _stats_tuple(d_stats) == _stats_tuple(f_stats)
                    assert d_epoch == f_epoch
            row = delta_sess.stats_row()
            assert row["delta"] is True
            assert row["delta_fetches"] >= 2  # epochs 2 and 3
            assert row["full_fetches"] >= 1   # the bootstrap fetch
            assert 0 < row["bytes_sent"] < row["bytes_full"]
            full_row = full_sess.stats_row()
            assert full_row["delta"] is False
            assert full_row["delta_fetches"] == 0
            assert full_row["bytes_sent"] == full_row["bytes_full"] > 0

    def test_evicted_base_falls_back_to_full_fetch(self):
        """cache_planes=1: the reader's base digest is never in the
        server's history by fetch time, so every refresh is a full frame
        (mode="full" fallback, not an error)."""
        sg = _sgraph(72)
        rng = random.Random(19)
        with sg.serve(workers=1, transport="tcp", delta=True,
                      cache_planes=1) as session:
            session.distance(0, 1)
            for _ in range(2):
                _churn_weights(sg, rng)
                session.publish()
                session.distance(0, 1)
            row = session.stats_row()
            assert row["full_fetches"] >= 3
            assert row["delta_fetches"] == 0
            assert row["cache_planes"] == 1
            assert row["cached"] == 1

    def test_standalone_reader_delta_matches_view(self):
        sg = _sgraph(73)
        rng = random.Random(23)
        verts = sorted(sg.graph.vertices())
        with sg.serve(workers=1, transport="tcp", delta=True) as session:
            with NetReader(session.transport.address,
                           delta=True) as reader:
                for _ in range(3):
                    _churn_weights(sg, rng)
                    view = session.publish()
                    assert reader.refresh() == view.epoch
                    for _ in range(10):
                        s, t = rng.sample(verts, 2)
                        value, _stats, epoch = reader.distance(s, t)
                        assert value == view.distance(s, t).value
                        assert epoch == view.epoch
                transfer = reader.transfer_stats()
                assert transfer["delta_fetches"] >= 2
                assert transfer["full_fetches"] >= 1
                assert transfer["bytes_received"] < transfer["bytes_full"]
                # the stats wire op surfaces cache depth and occupancy
                stats = reader.client.stats()
                assert stats["cache"]["cache_planes"] == 4
                assert 1 <= stats["cache"]["cached"] <= 4
                assert stats["transfer"]["delta_fetches"] >= 2

    def test_server_death_surfaces_as_query_error(self):
        """A strict (degrade=False) reader whose server dies mid-session
        gets a QueryError (the CLI's clean-exit contract), never a raw
        ConnectionResetError; a degraded reader keeps serving the held
        plane with the stale flag up instead."""
        from repro.errors import QueryError

        sg = _sgraph(74)
        session = ServeSession(sg, workers=1, transport="tcp")
        try:
            reader = NetReader(session.transport.address, degrade=False,
                               retry=1, backoff=0.01, max_backoff=0.02)
            stale_reader = NetReader(session.transport.address,
                                     retry=1, backoff=0.01,
                                     max_backoff=0.02)
        except Exception:
            session.close()
            raise
        try:
            value, _stats, _epoch = reader.distance(0, 1)
            assert value >= 0
            stale_value, _stats, stale_epoch = stale_reader.distance(0, 1)
            assert stale_value == value
            session.close()
            with pytest.raises(QueryError):
                # the probe may need a couple of calls before the socket
                # reports the peer is gone
                for _ in range(10):
                    reader.distance(0, 1)
                    time.sleep(0.05)
            # graceful degradation: same answer, from the held plane
            value2, _stats, epoch2 = stale_reader.distance(0, 1)
            assert value2 == stale_value and epoch2 == stale_epoch
            assert stale_reader.stale
            assert stale_reader.transfer_stats()["stale_serves"] >= 1
        finally:
            for r in (reader, stale_reader):
                try:
                    r.close()
                except Exception:
                    pass
            session.close()
