"""SGraphConfig validation and error-hierarchy tests."""

from __future__ import annotations

import pytest

from repro.core.config import SGraphConfig
from repro.core.pairwise import PairwiseQuery, QueryKind
from repro.core.pruning import PruningPolicy
from repro.errors import (
    ConfigError,
    EdgeNotFoundError,
    GraphError,
    IndexStateError,
    InvalidWeightError,
    QueryError,
    ReproError,
    SnapshotError,
    VertexNotFoundError,
    WorkloadError,
)


class TestConfig:
    def test_defaults(self):
        cfg = SGraphConfig()
        assert cfg.num_hubs == 16
        assert cfg.hub_strategy == "degree"
        assert cfg.policy is PruningPolicy.UPPER_AND_LOWER
        assert cfg.queries == ("distance",)

    def test_policy_string_coerced(self):
        cfg = SGraphConfig(policy="upper-only")
        assert cfg.policy is PruningPolicy.UPPER_ONLY

    def test_invalid_hub_count(self):
        with pytest.raises(ConfigError):
            SGraphConfig(num_hubs=0)

    def test_invalid_strategy(self):
        with pytest.raises(ConfigError):
            SGraphConfig(hub_strategy="magic")

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            SGraphConfig(policy="sometimes")

    def test_invalid_query_family(self):
        with pytest.raises(ConfigError):
            SGraphConfig(queries=("distance", "pagerank"))

    def test_empty_queries(self):
        with pytest.raises(ConfigError):
            SGraphConfig(queries=())

    def test_frozen(self):
        cfg = SGraphConfig()
        with pytest.raises(AttributeError):
            cfg.num_hubs = 3  # type: ignore[misc]


class TestPruningPolicy:
    def test_parse_round_trip(self):
        for policy in PruningPolicy:
            assert PruningPolicy.parse(policy.value) is policy
            assert PruningPolicy.parse(policy) is policy

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            PruningPolicy.parse("wat")

    def test_flags(self):
        assert not PruningPolicy.NONE.uses_index
        assert PruningPolicy.UPPER_ONLY.uses_index
        assert not PruningPolicy.UPPER_ONLY.uses_lower_bounds
        assert PruningPolicy.UPPER_AND_LOWER.uses_lower_bounds


class TestQueryKinds:
    def test_parse(self):
        assert QueryKind.parse("distance") is QueryKind.DISTANCE
        assert QueryKind.parse(QueryKind.HOPS) is QueryKind.HOPS
        with pytest.raises(ValueError):
            QueryKind.parse("dijkstra")

    def test_pairwise_query_record(self):
        q = PairwiseQuery(QueryKind.DISTANCE, 1, 2)
        assert (q.source, q.target) == (1, 2)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            SnapshotError,
            IndexStateError,
            QueryError,
            ConfigError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_graph_error_subtypes(self):
        assert issubclass(VertexNotFoundError, GraphError)
        assert issubclass(EdgeNotFoundError, GraphError)
        assert issubclass(InvalidWeightError, GraphError)

    def test_payloads(self):
        assert VertexNotFoundError(7).vertex == 7
        err = EdgeNotFoundError(1, 2)
        assert (err.src, err.dst) == (1, 2)
        assert "1" in str(err) and "2" in str(err)
