"""Shared fixtures: small deterministic graphs and reference oracles."""

from __future__ import annotations

import math
import random

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    grid_graph,
    power_law_graph,
)


@pytest.fixture
def triangle_graph() -> DynamicGraph:
    """3-cycle with distinct weights: 0-1 (1.0), 1-2 (2.0), 0-2 (4.0)."""
    g = DynamicGraph()
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 2.0)
    g.add_edge(0, 2, 4.0)
    return g


@pytest.fixture
def line_graph() -> DynamicGraph:
    """Path 0-1-2-3-4 with unit weights."""
    g = DynamicGraph()
    for i in range(4):
        g.add_edge(i, i + 1, 1.0)
    return g


@pytest.fixture
def directed_diamond() -> DynamicGraph:
    """Directed diamond: 0→1→3 (1+1) and 0→2→3 (2+2), no reverse arcs."""
    g = DynamicGraph(directed=True)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 3, 1.0)
    g.add_edge(0, 2, 2.0)
    g.add_edge(2, 3, 2.0)
    return g


@pytest.fixture
def two_components() -> DynamicGraph:
    """Two disjoint edges: {0-1} and {2-3}."""
    g = DynamicGraph()
    g.add_edge(0, 1, 1.0)
    g.add_edge(2, 3, 1.0)
    return g


@pytest.fixture
def small_powerlaw() -> DynamicGraph:
    return power_law_graph(200, 3, seed=42, weight_range=(1.0, 5.0))


@pytest.fixture
def small_grid() -> DynamicGraph:
    return grid_graph(8, 8, seed=7, weight_range=(1.0, 3.0))


@pytest.fixture
def small_directed() -> DynamicGraph:
    return erdos_renyi_graph(
        80, 400, seed=9, directed=True, weight_range=(1.0, 4.0)
    )


def reference_dijkstra(graph, source: int) -> dict:
    """Oracle: textbook heapq Dijkstra over the traversal protocol."""
    import heapq

    dist = {source: 0.0}
    heap = [(0.0, source)]
    done = set()
    while heap:
        d, v = heapq.heappop(heap)
        if v in done:
            continue
        done.add(v)
        for u, w in graph.out_items(v):
            nd = d + w
            if nd < dist.get(u, math.inf):
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist


def reference_widest(graph, source: int) -> dict:
    """Oracle: max-min capacity from source to every vertex."""
    import heapq

    cap = {source: math.inf}
    heap = [(-math.inf, source)]
    done = set()
    while heap:
        negc, v = heapq.heappop(heap)
        c = -negc
        if v in done:
            continue
        done.add(v)
        for u, w in graph.out_items(v):
            nc = min(c, w)
            if nc > cap.get(u, -math.inf):
                cap[u] = nc
                heapq.heappush(heap, (-nc, u))
    return cap


def random_mutation_sequence(graph, steps: int, seed: int):
    """Yield (op, u, v, w) mutations valid against a tracked live-edge view."""
    rng = random.Random(seed)
    verts = list(graph.vertices())
    live = {tuple(sorted((s, d))) if not graph.directed else (s, d)
            for s, d, _w in graph.edges()}
    for _ in range(steps):
        u, v = rng.sample(verts, 2)
        key = (u, v) if graph.directed else tuple(sorted((u, v)))
        if key in live and rng.random() < 0.5:
            live.discard(key)
            yield ("delete", key[0], key[1], None)
        else:
            live.add(key)
            yield ("insert", key[0], key[1], rng.uniform(1.0, 5.0))

