"""Streaming layer: updates, batching, ingestion, workload generators."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hub_index import HubIndex
from repro.errors import WorkloadError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi_graph
from repro.streaming.ingest import IngestEngine
from repro.streaming.update import EdgeUpdate, UpdateBatch, UpdateKind, batched
from repro.streaming.workload import (
    insert_only_stream,
    mixed_stream,
    sliding_window_stream,
)
from tests.conftest import reference_dijkstra


class TestUpdateTypes:
    def test_insert_factory(self):
        u = EdgeUpdate.insert(1, 2, 3.5)
        assert u.kind is UpdateKind.INSERT
        assert (u.src, u.dst, u.weight) == (1, 2, 3.5)
        assert "+" in repr(u)

    def test_delete_factory(self):
        u = EdgeUpdate.delete(1, 2)
        assert u.kind is UpdateKind.DELETE
        assert "-" in repr(u)

    def test_batch_counts(self):
        batch = UpdateBatch([
            EdgeUpdate.insert(0, 1), EdgeUpdate.delete(0, 1),
            EdgeUpdate.insert(1, 2),
        ])
        assert len(batch) == 3
        assert batch.num_inserts == 2
        assert batch.num_deletes == 1
        assert batch[0].kind is UpdateKind.INSERT

    def test_empty_batch_raises(self):
        with pytest.raises(WorkloadError):
            UpdateBatch([])

    def test_batched_splits(self):
        updates = [EdgeUpdate.insert(i, i + 1) for i in range(7)]
        batches = list(batched(iter(updates), 3))
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_batched_invalid_size(self):
        with pytest.raises(WorkloadError):
            list(batched(iter([]), 0))


class TestIngestEngine:
    def test_insert_and_delete(self, line_graph):
        engine = IngestEngine(line_graph)
        stats = engine.apply_all([
            EdgeUpdate.insert(0, 4, 2.0),
            EdgeUpdate.delete(1, 2),
        ])
        assert stats.applied == 2
        assert stats.inserts == 1
        assert stats.deletes == 1
        assert line_graph.has_edge(0, 4)
        assert not line_graph.has_edge(1, 2)
        assert stats.updates_per_second > 0
        assert "ups" in stats.as_row()

    def test_redundant_updates_tolerated(self, line_graph):
        engine = IngestEngine(line_graph)
        stats = engine.apply_all([
            EdgeUpdate.insert(0, 1, 1.0),  # identical edge exists
            EdgeUpdate.delete(0, 4),       # missing edge
        ])
        assert stats.redundant == 2
        assert stats.inserts == 0
        assert stats.deletes == 0

    def test_weight_change_is_remove_reinsert(self, line_graph):
        recorded = []

        class Recorder:
            settled_last_update = 0

            def notify_edge_inserted(self, s, d, w):
                recorded.append(("ins", s, d, w))

            def notify_edge_deleted(self, s, d, w):
                recorded.append(("del", s, d, w))

        engine = IngestEngine(line_graph, [Recorder()])
        engine.apply_update(EdgeUpdate.insert(0, 1, 7.0))
        assert recorded == [("del", 0, 1, 1.0), ("ins", 0, 1, 7.0)]
        assert line_graph.edge_weight(0, 1) == 7.0

    def test_listener_added_later(self, line_graph):
        engine = IngestEngine(line_graph)
        index = HubIndex(line_graph, [0])
        engine.add_listener(index)
        engine.apply_update(EdgeUpdate.insert(0, 4, 0.5))
        assert index.cost_from_hub(0, 4) == 0.5

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_index_stays_consistent_through_stream(self, seed):
        graph = erdos_renyi_graph(20, 30, seed=seed, weight_range=(1.0, 5.0))
        index = HubIndex.build(graph, 3)
        engine = IngestEngine(graph, [index])
        updates = list(mixed_stream(graph, 40, insert_fraction=0.6, seed=seed))
        engine.apply_all(updates)
        for hub in index.hubs:
            ref = reference_dijkstra(graph, hub)
            for v in graph.vertices():
                assert index.cost_from_hub(hub, v) == pytest.approx(
                    ref.get(v, math.inf)
                )


class TestWorkloadGenerators:
    def test_insert_only_yields_fresh_edges(self, small_powerlaw):
        updates = list(insert_only_stream(small_powerlaw, 50, seed=1))
        assert len(updates) == 50
        assert all(u.kind is UpdateKind.INSERT for u in updates)
        seen = {(min(u.src, u.dst), max(u.src, u.dst)) for u in updates}
        assert len(seen) == 50  # no duplicate inserts
        for u in updates:
            assert not small_powerlaw.has_edge(u.src, u.dst)

    def test_insert_only_deterministic(self, small_powerlaw):
        a = list(insert_only_stream(small_powerlaw, 20, seed=1))
        b = list(insert_only_stream(small_powerlaw, 20, seed=1))
        assert a == b

    def test_insert_only_saturation_raises(self, triangle_graph):
        with pytest.raises(WorkloadError):
            list(insert_only_stream(triangle_graph, 10, seed=1))

    def test_sliding_window_preserves_edge_count(self, small_powerlaw):
        graph = small_powerlaw
        before = graph.num_edges
        engine = IngestEngine(graph)
        updates = list(sliding_window_stream(graph, 40, seed=2))
        stats = engine.apply_all(updates)
        assert stats.redundant == 0
        assert graph.num_edges == before  # 20 inserts, 20 deletes

    def test_sliding_window_alternates(self, small_powerlaw):
        updates = list(sliding_window_stream(small_powerlaw, 10, seed=3))
        kinds = [u.kind for u in updates]
        assert kinds[::2] == [UpdateKind.INSERT] * 5
        assert kinds[1::2] == [UpdateKind.DELETE] * 5

    def test_mixed_ratio_roughly_respected(self, small_powerlaw):
        updates = list(mixed_stream(small_powerlaw, 200, insert_fraction=0.75,
                                    seed=4))
        inserts = sum(1 for u in updates if u.kind is UpdateKind.INSERT)
        assert 120 <= inserts <= 180

    def test_mixed_never_redundant(self, small_powerlaw):
        graph = small_powerlaw
        engine = IngestEngine(graph)
        stats = engine.apply_all(mixed_stream(graph, 150, 0.5, seed=5))
        assert stats.redundant == 0

    def test_mixed_invalid_fraction(self, small_powerlaw):
        with pytest.raises(WorkloadError):
            list(mixed_stream(small_powerlaw, 5, insert_fraction=1.5))

    def test_streams_need_two_vertices(self):
        g = DynamicGraph()
        g.add_vertex(0)
        with pytest.raises(WorkloadError):
            list(insert_only_stream(g, 1))
        with pytest.raises(WorkloadError):
            list(sliding_window_stream(g, 1))
        with pytest.raises(WorkloadError):
            list(mixed_stream(g, 1))


class TestQueryStream:
    def test_count_and_validity(self, small_powerlaw):
        from repro.streaming.workload import query_stream

        pairs = query_stream(small_powerlaw, 30, skew=1.0, seed=1)
        assert len(pairs) == 30
        assert all(s != t for s, t in pairs)
        assert all(small_powerlaw.has_vertex(s) and small_powerlaw.has_vertex(t)
                   for s, t in pairs)

    def test_deterministic(self, small_powerlaw):
        from repro.streaming.workload import query_stream

        assert query_stream(small_powerlaw, 10, seed=2) == query_stream(
            small_powerlaw, 10, seed=2
        )

    def test_skew_concentrates_on_hubs(self, small_powerlaw):
        from repro.streaming.workload import query_stream

        top = set(sorted(small_powerlaw.vertices(),
                         key=small_powerlaw.degree)[-10:])

        def hub_hits(skew):
            pairs = query_stream(small_powerlaw, 200, skew=skew, seed=3)
            return sum(1 for s, t in pairs if s in top or t in top)

        assert hub_hits(2.0) > 2 * hub_hits(0.0)

    def test_validation(self, small_powerlaw):
        from repro.errors import WorkloadError
        from repro.streaming.workload import query_stream

        with pytest.raises(WorkloadError):
            query_stream(small_powerlaw, -1)
        with pytest.raises(WorkloadError):
            query_stream(small_powerlaw, 5, skew=-0.5)


class TestHistogram:
    def test_shape(self):
        from repro.bench.report import format_histogram

        text = format_histogram([1, 1, 2, 5, 5, 5], bins=4, title="H")
        lines = text.splitlines()
        assert lines[0] == "H"
        assert len(lines) == 5
        assert text.count("#") > 0

    def test_empty(self):
        from repro.bench.report import format_histogram

        assert "(no values)" in format_histogram([])

    def test_single_value(self):
        from repro.bench.report import format_histogram

        text = format_histogram([3.0, 3.0], bins=3)
        assert "2" in text

    def test_invalid_bins(self):
        from repro.bench.report import format_histogram

        with pytest.raises(ValueError):
            format_histogram([1.0], bins=0)
