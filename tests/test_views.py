"""UnitWeightView adapter tests."""

from __future__ import annotations

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.views import UnitWeightView


@pytest.fixture
def weighted_graph():
    g = DynamicGraph()
    g.add_edge(0, 1, 5.0)
    g.add_edge(1, 2, 0.5)
    return g


class TestUnitWeightView:
    def test_weights_are_unit(self, weighted_graph):
        view = UnitWeightView(weighted_graph)
        assert dict(view.out_items(1)) == {0: 1.0, 2: 1.0}
        assert view.edge_weight(0, 1) == 1.0

    def test_topology_delegated(self, weighted_graph):
        view = UnitWeightView(weighted_graph)
        assert view.num_vertices == 3
        assert view.num_edges == 2
        assert len(view) == 3
        assert 0 in view
        assert view.has_vertex(2)
        assert view.has_edge(0, 1)
        assert not view.has_edge(0, 2)
        assert sorted(view.vertices()) == [0, 1, 2]
        assert view.degree(1) == 2

    def test_live_follow(self, weighted_graph):
        view = UnitWeightView(weighted_graph)
        weighted_graph.add_edge(2, 3, 9.0)
        assert view.has_edge(2, 3)
        assert dict(view.out_items(3)) == {2: 1.0}

    def test_edges_unit(self, weighted_graph):
        view = UnitWeightView(weighted_graph)
        assert all(w == 1.0 for _s, _d, w in view.edges())

    def test_directed_in_items(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1, 3.0)
        view = UnitWeightView(g)
        assert view.directed
        assert dict(view.in_items(1)) == {0: 1.0}
        assert view.in_degree(1) == 1
        assert view.out_degree(1) == 0

    def test_base_accessor(self, weighted_graph):
        assert UnitWeightView(weighted_graph).base is weighted_graph
