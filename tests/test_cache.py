"""QueryCache and facade caching tests."""

from __future__ import annotations

import pytest

from repro.core.cache import QueryCache
from repro.core.config import SGraphConfig
from repro.errors import ConfigError
from repro.graph.generators import power_law_graph
from repro.sgraph import SGraph


class TestQueryCache:
    def test_miss_then_hit(self):
        cache = QueryCache(4)
        assert cache.get("k", epoch=1) is None
        cache.put("k", 1, "value")
        assert cache.get("k", epoch=1) == "value"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_epoch_invalidation(self):
        cache = QueryCache(4)
        cache.put("k", 1, "old")
        assert cache.get("k", epoch=2) is None
        assert cache.stale == 1
        assert len(cache) == 0  # stale entry dropped

    def test_lru_eviction(self):
        cache = QueryCache(2)
        cache.put("a", 1, 1)
        cache.put("b", 1, 2)
        cache.get("a", 1)        # refresh a
        cache.put("c", 1, 3)     # evicts b
        assert cache.get("b", 1) is None
        assert cache.get("a", 1) == 1
        assert cache.get("c", 1) == 3

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            QueryCache(0)

    def test_stats_row(self):
        cache = QueryCache(2)
        cache.put("a", 1, 1)
        cache.get("a", 1)
        cache.get("x", 1)
        row = cache.stats_row()
        assert row["hits"] == 1
        assert row["misses"] == 1
        assert row["hit%"] == 50.0

    def test_stale_put_rejected(self):
        cache = QueryCache(4)
        cache.put("k", epoch=5, value="new")
        cache.put("k", epoch=3, value="old")  # out-of-order writer loses
        assert cache.get("k", epoch=5) == "new"
        assert cache.stale_puts == 1

    def test_same_epoch_put_overwrites(self):
        cache = QueryCache(4)
        cache.put("k", epoch=5, value="first")
        cache.put("k", epoch=5, value="second")
        assert cache.get("k", epoch=5) == "second"
        assert cache.stale_puts == 0

    def test_newer_epoch_put_overwrites(self):
        cache = QueryCache(4)
        cache.put("k", epoch=3, value="old")
        cache.put("k", epoch=5, value="new")
        assert cache.get("k", epoch=5) == "new"
        assert cache.stale_puts == 0

    def test_stale_puts_in_stats_row(self):
        cache = QueryCache(4)
        cache.put("k", epoch=5, value="new")
        cache.put("k", epoch=4, value="old")
        assert cache.stats_row()["stale_puts"] == 1

    def test_clear(self):
        cache = QueryCache(2)
        cache.put("a", 1, 1)
        cache.clear()
        assert len(cache) == 0


class TestFacadeCaching:
    @pytest.fixture
    def sg(self):
        graph = power_law_graph(300, 3, seed=7, weight_range=(1.0, 4.0))
        return SGraph(graph=graph,
                      config=SGraphConfig(num_hubs=4, cache_size=32))

    def test_repeat_query_hits(self, sg):
        verts = sorted(sg.graph.vertices())
        s, t = verts[0], verts[100]
        first = sg.distance(s, t)
        second = sg.distance(s, t)
        assert second.value == first.value
        assert sg.cache.hits == 1

    def test_mutation_invalidates(self, sg):
        verts = sorted(sg.graph.vertices())
        s, t = verts[0], verts[100]
        before = sg.distance(s, t).value
        sg.add_edge(s, t, 0.5)
        after = sg.distance(s, t)
        assert after.value == 0.5
        assert after.value != before or before == 0.5
        assert sg.cache.hits == 0

    def test_tolerance_keys_separate(self, sg):
        verts = sorted(sg.graph.vertices())
        s, t = verts[0], verts[100]
        exact = sg.distance(s, t).value
        approx = sg.distance(s, t, tolerance=1.0).value
        assert approx >= exact
        # Each variant cached under its own key.
        sg.distance(s, t)
        sg.distance(s, t, tolerance=1.0)
        assert sg.cache.hits == 2

    def test_cache_disabled_by_default(self):
        graph = power_law_graph(100, 3, seed=8)
        sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=2))
        assert sg.cache is None
        verts = sorted(graph.vertices())
        sg.distance(verts[0], verts[1])  # works without a cache

    def test_cached_results_correct_under_churn(self, sg):
        import random

        from repro.baselines.dijkstra import dijkstra_distance

        rng = random.Random(11)
        verts = sorted(sg.graph.vertices())
        pairs = [tuple(rng.sample(verts, 2)) for _ in range(6)]
        for round_ in range(8):
            u, v = rng.sample(verts, 2)
            if sg.graph.has_edge(u, v) and rng.random() < 0.5:
                sg.remove_edge(u, v)
            else:
                sg.add_edge(u, v, rng.uniform(1.0, 4.0))
            for s, t in pairs:
                got = sg.distance(s, t).value       # fills cache
                again = sg.distance(s, t).value     # cache hit
                ref, _stats = dijkstra_distance(sg.graph, s, t)
                assert got == pytest.approx(ref)
                assert again == pytest.approx(ref)
        assert sg.cache.hits > 0
