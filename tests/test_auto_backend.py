"""The ``backend="auto"`` live-facade crossover heuristic, pinned.

Auto must cross the live facade over to the dense plane exactly when the
workload justifies the per-epoch rebuild: AUTO_DENSE_QUERY_RATIO queries
in a row since the last mutation, or that many queries per update interval
on average (EMA).  Under alternating update/query churn it must stay dict
— the rebuild would dominate — and the decision must be observable without
being perturbed (``serving_backend`` is a pure peek).
"""

from __future__ import annotations

import random

from repro.core.config import SGraphConfig
from repro.graph.dynamic_graph import DynamicGraph
from repro.sgraph import AUTO_DENSE_QUERY_RATIO, SGraph


def _graph(seed: int = 0) -> DynamicGraph:
    rng = random.Random(seed)
    g = DynamicGraph(directed=False)
    for v in range(40):
        g.add_vertex(v)
    added = 0
    while added < 120:
        u, v = rng.randrange(40), rng.randrange(40)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, rng.uniform(0.5, 3.0))
        added += 1
    return g


def _auto() -> SGraph:
    return SGraph(graph=_graph(), config=SGraphConfig(
        num_hubs=5, queries=("distance",), backend="auto",
    ))


def _served_dense(sg: SGraph) -> bool:
    """Whether the last distance query ran on the dense plane (the dense
    serving cache holds an engine for the current epoch exactly when it
    did)."""
    entry = sg._dense_serving.get("distance")
    return entry is not None and entry[0] == sg.epoch


class TestCrossoverThreshold:
    def test_query_run_crosses_at_ratio(self):
        """Queries 1..RATIO-1 after a mutation stay dict; query RATIO flips."""
        sg = _auto()
        threshold = int(AUTO_DENSE_QUERY_RATIO)
        for i in range(1, threshold):
            assert sg.serving_backend("distance") == "dict"
            sg.distance(0, 1)
            assert not _served_dense(sg), f"query {i} rebuilt the plane"
        assert sg.serving_backend("distance") == "dense"
        sg.distance(0, 1)
        assert _served_dense(sg)

    def test_alternating_churn_stays_dict(self):
        """update, query, update, query, ... never justifies the rebuild."""
        sg = _auto()
        rng = random.Random(1)
        for i in range(20):
            sg.add_edge(rng.randrange(40), rng.randrange(39) + 1,
                        rng.uniform(0.5, 3.0))
            assert sg.serving_backend("distance") == "dict"
            sg.distance(0, 1)
            assert not _served_dense(sg), f"round {i} rebuilt the plane"

    def test_query_heavy_history_survives_one_update(self):
        """A long query run folds into the EMA: one mutation later the very
        first query is already served dense (8 queries / 1 update ≥ ratio)."""
        sg = _auto()
        for _ in range(8):
            sg.distance(0, 1)
        sg.add_edge(0, 39, 0.25)
        assert sg.serving_backend("distance") == "dense"
        sg.distance(0, 39)
        assert _served_dense(sg)

    def test_sustained_churn_decays_the_ema(self):
        """The dense verdict from a query-heavy past fades under sustained
        mutation-only churn."""
        sg = _auto()
        for _ in range(8):
            sg.distance(0, 1)
        rng = random.Random(2)
        for _ in range(8):  # 8 mutations, no queries: EMA halves each time
            sg.add_edge(rng.randrange(40), rng.randrange(39) + 1,
                        rng.uniform(0.5, 3.0))
        assert sg.serving_backend("distance") == "dict"

    def test_peek_is_non_destructive(self):
        sg = _auto()
        for _ in range(50):
            assert sg.serving_backend("distance") == "dict"
        # 50 peeks recorded no queries: the first real queries still count
        # from zero
        sg.distance(0, 1)
        assert not _served_dense(sg)


class TestBackendPins:
    def test_dense_backend_always_dense(self):
        sg = SGraph(graph=_graph(), config=SGraphConfig(
            num_hubs=5, queries=("distance",), backend="dense",
        ))
        assert sg.serving_backend("distance") == "dense"
        sg.distance(0, 1)
        assert _served_dense(sg)

    def test_dict_backend_never_dense(self):
        sg = SGraph(graph=_graph(), config=SGraphConfig(
            num_hubs=5, queries=("distance",), backend="dict",
        ))
        for _ in range(10):
            sg.distance(0, 1)
        assert sg.serving_backend("distance") == "dict"
        assert not _served_dense(sg)

    def test_non_minplus_families_stay_dict(self):
        sg = SGraph(graph=_graph(), config=SGraphConfig(
            num_hubs=5, queries=("distance", "capacity"), backend="auto",
        ))
        assert sg.serving_backend("capacity") == "dict"

    def test_auto_answers_match_dict_across_crossover(self):
        """Values agree before, at, and after the flip."""
        sg_auto = _auto()
        sg_dict = SGraph(graph=_graph(), config=SGraphConfig(
            num_hubs=5, queries=("distance",), backend="dict",
        ))
        rng = random.Random(3)
        for i in range(12):
            s, t = rng.sample(range(40), 2)
            assert sg_auto.distance(s, t).value == sg_dict.distance(s, t).value
            if i % 5 == 4:
                u, v = rng.sample(range(40), 2)
                w = rng.uniform(0.5, 3.0)
                sg_auto.add_edge(u, v, w)
                sg_dict.add_edge(u, v, w)
