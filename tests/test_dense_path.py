"""Differential tests: dense-plane path extraction vs the dict reference.

``_path_search_dense`` is a transliteration of ``_path_search`` onto flat
parent arrays in dense-id space, so on continuous-weight graphs (tie-free
costs) it must return the same value, a path of exactly that cost, and the
same stats-visible search work for every pruning policy.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.core.pruning import PruningPolicy
from repro.errors import ConfigError
from repro.graph.dynamic_graph import DynamicGraph
from repro.sgraph import SGraph

POLICIES = [
    PruningPolicy.NONE,
    PruningPolicy.UPPER_ONLY,
    PruningPolicy.UPPER_AND_LOWER,
]


def _random_graph(seed: int, directed: bool) -> DynamicGraph:
    rng = random.Random(seed)
    g = DynamicGraph(directed=directed)
    for v in range(70):
        g.add_vertex(v)
    added = 0
    while added < 200:
        u, v = rng.randrange(67), rng.randrange(67)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, rng.uniform(0.5, 3.0))
        added += 1
    return g


def _engines(seed: int, policy: PruningPolicy, directed: bool):
    """The same graph twice: dict reference engine vs dense-served engine."""
    g = _random_graph(seed, directed)
    index = HubIndex.build(g, 6)
    dict_engine = PairwiseEngine(
        g, index=index if policy.uses_index else None, policy=policy,
    )
    sg = SGraph(graph=_random_graph(seed, directed), config=SGraphConfig(
        num_hubs=6, policy=policy, queries=("distance",), backend="dense",
    ))
    sg._ensure_indexes()
    return g, dict_engine, sg._dense_engine("distance")


def _path_cost(g: DynamicGraph, path) -> float:
    return sum(g.edge_weight(u, v) for u, v in zip(path, path[1:]))


def _stats_tuple(stats):
    return (
        stats.activations,
        stats.pushes,
        stats.relaxations,
        stats.pruned_by_upper_bound,
        stats.pruned_by_lower_bound,
        stats.answered_by_index,
    )


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("directed", [False, True])
def test_dense_path_bit_identical(policy, directed):
    rng = random.Random(500 + 10 * directed + POLICIES.index(policy))
    for seed in range(4):
        g, dict_engine, dense_engine = _engines(seed, policy, directed)
        verts = sorted(g.vertices())
        for _ in range(25):
            s, t = rng.sample(verts, 2)
            ref_value, ref_path, ref_stats = dict_engine.best_path(s, t)
            value, path, stats = dense_engine.best_path(s, t)
            assert value == ref_value
            if ref_path is None:
                assert path is None
            else:
                assert path[0] == s and path[-1] == t
                assert _path_cost(g, path) == pytest.approx(value, abs=1e-12)
            assert _stats_tuple(stats) == _stats_tuple(ref_stats)


def test_dense_path_isolated_and_self():
    g, dict_engine, dense_engine = _engines(
        3, PruningPolicy.UPPER_AND_LOWER, directed=False,
    )
    # 67..69 are isolated: unreachable in both directions
    value, path, stats = dense_engine.best_path(0, 68)
    assert value == math.inf and path is None
    # source == target short-circuits identically
    value, path, _ = dense_engine.best_path(5, 5)
    assert value == 0.0 and path == [5]


def test_dense_path_through_sgraph_facade():
    """SGraph.shortest_path routes through the dense plane when configured."""
    sg_dense = SGraph(graph=_random_graph(7, False), config=SGraphConfig(
        num_hubs=6, queries=("distance",), backend="dense",
    ))
    sg_dict = SGraph(graph=_random_graph(7, False), config=SGraphConfig(
        num_hubs=6, queries=("distance",), backend="dict",
    ))
    rng = random.Random(70)
    verts = sorted(sg_dict.graph.vertices())
    for _ in range(20):
        s, t = rng.sample(verts, 2)
        a = sg_dict.shortest_path(s, t)
        b = sg_dense.shortest_path(s, t)
        assert b.value == a.value
        assert (b.path is None) == (a.path is None)


def test_dense_path_needs_index_for_witness():
    """An index-using dense engine without its index refuses path queries
    (the witness fallback descends the dict hub trees)."""
    sg = SGraph(graph=_random_graph(9, False), config=SGraphConfig(
        num_hubs=6, queries=("distance",), backend="dense",
    ))
    sg._ensure_indexes()
    plane = sg._dense_engine("distance").dense_plane
    from repro.serving import PlaneGraph

    engine = PairwiseEngine(
        PlaneGraph(plane.csr), policy=PruningPolicy.UPPER_AND_LOWER,
        dense=plane,
    )
    with pytest.raises(ConfigError):
        engine.best_path(0, 1)
    # the index-free policy searches to completion and never needs it
    none_engine = PairwiseEngine(
        PlaneGraph(plane.csr), policy=PruningPolicy.NONE, dense=plane,
    )
    value, path, _ = none_engine.best_path(0, 1)
    ref = sg.distance(0, 1)
    assert value == ref.value
