"""HistoryGraph time-travel tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, SnapshotError
from repro.graph.history import HistoryGraph
from repro.streaming.update import EdgeUpdate


def _edge_set(graph):
    return {(s, d, w) for s, d, w in graph.edges()}


class TestBasics:
    def test_initial_state(self):
        h = HistoryGraph()
        assert h.num_logged_ops == 0
        assert h.num_checkpoints == 1
        assert "HistoryGraph" in repr(h)

    def test_invalid_interval(self):
        with pytest.raises(GraphError):
            HistoryGraph(checkpoint_interval=0)

    def test_mutations_logged(self):
        h = HistoryGraph()
        h.add_edge(0, 1, 2.0)
        h.add_vertex(5)
        h.remove_edge(0, 1)
        assert h.num_logged_ops == 3
        assert h.epochs() == sorted(h.epochs())

    def test_noop_mutations_not_logged(self):
        h = HistoryGraph()
        h.add_edge(0, 1, 2.0)
        before = h.num_logged_ops
        h.add_edge(0, 1, 2.0)   # identical weight
        h.add_vertex(0)          # exists
        assert not h.discard_edge(3, 4)
        assert h.num_logged_ops == before

    def test_apply_updates(self):
        h = HistoryGraph()
        n = h.apply([EdgeUpdate.insert(0, 1, 1.5), EdgeUpdate.delete(0, 1)])
        assert n == 2
        assert h.current.num_edges == 0


class TestTimeTravel:
    def test_state_at_each_step(self):
        h = HistoryGraph()
        snapshots = {h.epoch: _edge_set(h.current)}
        rng = random.Random(3)
        for step in range(60):
            u, v = rng.sample(range(10), 2)
            if h.current.has_edge(u, v) and rng.random() < 0.5:
                h.remove_edge(u, v)
            else:
                h.add_edge(u, v, rng.uniform(1.0, 5.0))
            snapshots[h.epoch] = _edge_set(h.current)
        for epoch, expected in snapshots.items():
            assert _edge_set(h.state_at(epoch)) == expected, epoch

    def test_epochs_between_ops_resolve_backwards(self):
        h = HistoryGraph()
        h.add_edge(0, 1, 1.0)
        mid_epoch = h.epoch
        h.add_edge(2, 3, 1.0)
        # An epoch strictly between two ops sees the earlier state.
        state = h.state_at(mid_epoch)
        assert state.has_edge(0, 1)
        assert not state.has_edge(2, 3)

    def test_before_history_raises(self):
        h = HistoryGraph()
        with pytest.raises(SnapshotError):
            h.state_at(-1)

    def test_vertex_removal_replayed(self):
        h = HistoryGraph()
        h.add_edge(0, 1, 1.0)
        h.add_edge(1, 2, 1.0)
        before = h.epoch
        h.remove_vertex(1)
        old = h.state_at(before)
        assert old.has_vertex(1)
        assert old.has_edge(0, 1)
        now = h.state_at(h.epoch)
        assert not now.has_vertex(1)
        assert now.num_edges == 0

    def test_weight_changes_replayed(self):
        h = HistoryGraph()
        h.add_edge(0, 1, 1.0)
        e1 = h.epoch
        h.add_edge(0, 1, 9.0)
        assert h.state_at(e1).edge_weight(0, 1) == 1.0
        assert h.state_at(h.epoch).edge_weight(0, 1) == 9.0

    def test_directed(self):
        h = HistoryGraph(directed=True)
        h.add_edge(0, 1, 1.0)
        e1 = h.epoch
        h.add_edge(1, 0, 2.0)
        old = h.state_at(e1)
        assert old.directed
        assert old.has_edge(0, 1)
        assert not old.has_edge(1, 0)


class TestCheckpointing:
    def test_checkpoints_created(self):
        h = HistoryGraph(checkpoint_interval=8)
        for i in range(30):
            h.add_edge(i, i + 1, 1.0)
        assert h.num_checkpoints >= 3

    def test_replay_crosses_checkpoints(self):
        h = HistoryGraph(checkpoint_interval=5)
        marks = []
        for i in range(40):
            h.add_edge(i, i + 1, 1.0)
            marks.append((h.epoch, i + 2))  # vertices so far
        for epoch, expected_vertices in marks:
            assert h.state_at(epoch).num_vertices == expected_vertices

    @given(st.integers(0, 10_000), st.integers(1, 20))
    @settings(max_examples=10, deadline=None)
    def test_checkpoint_interval_invariance(self, seed, interval):
        """state_at must not depend on where checkpoints landed."""
        rng = random.Random(seed)
        ops = []
        for _ in range(50):
            u, v = rng.sample(range(8), 2)
            if rng.random() < 0.6:
                ops.append(("add", u, v, rng.uniform(1.0, 5.0)))
            else:
                ops.append(("del", u, v, None))
        h1 = HistoryGraph(checkpoint_interval=interval)
        h2 = HistoryGraph(checkpoint_interval=1000)
        probes = []
        for op, u, v, w in ops:
            for h in (h1, h2):
                if op == "add":
                    h.add_edge(u, v, w)
                else:
                    h.discard_edge(u, v)
            assert h1.epoch == h2.epoch
            probes.append(h1.epoch)
        for epoch in probes[:: max(1, len(probes) // 10)]:
            assert _edge_set(h1.state_at(epoch)) == _edge_set(
                h2.state_at(epoch)
            )
