"""Path materialization tests: stitching, hub-tree descent, engine path mode."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.core.paths import (
    descend_tree,
    hub_witness_path,
    path_cost,
    stitch_bidirectional,
)
from repro.core.semiring import BOTTLENECK_CAPACITY, SHORTEST_DISTANCE
from repro.errors import IndexStateError
from repro.graph.generators import erdos_renyi_graph, grid_graph
from repro.sgraph import SGraph
from repro.core.config import SGraphConfig
from tests.conftest import reference_dijkstra, reference_widest


class TestStitch:
    def test_meeting_in_middle(self):
        parents_f = {0: None, 1: 0, 2: 1}
        parents_b = {4: None, 3: 4, 2: 3}
        assert stitch_bidirectional(2, parents_f, parents_b) == [0, 1, 2, 3, 4]

    def test_meet_at_endpoint(self):
        parents_f = {0: None}
        parents_b = {1: None, 0: 1}
        assert stitch_bidirectional(0, parents_f, parents_b) == [0, 1]


class TestDescent:
    def test_forward_tree(self, line_graph):
        from repro.streaming.incremental_sssp import IncrementalBestPath

        tree = IncrementalBestPath(line_graph, 0, SHORTEST_DISTANCE)
        chain = descend_tree(line_graph, tree.raw_cost_table(),
                             SHORTEST_DISTANCE, 4, toward_source=True)
        assert chain == [0, 1, 2, 3, 4]

    def test_backward_tree_directed(self, directed_diamond):
        from repro.streaming.incremental_sssp import IncrementalBestPath

        tree = IncrementalBestPath(directed_diamond, 3, SHORTEST_DISTANCE,
                                   direction="backward")
        chain = descend_tree(directed_diamond, tree.raw_cost_table(),
                             SHORTEST_DISTANCE, 0, toward_source=False)
        assert chain == [0, 1, 3]  # the cheap arm of the diamond

    def test_unreachable_endpoint_raises(self, two_components):
        from repro.streaming.incremental_sssp import IncrementalBestPath

        tree = IncrementalBestPath(two_components, 0, SHORTEST_DISTANCE)
        with pytest.raises(IndexStateError):
            descend_tree(two_components, tree.raw_cost_table(),
                         SHORTEST_DISTANCE, 3, toward_source=True)


class TestHubWitness:
    def test_witness_through_hub(self, line_graph):
        index = HubIndex(line_graph, [2])
        path = hub_witness_path(index, line_graph, 0, 4)
        assert path == [0, 1, 2, 3, 4]

    def test_no_witness_raises(self, two_components):
        index = HubIndex(two_components, [0])
        with pytest.raises(IndexStateError):
            hub_witness_path(index, two_components, 0, 3)

    def test_path_cost_helper(self, triangle_graph):
        assert path_cost(triangle_graph, SHORTEST_DISTANCE, [0, 1, 2]) == 3.0
        assert path_cost(triangle_graph, BOTTLENECK_CAPACITY, [0, 1, 2]) == 1.0
        assert path_cost(triangle_graph, SHORTEST_DISTANCE, []) == math.inf


class TestEnginePathMode:
    def _assert_valid(self, graph, semiring, s, t, value, path, expected):
        assert value == pytest.approx(expected)
        if expected == semiring.unreachable:
            assert path is None
            return
        assert path is not None
        assert path[0] == s and path[-1] == t
        assert path_cost(graph, semiring, path) == pytest.approx(expected)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_distance_paths_random(self, seed):
        graph = erdos_renyi_graph(18, 30, seed=seed, weight_range=(1.0, 5.0))
        hubs = sorted(graph.vertices(), key=graph.degree)[-3:]
        index = HubIndex(graph, hubs)
        engine = PairwiseEngine(graph, index=index)
        verts = sorted(graph.vertices())
        ref = reference_dijkstra(graph, verts[0])
        for t in verts[1:]:
            value, path, _stats = engine.best_path(verts[0], t)
            self._assert_valid(graph, SHORTEST_DISTANCE, verts[0], t,
                               value, path, ref.get(t, math.inf))

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_capacity_paths_random(self, seed):
        graph = erdos_renyi_graph(14, 24, seed=seed, weight_range=(1.0, 5.0))
        hubs = list(graph.vertices())[:3]
        index = HubIndex(graph, hubs, semiring=BOTTLENECK_CAPACITY)
        engine = PairwiseEngine(graph, index=index)
        verts = sorted(graph.vertices())
        ref = reference_widest(graph, verts[0])
        for t in verts[1:]:
            value, path, _stats = engine.best_path(verts[0], t)
            self._assert_valid(graph, BOTTLENECK_CAPACITY, verts[0], t,
                               value, path, ref.get(t, -math.inf))

    def test_policy_none_paths(self, small_grid):
        engine = PairwiseEngine(small_grid, policy="none")
        value, path, _stats = engine.best_path(0, 63)
        assert path[0] == 0 and path[-1] == 63
        assert path_cost(small_grid, SHORTEST_DISTANCE, path) == pytest.approx(
            value
        )

    def test_same_endpoint(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        value, path, _stats = engine.best_path(1, 1)
        assert value == 0.0
        assert path == [1]

    def test_witness_shortcut_used_when_hub_on_path(self, line_graph):
        index = HubIndex(line_graph, [2])
        engine = PairwiseEngine(line_graph, index=index)
        value, path, stats = engine.best_path(0, 4)
        assert value == 4.0
        assert path == [0, 1, 2, 3, 4]


class TestFacadePaths:
    def test_shortest_path(self):
        sg = SGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)],
            config=SGraphConfig(num_hubs=2, queries=("distance", "capacity")),
        )
        result = sg.shortest_path(0, 2)
        assert result.value == 2.0
        assert result.path == [0, 1, 2]

    def test_widest_path(self):
        sg = SGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)],
            config=SGraphConfig(num_hubs=2, queries=("distance", "capacity")),
        )
        result = sg.widest_path(0, 2)
        assert result.value == 5.0
        assert result.path == [0, 2]

    def test_unreachable_path_is_none(self, two_components):
        sg = SGraph(graph=two_components, config=SGraphConfig(num_hubs=2))
        result = sg.shortest_path(0, 3)
        assert result.value == math.inf
        assert result.path is None

    def test_path_needs_family(self, triangle_graph):
        from repro.errors import ConfigError

        sg = SGraph(graph=triangle_graph,
                    config=SGraphConfig(queries=("distance",)))
        with pytest.raises(ConfigError):
            sg.widest_path(0, 2)

    def test_paths_stay_valid_under_churn(self):
        graph = grid_graph(10, 10, seed=3, weight_range=(1.0, 5.0))
        sg = SGraph(graph=graph,
                    config=SGraphConfig(num_hubs=6, hub_strategy="far-apart"))
        import random

        rng = random.Random(9)
        verts = list(graph.vertices())
        for step in range(25):
            u, v = rng.sample(verts, 2)
            if graph.has_edge(u, v) and rng.random() < 0.4:
                sg.remove_edge(u, v)
            else:
                sg.add_edge(u, v, rng.uniform(1.0, 5.0))
            s, t = rng.sample(verts, 2)
            result = sg.shortest_path(s, t)
            ref = reference_dijkstra(graph, s).get(t, math.inf)
            assert result.value == pytest.approx(ref)
            if result.path is not None:
                assert path_cost(graph, SHORTEST_DISTANCE,
                                 result.path) == pytest.approx(ref)
