"""Fuzz: interleaved dense verbs on reused workspaces vs fresh replays.

The strongest correctness claim the workspace makes is *invisibility*: a
single engine answering an arbitrary interleaving of every dense verb —
``best_cost``, ``one_to_many``, ``best_path``, ``nearest``/``within``
expansion — over a long run and across several published epochs must be
bit-identical, in values AND search counters, to replaying each query on
an engine that rebuilds its state from scratch every call.  Any entry a
verb failed to sparse-reset would eventually surface here as a wrong
label, a phantom settled mark, or a perturbed counter.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.pruning import PruningPolicy
from repro.graph.dynamic_graph import DynamicGraph
from repro.sgraph import SGraph
from repro.streaming.versioning import VersionedStore

POLICIES = [
    PruningPolicy.NONE,
    PruningPolicy.UPPER_ONLY,
    PruningPolicy.UPPER_AND_LOWER,
]

N = 64


def _seed_graph(seed: int) -> DynamicGraph:
    rng = random.Random(seed)
    g = DynamicGraph(directed=False)
    for v in range(N):
        g.add_vertex(v)
    added = 0
    while added < 170:
        u, v = rng.randrange(N), rng.randrange(N)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, rng.uniform(0.5, 3.0))
        added += 1
    return g


def _stats_tuple(stats):
    return (
        stats.activations,
        stats.pushes,
        stats.relaxations,
        stats.pruned_by_upper_bound,
        stats.pruned_by_lower_bound,
        stats.answered_by_index,
    )


def _random_verb(rng):
    """One (verb-name, args) draw from the five dense verbs."""
    roll = rng.random()
    s = rng.randrange(N)
    if roll < 0.35:
        return "best_cost", (s, rng.randrange(N))
    if roll < 0.55:
        k = rng.randrange(2, 9)
        return "one_to_many", (s, [rng.randrange(N) for _ in range(k)])
    if roll < 0.75:
        return "best_path", (s, rng.randrange(N))
    if roll < 0.88:
        return "nearest", (s, rng.randrange(1, 8))
    return "within", (s, rng.uniform(0.5, 4.0))


def _run_verb(engine: PairwiseEngine, verb: str, args):
    """Execute one verb, normalizing to (comparable-value, stats-or-None)."""
    if verb == "best_cost":
        value, stats = engine.best_cost(*args)
        return value, _stats_tuple(stats)
    if verb == "one_to_many":
        values, stats = engine.one_to_many(*args)
        return values, _stats_tuple(stats)
    if verb == "best_path":
        value, path, stats = engine.best_path(*args)
        return (value, path), _stats_tuple(stats)
    if verb == "nearest":
        return engine.expand(args[0], args[1], None), None
    assert verb == "within"
    return engine.expand(args[0], None, args[1]), None


@pytest.mark.parametrize("policy", POLICIES)
def test_interleaved_verbs_across_epochs_match_fresh_replays(policy):
    sg = SGraph(graph=_seed_graph(77), config=SGraphConfig(
        num_hubs=6, policy=policy, queries=("distance",), backend="dense",
    ))
    store = VersionedStore(sg, capacity=4)
    rng = random.Random(1000 + POLICIES.index(policy))

    views = [store.publish()]
    for _round in range(2):
        # churn a few edges, then publish the next epoch
        for _ in range(6):
            u, v = rng.randrange(N), rng.randrange(N)
            if u == v:
                continue
            if sg.graph.has_edge(u, v) and rng.random() < 0.4:
                sg.remove_edge(u, v)
            else:
                sg.add_edge(u, v, rng.uniform(0.3, 2.5))
        views.append(store.publish())
    assert len({v.epoch for v in views}) >= 3

    # Interleave verbs over all three epochs on the views' *reused* engines.
    trace = []
    for _step in range(240):
        view = rng.choice(views)
        verb, args = _random_verb(rng)
        result = _run_verb(view.engine("distance"), verb, args)
        trace.append((view, verb, args, result))

    # Every engine kept one workspace for the whole interleaving...
    for view in views:
        row = view.engine("distance").workspace_stats()
        assert row["workspace_allocs"] == 1
        assert view.engine("distance").workspace.is_clean()

    # ...and every recorded answer replays bit-identically on a fresh-state
    # reference engine (one per epoch, fresh O(V) arrays per query).
    references = {
        view.epoch: PairwiseEngine(
            view.engine("distance")._graph,
            index=view.engine("distance").index,
            policy=policy,
            dense=view.engine("distance").dense_plane,
            reuse_workspace=False,
        )
        for view in views
    }
    for view, verb, args, result in trace:
        assert _run_verb(references[view.epoch], verb, args) == result, (
            f"epoch {view.epoch}: {verb}{args} diverged from fresh replay"
        )
