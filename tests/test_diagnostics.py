"""Bound-gap diagnostics tests."""

from __future__ import annotations

import math

import pytest

from repro.core.diagnostics import (
    BoundGap,
    bound_gap_profile,
    index_coverage,
)
from repro.core.hub_index import HubIndex
from repro.core.semiring import BOTTLENECK_CAPACITY
from repro.errors import ConfigError
from repro.graph.generators import power_law_graph
from repro.graph.stats import sample_vertex_pairs


class TestBoundGap:
    def test_exact_pair(self):
        gap = BoundGap(0, 1, lower=3.0, upper=3.0)
        assert gap.ratio == 1.0
        assert gap.is_exact

    def test_unreachable_proof_is_exact(self):
        gap = BoundGap(0, 1, lower=math.inf, upper=math.inf)
        assert gap.is_exact

    def test_open_gap(self):
        gap = BoundGap(0, 1, lower=2.0, upper=5.0)
        assert gap.ratio == 2.5
        assert not gap.is_exact

    def test_no_upper_bound(self):
        gap = BoundGap(0, 1, lower=1.0, upper=math.inf)
        assert gap.ratio == math.inf

    def test_zero_lower_bound(self):
        gap = BoundGap(0, 1, lower=0.0, upper=4.0)
        assert gap.ratio == math.inf


class TestProfile:
    @pytest.fixture
    def setup(self):
        graph = power_law_graph(400, 4, seed=7, weight_range=(1.0, 4.0))
        index = HubIndex.build(graph, 8)
        pairs = sample_vertex_pairs(graph, 20, seed=8)
        return graph, index, pairs

    def test_report_shape(self, setup):
        _graph, index, pairs = setup
        report = bound_gap_profile(index, pairs)
        assert report.total == 20
        assert 0.0 <= report.exact_fraction <= 1.0
        assert report.closable_fraction(0.0) == report.exact_fraction
        assert report.closable_fraction(10.0) >= report.closable_fraction(0.1)
        row = report.as_row()
        assert row["pairs"] == 20
        assert row["gap_p90"] >= row["gap_p50"]

    def test_bounds_bracket_truth(self, setup):
        _graph, index, pairs = setup
        report = bound_gap_profile(index, pairs, with_truth=True)
        for gap in report.gaps:
            assert gap.true_cost is not None
            assert gap.lower <= gap.true_cost + 1e-9
            assert gap.upper >= gap.true_cost - 1e-9
        assert report.mean_ub_slack >= 1.0

    def test_more_hubs_tighter(self):
        graph = power_law_graph(400, 4, seed=7, weight_range=(1.0, 4.0))
        pairs = sample_vertex_pairs(graph, 24, seed=9)
        small = bound_gap_profile(HubIndex.build(graph, 2), pairs)
        large = bound_gap_profile(HubIndex.build(graph, 32), pairs)
        assert large.ratio_percentile(0.5) <= small.ratio_percentile(0.5)

    def test_capacity_index_rejected(self):
        graph = power_law_graph(100, 3, seed=1)
        index = HubIndex.build(graph, 2, semiring=BOTTLENECK_CAPACITY)
        with pytest.raises(ConfigError):
            bound_gap_profile(index, [(0, 1)])

    def test_coverage(self, setup, two_components):
        _graph, index, pairs = setup
        assert index_coverage(index, pairs) == 1.0  # connected sample
        split_index = HubIndex(two_components, [0])
        assert index_coverage(split_index, [(0, 1), (2, 3)]) == 0.5
        assert index_coverage(split_index, []) == 0.0
