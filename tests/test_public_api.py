"""Public-API surface guards.

Cheap tests that catch packaging-level regressions: every advertised name
resolves, every public module documents itself, and the version marker is
consistent.
"""

from __future__ import annotations

import importlib
import pkgutil

import repro


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_facade_is_exported(self):
        assert repro.SGraph is not None
        assert repro.SGraphConfig is not None


class TestSubpackages:
    def test_all_modules_importable_and_documented(self):
        packages = ["repro"]
        seen = []
        while packages:
            package_name = packages.pop()
            package = importlib.import_module(package_name)
            assert package.__doc__, f"{package_name} lacks a docstring"
            seen.append(package_name)
            if not hasattr(package, "__path__"):
                continue
            for info in pkgutil.iter_modules(package.__path__):
                child = f"{package_name}.{info.name}"
                module = importlib.import_module(child)
                assert module.__doc__, f"{child} lacks a docstring"
                seen.append(child)
                if info.ispkg:
                    packages.append(child)
        # Sanity: the walk actually covered the library.
        assert len(seen) > 30

    def test_subpackage_all_exports_resolve(self):
        for package_name in ("repro.core", "repro.graph", "repro.streaming",
                             "repro.baselines", "repro.bench", "repro.utils"):
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                assert getattr(package, name, None) is not None, (
                    f"{package_name}.{name}"
                )

    def test_error_hierarchy_reachable_from_top(self):
        from repro import ReproError
        from repro.errors import ConfigError

        assert issubclass(ConfigError, ReproError)
