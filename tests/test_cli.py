"""CLI tests (invoked in-process through main())."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "nope"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "social-pl" in out
        assert "|V|" in out

    def test_profile(self, capsys):
        assert main(["profile", "collab-sw"]) == 0
        out = capsys.readouterr().out
        assert "collab-sw" in out

    def test_query_distance_with_path(self, capsys):
        assert main([
            "query", "collab-sw", "0", "25", "--hubs", "4", "--path",
        ]) == 0
        out = capsys.readouterr().out
        assert "distance(0, 25)" in out
        assert "path:" in out

    def test_query_bottleneck(self, capsys):
        assert main([
            "query", "collab-sw", "0", "25", "--kind", "bottleneck",
            "--hubs", "4",
        ]) == 0
        assert "bottleneck(0, 25)" in capsys.readouterr().out

    def test_experiment_e1(self, capsys):
        assert main(["experiment", "e1"]) == 0
        assert "dataset" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_record_then_replay(self, capsys, tmp_path):
        trace = str(tmp_path / "w.trace")
        assert main(["record", "collab-sw", trace,
                     "--updates", "40", "--queries", "6"]) == 0
        assert "recorded" in capsys.readouterr().out
        assert main(["replay", "collab-sw", trace, "--hubs", "4"]) == 0
        out = capsys.readouterr().out
        assert "replayed 40 updates, 6 queries" in out
        assert "activations/query" in out
