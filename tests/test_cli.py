"""CLI tests (invoked in-process through main())."""

from __future__ import annotations

import threading
import time

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "nope"])

    def test_serve_delta_flags(self):
        args = build_parser().parse_args([
            "serve", "uniform-er", "--transport", "tcp", "--delta",
            "--cache-planes", "8",
        ])
        assert args.delta is True
        assert args.cache_planes == 8
        defaults = build_parser().parse_args(["serve", "uniform-er"])
        assert defaults.delta is False
        assert defaults.cache_planes == 4

    def test_attach_delta_flag(self):
        args = build_parser().parse_args(["attach", "h:1", "--delta"])
        assert args.delta is True


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "social-pl" in out
        assert "|V|" in out

    def test_profile(self, capsys):
        assert main(["profile", "collab-sw"]) == 0
        out = capsys.readouterr().out
        assert "collab-sw" in out

    def test_query_distance_with_path(self, capsys):
        assert main([
            "query", "collab-sw", "0", "25", "--hubs", "4", "--path",
        ]) == 0
        out = capsys.readouterr().out
        assert "distance(0, 25)" in out
        assert "path:" in out

    def test_query_bottleneck(self, capsys):
        assert main([
            "query", "collab-sw", "0", "25", "--kind", "bottleneck",
            "--hubs", "4",
        ]) == 0
        assert "bottleneck(0, 25)" in capsys.readouterr().out

    def test_experiment_e1(self, capsys):
        assert main(["experiment", "e1"]) == 0
        assert "dataset" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_record_then_replay(self, capsys, tmp_path):
        trace = str(tmp_path / "w.trace")
        assert main(["record", "collab-sw", trace,
                     "--updates", "40", "--queries", "6"]) == 0
        assert "recorded" in capsys.readouterr().out
        assert main(["replay", "collab-sw", trace, "--hubs", "4"]) == 0
        out = capsys.readouterr().out
        assert "replayed 40 updates, 6 queries" in out
        assert "activations/query" in out

    def test_serve_delta_requires_tcp(self, capsys):
        assert main(["serve", "uniform-er", "--delta"]) == 2
        assert "--delta requires --transport tcp" in capsys.readouterr().err


class TestAttachRobustness:
    @pytest.mark.net
    def test_attach_exits_cleanly_when_server_dies(self, capsys):
        """Killing the server under an attached reader must produce a
        clear message and exit code 1, not a connection-reset traceback."""
        from repro.serving.net import net_available

        if not net_available():
            pytest.skip("loopback TCP sockets unavailable")
        from repro.core.config import SGraphConfig
        from repro.graph.datasets import load_dataset
        from repro.serving.pool import ServeSession
        from repro.sgraph import SGraph

        sg = SGraph(graph=load_dataset("uniform-er"),
                    config=SGraphConfig(num_hubs=4, queries=("distance",)))
        session = ServeSession(sg, workers=1, transport="tcp")
        address = session.transport.address
        killer = threading.Timer(0.4, session.close)
        killer.start()
        try:
            rc = main(["attach", address, "--rounds", "200",
                       "--queries", "4", "--pause", "0.05"])
        finally:
            killer.join()
            session.close()
        captured = capsys.readouterr()
        assert rc == 1
        assert "server went away" in captured.err
        assert "attached to" in captured.out
        # re-attaching after the teardown is also a clean nonzero exit —
        # either the connect is refused or the registry is already empty
        t0 = time.monotonic()
        assert main(["attach", address]) == 1
        assert time.monotonic() - t0 < 5.0
        err = capsys.readouterr().err
        assert "server went away" in err or "nothing published yet" in err
