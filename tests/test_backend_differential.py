"""Differential tests: dense serving plane vs the dict reference plane.

The dense path is a transliteration of the same pruned bidirectional
algorithm onto flat arrays, so it must be *bit-identical* to the dict
reference — same values and the same stats-visible search work
(activations, pushes, relaxations, per-kind prune counts, index answers) —
for every pruning policy, under randomized graphs, churn, and query mixes.

Weighted comparisons use continuous random weights: distinct path costs
make heap ordering tie-free, so traversal statistics are deterministic and
comparable.  The hop metric (unit weights, massive ties) compares values
only.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.config import SGraphConfig
from repro.core.hub_index import DensePlane
from repro.core.pruning import PruningPolicy
from repro.graph.dynamic_graph import DynamicGraph
from repro.sgraph import SGraph
from repro.streaming.versioning import VersionedStore

POLICIES = [
    PruningPolicy.NONE,
    PruningPolicy.UPPER_ONLY,
    PruningPolicy.UPPER_AND_LOWER,
]


def _random_graph(rng: random.Random, n: int, m: int,
                  directed: bool) -> DynamicGraph:
    """Random graph with continuous (tie-free) weights and a few isolated
    vertices, so the dense plane's empty CSR rows are exercised too."""
    g = DynamicGraph(directed=directed)
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u, v = rng.randrange(n - 3), rng.randrange(n - 3)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, rng.uniform(0.5, 3.0))
        added += 1
    return g


def _twin_sgraphs(rng: random.Random, policy: PruningPolicy, directed: bool,
                  queries=("distance",)):
    """The same graph served twice: dict reference vs dense plane."""
    seed = rng.randrange(1 << 30)
    pair = []
    for backend in ("dict", "dense"):
        g = _random_graph(random.Random(seed), 80, 240, directed)
        pair.append(SGraph(graph=g, config=SGraphConfig(
            num_hubs=6, policy=policy, queries=queries, backend=backend,
        )))
    return pair


def _stats_tuple(stats):
    return (
        stats.activations,
        stats.pushes,
        stats.relaxations,
        stats.pruned_by_upper_bound,
        stats.pruned_by_lower_bound,
        stats.answered_by_index,
    )


def _churn(rng: random.Random, sgraphs, rounds: int) -> None:
    """Apply one identical batch of mutations to every facade."""
    verts = sorted(sgraphs[0].graph.vertices())
    for _ in range(rounds):
        u, v = rng.sample(verts, 2)
        if sgraphs[0].graph.has_edge(u, v) and rng.random() < 0.5:
            for sg in sgraphs:
                sg.remove_edge(u, v)
        else:
            w = rng.uniform(0.5, 3.0)
            for sg in sgraphs:
                sg.add_edge(u, v, w)


class TestFacadeParity:
    """SGraph(backend="dense") vs SGraph(backend="dict"), live queries."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("directed", [False, True])
    def test_distance_bit_identical(self, policy, directed):
        rng = random.Random(1000 + 10 * directed + POLICIES.index(policy))
        sg_dict, sg_dense = _twin_sgraphs(rng, policy, directed)
        verts = sorted(sg_dict.graph.vertices())
        for epoch_round in range(3):
            for _ in range(25):
                s, t = rng.sample(verts, 2)
                a = sg_dict.distance(s, t)
                b = sg_dense.distance(s, t)
                assert b.value == a.value  # exact, not approx
                assert _stats_tuple(b.stats) == _stats_tuple(a.stats)
            _churn(rng, (sg_dict, sg_dense), rounds=6)

    def test_tolerance_queries_bit_identical(self):
        rng = random.Random(7)
        sg_dict, sg_dense = _twin_sgraphs(
            rng, PruningPolicy.UPPER_AND_LOWER, directed=False
        )
        verts = sorted(sg_dict.graph.vertices())
        for tol in (0.0, 0.5, 2.0, math.inf):
            for _ in range(10):
                s, t = rng.sample(verts, 2)
                a = sg_dict.distance(s, t, tolerance=tol)
                b = sg_dense.distance(s, t, tolerance=tol)
                assert b.value == a.value
                assert _stats_tuple(b.stats) == _stats_tuple(a.stats)

    def test_reachable_and_within_distance_match(self):
        rng = random.Random(8)
        sg_dict, sg_dense = _twin_sgraphs(
            rng, PruningPolicy.UPPER_AND_LOWER, directed=True
        )
        verts = sorted(sg_dict.graph.vertices())
        for _ in range(20):
            s, t = rng.sample(verts, 2)
            assert (sg_dense.reachable(s, t).value
                    == sg_dict.reachable(s, t).value)
            for budget in (1.0, 5.0, 20.0):
                a = sg_dict.within_distance(s, t, budget)
                b = sg_dense.within_distance(s, t, budget)
                assert b.value == a.value

    def test_hops_values_match(self):
        # Unit weights are tie-heavy, so only values are comparable.
        rng = random.Random(9)
        sg_dict, sg_dense = _twin_sgraphs(
            rng, PruningPolicy.UPPER_AND_LOWER, directed=False,
            queries=("distance", "hops"),
        )
        verts = sorted(sg_dict.graph.vertices())
        for _ in range(2):
            for _ in range(20):
                s, t = rng.sample(verts, 2)
                assert (sg_dense.hop_distance(s, t).value
                        == sg_dict.hop_distance(s, t).value)
            _churn(rng, (sg_dict, sg_dense), rounds=5)

    def test_isolated_endpoints_unreachable_on_both(self):
        rng = random.Random(10)
        sg_dict, sg_dense = _twin_sgraphs(
            rng, PruningPolicy.UPPER_AND_LOWER, directed=True
        )
        verts = sorted(sg_dict.graph.vertices())
        isolated = verts[-1]  # _random_graph never wires the last 3 vertices
        a = sg_dict.distance(verts[0], isolated)
        b = sg_dense.distance(verts[0], isolated)
        assert a.value == b.value == math.inf
        assert _stats_tuple(b.stats) == _stats_tuple(a.stats)


class TestOneToManyParity:
    """Batched one-to-many: dense flat-array search vs the dict reference."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("directed", [False, True])
    def test_distance_many_bit_identical(self, policy, directed):
        rng = random.Random(2000 + 10 * directed + POLICIES.index(policy))
        sg_dict, sg_dense = _twin_sgraphs(rng, policy, directed)
        verts = sorted(sg_dict.graph.vertices())
        for _epoch_round in range(3):
            for _ in range(12):
                s = rng.choice(verts)
                targets = rng.sample(verts, rng.randrange(1, 24))
                a = sg_dict.distance_many_result(s, targets)
                b = sg_dense.distance_many_result(s, targets)
                assert b.values == a.values  # exact, not approx
                assert _stats_tuple(b.stats) == _stats_tuple(a.stats)
            _churn(rng, (sg_dict, sg_dense), rounds=6)

    def test_degenerate_batches_match(self):
        rng = random.Random(2100)
        sg_dict, sg_dense = _twin_sgraphs(
            rng, PruningPolicy.UPPER_AND_LOWER, directed=True
        )
        verts = sorted(sg_dict.graph.vertices())
        s = verts[0]
        isolated = verts[-1]  # _random_graph never wires the last 3 vertices
        for targets in (
            [],                        # empty batch: answered_by_index
            [s],                       # source-only: zero distance, no search
            [s, s, verts[1], verts[1]],  # duplicates collapse identically
            [isolated],                # index proves unreachability
            [isolated, s, verts[1]],
        ):
            a = sg_dict.distance_many_result(s, targets)
            b = sg_dense.distance_many_result(s, targets)
            assert b.values == a.values
            assert _stats_tuple(b.stats) == _stats_tuple(a.stats)

    def test_many_agrees_with_singles(self):
        # The batch must return the per-target answers, both planes.  Exact
        # equality only holds within an algorithm: the pairwise engine's
        # bidirectional meet sums the two half-paths in a different order
        # than the forward-only batch, so this cross-check is isclose.
        rng = random.Random(2200)
        sg_dict, sg_dense = _twin_sgraphs(
            rng, PruningPolicy.UPPER_AND_LOWER, directed=False
        )
        verts = sorted(sg_dict.graph.vertices())
        s = verts[2]
        targets = rng.sample(verts, 16)
        many = sg_dense.distance_many(s, targets)
        for t in targets:
            assert math.isclose(many[t], sg_dict.distance(s, t).value,
                                rel_tol=1e-9)


class TestNeighborhoodParity:
    """nearest/within: dense CSR expansion vs the dict-plane traversal."""

    @pytest.mark.parametrize("directed", [False, True])
    def test_nearest_and_within_match(self, directed):
        rng = random.Random(3000 + directed)
        sg_dict, sg_dense = _twin_sgraphs(
            rng, PruningPolicy.UPPER_AND_LOWER, directed
        )
        verts = sorted(sg_dict.graph.vertices())
        for _epoch_round in range(2):
            for _ in range(15):
                s = rng.choice(verts)
                k = rng.randrange(1, 25)
                radius = rng.uniform(0.5, 8.0)
                # Continuous weights: orderings are tie-free, so the ranked
                # lists must agree element-for-element.
                assert sg_dense.nearest(s, k) == sg_dict.nearest(s, k)
                assert (sg_dense.within(s, radius)
                        == sg_dict.within(s, radius))
            _churn(rng, (sg_dict, sg_dense), rounds=6)

    def test_isolated_source_expands_to_nothing(self):
        # The source itself is excluded from expansion results, so an
        # isolated vertex yields an empty neighborhood on both planes.
        rng = random.Random(3100)
        sg_dict, sg_dense = _twin_sgraphs(
            rng, PruningPolicy.UPPER_AND_LOWER, directed=True
        )
        isolated = sorted(sg_dict.graph.vertices())[-1]
        for sg in (sg_dict, sg_dense):
            assert sg.nearest(isolated, 5) == []
            assert sg.within(isolated, 10.0) == []


class TestFrozenViewParity:
    """Published views (backend auto → dense) vs the dict reference."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_views_bit_identical_across_publishes(self, policy):
        rng = random.Random(20 + POLICIES.index(policy))
        sg_auto, sg_dict = [], []
        for backend in ("auto", "dict"):
            g = _random_graph(random.Random(99), 70, 200, directed=True)
            sg = SGraph(graph=g, config=SGraphConfig(
                num_hubs=5, policy=policy, queries=("distance",),
                backend=backend,
            ))
            (sg_auto if backend == "auto" else sg_dict).append(sg)
        sg_auto, sg_dict = sg_auto[0], sg_dict[0]
        store_auto = VersionedStore(sg_auto, capacity=4)
        store_dict = VersionedStore(sg_dict, capacity=4)
        verts = sorted(sg_auto.graph.vertices())
        for _publish_round in range(3):
            va = store_auto.publish()
            vd = store_dict.publish()
            assert va.epoch == vd.epoch
            for _ in range(15):
                s, t = rng.sample(verts, 2)
                a = vd.distance(s, t)
                b = va.distance(s, t)
                assert b.value == a.value
                assert _stats_tuple(b.stats) == _stats_tuple(a.stats)
                assert (va.within_distance(s, t, 6.0).value
                        == vd.within_distance(s, t, 6.0).value)
            _churn(rng, (sg_auto, sg_dict), rounds=8)

    def test_view_batched_verbs_bit_identical(self):
        rng = random.Random(25)
        facades = []
        for backend in ("auto", "dict"):
            g = _random_graph(random.Random(98), 70, 200, directed=False)
            facades.append(SGraph(graph=g, config=SGraphConfig(
                num_hubs=5, policy=PruningPolicy.UPPER_AND_LOWER,
                queries=("distance",), backend=backend,
            )))
        sg_auto, sg_dict = facades
        store_auto = VersionedStore(sg_auto, capacity=4)
        store_dict = VersionedStore(sg_dict, capacity=4)
        verts = sorted(sg_auto.graph.vertices())
        for _publish_round in range(3):
            va = store_auto.publish()
            vd = store_dict.publish()
            for _ in range(10):
                s = rng.choice(verts)
                targets = rng.sample(verts, rng.randrange(1, 20))
                a = vd.distance_many_result(s, targets)
                b = va.distance_many_result(s, targets)
                assert b.values == a.values
                assert b.epoch == a.epoch == va.epoch
                assert _stats_tuple(b.stats) == _stats_tuple(a.stats)
                assert va.nearest(s, 8) == vd.nearest(s, 8)
                assert va.within(s, 5.0) == vd.within(s, 5.0)
            _churn(rng, (sg_auto, sg_dict), rounds=8)

    def test_old_view_unaffected_by_later_churn(self):
        rng = random.Random(31)
        g = _random_graph(rng, 60, 180, directed=False)
        sg = SGraph(graph=g, config=SGraphConfig(
            num_hubs=4, queries=("distance",), backend="auto",
        ))
        store = VersionedStore(sg, capacity=4)
        view = store.publish()
        verts = sorted(sg.graph.vertices())
        pairs = [tuple(rng.sample(verts, 2)) for _ in range(10)]
        before = {p: view.distance(*p).value for p in pairs}
        _churn(rng, (sg,), rounds=20)
        for p in pairs:
            assert view.distance(*p).value == before[p]


class TestDerivedRowsMatchRebuild:
    """O(Δ) dense-table derivation must equal a from-scratch build."""

    def test_derived_plane_equals_fresh_plane(self):
        rng = random.Random(40)
        g = _random_graph(rng, 60, 180, directed=True)
        sg = SGraph(graph=g, config=SGraphConfig(
            num_hubs=5, queries=("distance",), backend="auto",
        ))
        store = VersionedStore(sg, capacity=4)
        verts = sorted(sg.graph.vertices())
        view = store.publish()
        view.distance(verts[0], verts[1])  # force the epoch-0 plane build
        for _round in range(3):
            _churn(rng, (sg,), rounds=10)
            view = store.publish()
            view.distance(verts[0], verts[1])  # derived from the prev plane
            derived = store._planes["distance"]
            index = sg.index_for("distance")
            fwd, bwd = index.freeze()
            fresh = DensePlane.build(view.snapshot, index.hubs, fwd, bwd)
            assert derived.tables.hubs == fresh.tables.hubs
            for pos in range(len(fresh.tables.hubs)):
                assert np.array_equal(
                    derived.tables.fwd_rows[pos], fresh.tables.fwd_rows[pos]
                )
                assert np.array_equal(
                    derived.tables.bwd_rows[pos], fresh.tables.bwd_rows[pos]
                )

    def test_skipped_publish_still_derives_correctly(self):
        # The store derives from the last *queried* plane, whatever epoch it
        # came from — churn twice between queries to force a 2-epoch diff.
        rng = random.Random(41)
        g = _random_graph(rng, 50, 150, directed=False)
        sg = SGraph(graph=g, config=SGraphConfig(
            num_hubs=4, queries=("distance",), backend="auto",
        ))
        store = VersionedStore(sg, capacity=4)
        verts = sorted(sg.graph.vertices())
        store.publish().distance(verts[0], verts[1])
        _churn(rng, (sg,), rounds=8)
        store.publish()  # published but never queried: no plane built
        _churn(rng, (sg,), rounds=8)
        view = store.publish()
        view.distance(verts[0], verts[1])
        derived = store._planes["distance"]
        index = sg.index_for("distance")
        fwd, bwd = index.freeze()
        fresh = DensePlane.build(view.snapshot, index.hubs, fwd, bwd)
        for pos in range(len(fresh.tables.hubs)):
            assert np.array_equal(
                derived.tables.fwd_rows[pos], fresh.tables.fwd_rows[pos]
            )
