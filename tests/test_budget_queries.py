"""Budget-threshold query tests (within_budget / within_distance)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.core.semiring import BOTTLENECK_CAPACITY
from repro.errors import ConfigError, QueryError
from repro.graph.generators import erdos_renyi_graph, power_law_graph
from repro.graph.stats import sample_vertex_pairs
from repro.sgraph import SGraph
from tests.conftest import reference_dijkstra, reference_widest


class TestEngineWithinBudget:
    def test_distance_thresholds(self, triangle_graph):
        index = HubIndex(triangle_graph, [1])
        engine = PairwiseEngine(triangle_graph, index=index)
        # d(0, 2) = 3.0
        assert engine.within_budget(0, 2, 3.0)[0]
        assert engine.within_budget(0, 2, 10.0)[0]
        assert not engine.within_budget(0, 2, 2.9)[0]

    def test_capacity_thresholds(self, triangle_graph):
        index = HubIndex(triangle_graph, [1], semiring=BOTTLENECK_CAPACITY)
        engine = PairwiseEngine(triangle_graph, index=index)
        # cap(0, 2) = 4.0 (direct edge)
        assert engine.within_budget(0, 2, 4.0)[0]
        assert engine.within_budget(0, 2, 1.0)[0]
        assert not engine.within_budget(0, 2, 4.5)[0]

    def test_same_vertex(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        assert engine.within_budget(0, 0, 0.0)[0]
        ok, _stats = engine.within_budget(0, 0, -1.0)
        assert not ok  # distance 0 exceeds a negative budget

    def test_unreachable_pair(self, two_components):
        index = HubIndex(two_components, [0, 2])
        engine = PairwiseEngine(two_components, index=index)
        ok, stats = engine.within_budget(0, 3, 1e9)
        assert not ok
        assert stats.answered_by_index  # unreachability proof

    def test_missing_endpoint(self, triangle_graph):
        engine = PairwiseEngine(triangle_graph, policy="none")
        with pytest.raises(QueryError):
            engine.within_budget(0, 99, 1.0)

    def test_index_short_circuits(self):
        graph = power_law_graph(800, 4, seed=9, weight_range=(1.0, 4.0))
        index = HubIndex.build(graph, 16)
        engine = PairwiseEngine(graph, index=index)
        pairs = sample_vertex_pairs(graph, 20, seed=10, min_hops=2)
        from_index = 0
        for s, t in pairs:
            exact, _ = engine.best_cost(s, t)
            # Generous and hopeless budgets should mostly skip the search.
            ok_hi, st_hi = engine.within_budget(s, t, exact * 4)
            ok_lo, st_lo = engine.within_budget(s, t, exact / 4)
            assert ok_hi and not ok_lo
            from_index += st_hi.answered_by_index + st_lo.answered_by_index
        assert from_index > len(pairs)  # more than half decided by bounds

    @given(st.integers(0, 10_000), st.floats(0.5, 20.0))
    @settings(max_examples=12, deadline=None)
    def test_matches_exact_distance(self, seed, budget):
        graph = erdos_renyi_graph(18, 30, seed=seed, weight_range=(1.0, 5.0))
        hubs = sorted(graph.vertices(), key=graph.degree)[-3:]
        index = HubIndex(graph, hubs)
        engine = PairwiseEngine(graph, index=index)
        verts = sorted(graph.vertices())
        ref = reference_dijkstra(graph, verts[0])
        for t in verts[1:]:
            expected = ref.get(t, math.inf) <= budget
            assert engine.within_budget(verts[0], t, budget)[0] == expected

    @given(st.integers(0, 10_000), st.floats(0.5, 6.0))
    @settings(max_examples=8, deadline=None)
    def test_matches_exact_capacity(self, seed, budget):
        graph = erdos_renyi_graph(14, 24, seed=seed, weight_range=(1.0, 5.0))
        hubs = list(graph.vertices())[:3]
        index = HubIndex(graph, hubs, semiring=BOTTLENECK_CAPACITY)
        engine = PairwiseEngine(graph, index=index)
        verts = sorted(graph.vertices())
        ref = reference_widest(graph, verts[0])
        for t in verts[1:]:
            expected = ref.get(t, -math.inf) >= budget
            assert engine.within_budget(verts[0], t, budget)[0] == expected


class TestFacadeBudget:
    def test_within_distance(self, triangle_graph):
        sg = SGraph(graph=triangle_graph,
                    config=SGraphConfig(num_hubs=2,
                                        queries=("distance", "capacity")))
        assert sg.within_distance(0, 2, 3.0).value == 1.0
        assert sg.within_distance(0, 2, 2.0).value == 0.0
        assert sg.capacity_at_least(0, 2, 4.0).value == 1.0
        assert sg.capacity_at_least(0, 2, 9.0).value == 0.0

    def test_missing_family(self, triangle_graph):
        sg = SGraph(graph=triangle_graph,
                    config=SGraphConfig(queries=("distance",)))
        with pytest.raises(ConfigError):
            sg.capacity_at_least(0, 2, 1.0)
