"""Auto-tuner tests."""

from __future__ import annotations

import pytest

from repro.core.tuning import auto_tune
from repro.errors import ConfigError
from repro.graph.generators import grid_graph, power_law_graph
from repro.sgraph import SGraph


class TestAutoTune:
    def test_returns_valid_config(self):
        graph = power_law_graph(300, 3, seed=1, weight_range=(1.0, 4.0))
        result = auto_tune(graph, hub_budgets=(2, 4), num_pairs=12,
                           strategies=("degree", "random"))
        assert result.config.num_hubs in (2, 4)
        assert result.config.hub_strategy in ("degree", "random")
        assert result.chosen.num_hubs == result.config.num_hubs

    def test_config_usable_by_facade(self):
        graph = power_law_graph(300, 3, seed=1, weight_range=(1.0, 4.0))
        result = auto_tune(graph, hub_budgets=(2, 4), num_pairs=8,
                           strategies=("degree",))
        sg = SGraph(graph=graph, config=result.config)
        verts = sorted(graph.vertices())
        assert sg.distance(verts[0], verts[10]).reachable

    def test_candidate_table_complete(self):
        graph = power_law_graph(200, 3, seed=2, weight_range=(1.0, 4.0))
        result = auto_tune(graph, hub_budgets=(2, 4), num_pairs=8,
                           strategies=("degree", "random"))
        assert len(result.candidates) == 4
        rows = result.rows()
        assert sum(1 for row in rows if row["chosen"] == "*") == 1

    def test_prefers_fewer_hubs_within_slack(self):
        graph = power_law_graph(300, 3, seed=3, weight_range=(1.0, 4.0))
        # Infinite slack: every candidate admissible, so the smallest k
        # must win regardless of tightness.
        result = auto_tune(graph, hub_budgets=(2, 8, 16), num_pairs=8,
                           strategies=("degree",), slack=1e9)
        assert result.config.num_hubs == 2

    def test_road_graph_avoids_degree_hubs(self):
        graph = grid_graph(24, 24, seed=4, weight_range=(1.0, 10.0))
        result = auto_tune(graph, hub_budgets=(16,), num_pairs=16,
                           strategies=("degree", "far-apart"), slack=1.05)
        assert result.config.hub_strategy == "far-apart"

    def test_budgets_clamped_to_graph(self):
        graph = power_law_graph(20, 2, seed=5)
        result = auto_tune(graph, hub_budgets=(4, 10_000), num_pairs=6,
                           strategies=("degree",))
        assert result.config.num_hubs == 4

    def test_validation(self):
        graph = power_law_graph(50, 2, seed=6)
        with pytest.raises(ConfigError):
            auto_tune(graph, hub_budgets=())
        with pytest.raises(ConfigError):
            auto_tune(graph, slack=0.5)
        with pytest.raises(ConfigError):
            auto_tune(graph, hub_budgets=(10_000,))


class TestCliTune:
    def test_tune_command(self, capsys):
        from repro.cli import main

        assert main(["tune", "collab-sw", "--pairs", "6"]) == 0
        out = capsys.readouterr().out
        assert "chosen:" in out
        assert "gap_p50" in out
