"""Algebra-law tests for the path semirings.

The pruning machinery is only sound if the residual bounds really are
optimistic; these tests check the laws both on hand-picked cases and via
random triangle configurations generated from actual graphs.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semiring import (
    BOTTLENECK_CAPACITY,
    SHORTEST_DISTANCE,
    BottleneckCapacity,
    ShortestDistance,
)

INF = math.inf
finite_w = st.floats(0.1, 100.0, allow_nan=False)


class TestShortestDistance:
    sr = SHORTEST_DISTANCE

    def test_identities(self):
        assert self.sr.source_value == 0.0
        assert self.sr.unreachable == INF
        assert self.sr.name == "distance"

    def test_extend_and_concat(self):
        assert self.sr.extend(2.0, 3.0) == 5.0
        assert self.sr.concat(2.0, 3.0) == 5.0
        assert self.sr.concat(INF, 3.0) == INF

    def test_better_and_priority(self):
        assert self.sr.is_better(1.0, 2.0)
        assert not self.sr.is_better(2.0, 2.0)
        assert self.sr.priority(4.0) == 4.0
        assert self.sr.best(3.0, 1.0) == 1.0

    def test_reachability(self):
        assert self.sr.is_reachable(5.0)
        assert not self.sr.is_reachable(INF)

    def test_residual_from_hub_cases(self):
        # no information about v
        assert self.sr.residual_from_hub(INF, 7.0) == 0.0
        assert self.sr.residual_from_hub(INF, INF) == 0.0
        # unreachability proof
        assert self.sr.residual_from_hub(3.0, INF) == INF
        # plain triangle bound, clamped at 0
        assert self.sr.residual_from_hub(3.0, 10.0) == 7.0
        assert self.sr.residual_from_hub(10.0, 3.0) == 0.0

    def test_residual_to_hub_cases(self):
        assert self.sr.residual_to_hub(5.0, INF) == 0.0
        assert self.sr.residual_to_hub(INF, 4.0) == INF
        assert self.sr.residual_to_hub(9.0, 4.0) == 5.0
        assert self.sr.residual_to_hub(2.0, 4.0) == 0.0

    def test_tighter_residual(self):
        assert self.sr.tighter_residual(3.0, 5.0) == 5.0


class TestBottleneckCapacity:
    sr = BOTTLENECK_CAPACITY

    def test_identities(self):
        assert self.sr.source_value == INF
        assert self.sr.unreachable == -INF
        assert self.sr.name == "capacity"

    def test_extend_and_concat(self):
        assert self.sr.extend(5.0, 3.0) == 3.0
        assert self.sr.concat(5.0, 3.0) == 3.0
        assert self.sr.concat(-INF, 3.0) == -INF

    def test_better_and_priority(self):
        assert self.sr.is_better(5.0, 3.0)
        assert not self.sr.is_better(3.0, 3.0)
        assert self.sr.priority(4.0) == -4.0

    def test_residual_from_hub_cases(self):
        assert self.sr.residual_from_hub(-INF, 3.0) == INF  # no info
        assert self.sr.residual_from_hub(3.0, -INF) == -INF  # unreachable
        assert self.sr.residual_from_hub(5.0, 3.0) == 3.0  # binding
        assert self.sr.residual_from_hub(3.0, 5.0) == INF  # no constraint

    def test_residual_to_hub_cases(self):
        assert self.sr.residual_to_hub(4.0, -INF) == INF
        assert self.sr.residual_to_hub(-INF, 4.0) == -INF
        assert self.sr.residual_to_hub(3.0, 5.0) == 3.0
        assert self.sr.residual_to_hub(5.0, 3.0) == INF

    def test_tighter_residual(self):
        assert self.sr.tighter_residual(3.0, 5.0) == 3.0


@given(
    st.lists(finite_w, min_size=1, max_size=6),
    st.lists(finite_w, min_size=1, max_size=6),
)
@settings(max_examples=80, deadline=None)
def test_distance_residual_soundness_on_path_split(prefix, suffix):
    """Build a concrete path h→v→t; the residuals must never exceed the
    actual remaining distance d(v, t)."""
    sr = SHORTEST_DISTANCE
    d_hv = sum(prefix)
    d_vt = sum(suffix)
    d_ht_upper = d_hv + d_vt  # the real d(h,t) can only be <= this
    # Any consistent d(h,t) in [|d_hv - d_vt|, d_hv + d_vt] must give a
    # residual <= d_vt.
    for d_ht in (abs(d_hv - d_vt), d_ht_upper, (abs(d_hv - d_vt) + d_ht_upper) / 2):
        assert sr.residual_from_hub(d_hv, d_ht) <= d_vt + 1e-9


@given(
    st.lists(finite_w, min_size=1, max_size=6),
    st.lists(finite_w, min_size=1, max_size=6),
)
@settings(max_examples=80, deadline=None)
def test_capacity_residual_soundness_on_path_split(prefix, suffix):
    """cap(h,t) >= min(cap(h,v), cap(v,t)) implies the residual upper bound
    is never below the actual cap(v, t) when it binds."""
    sr = BOTTLENECK_CAPACITY
    c_hv = min(prefix)
    c_vt = min(suffix)
    # The true cap(h, t) is at least the h→v→t witness.
    c_ht = min(c_hv, c_vt)
    bound = sr.residual_from_hub(c_hv, c_ht)
    assert bound >= c_vt - 1e-9


def test_singletons_are_the_types():
    assert isinstance(SHORTEST_DISTANCE, ShortestDistance)
    assert isinstance(BOTTLENECK_CAPACITY, BottleneckCapacity)
    assert "ShortestDistance" in repr(SHORTEST_DISTANCE)
