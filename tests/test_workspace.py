"""Epoch-scoped search workspaces: sparse reset, reuse, failure isolation.

Three contracts under test.  :class:`JournaledHeap` journals exactly the
first insertion of every key, so the journal enumerates the touched
workspace entries.  :class:`SearchWorkspace` restores pristine state in
O(touched) after every verb — including verbs that raise mid-search —
which the O(V) ``is_clean()`` audit checks directly.  And the engine
binds one workspace per plane, so steady-state queries perform zero O(V)
allocations while answering bit-identically to a fresh-state engine.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.hub_index as hub_index_mod
from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.pruning import PruningPolicy
from repro.core.workspace import JournaledHeap, SearchWorkspace
from repro.errors import ConfigError, QueryError
from repro.graph.dynamic_graph import DynamicGraph
from repro.sgraph import SGraph
from repro.utils.pqueue import IndexedHeap

POLICIES = [
    PruningPolicy.NONE,
    PruningPolicy.UPPER_ONLY,
    PruningPolicy.UPPER_AND_LOWER,
]


def _random_graph(seed: int, directed: bool = False, n: int = 70,
                  m: int = 200) -> DynamicGraph:
    rng = random.Random(seed)
    g = DynamicGraph(directed=directed)
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u, v = rng.randrange(n - 3), rng.randrange(n - 3)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v, rng.uniform(0.5, 3.0))
        added += 1
    return g


def _dense_engine(seed: int, policy: PruningPolicy,
                  workspace: SearchWorkspace = None,
                  reuse_workspace: bool = True):
    """A dense-served engine (and its plane) over a random graph."""
    sg = SGraph(graph=_random_graph(seed), config=SGraphConfig(
        num_hubs=6, policy=policy, queries=("distance",), backend="dense",
    ))
    sg._ensure_indexes()
    base = sg._dense_engine("distance")
    plane = base.dense_plane
    engine = PairwiseEngine(
        base._graph, index=base.index, policy=policy, dense=plane,
        workspace=workspace, reuse_workspace=reuse_workspace,
    )
    return engine, plane


def _stats_tuple(stats):
    return (
        stats.activations,
        stats.pushes,
        stats.relaxations,
        stats.pruned_by_upper_bound,
        stats.pruned_by_lower_bound,
        stats.answered_by_index,
    )


class TestJournaledHeap:
    def test_journal_records_first_insertion_once(self):
        h = JournaledHeap()
        h.push(3, 5.0)
        h.push(3, 1.0)   # decrease-key: no second journal entry
        h.push(3, 9.0)   # ignored increase: no entry either
        h.push(8, 2.0)
        assert h.journal == [3, 8]

    def test_journal_survives_pop_and_remove(self):
        h = JournaledHeap()
        for i in range(5):
            h.push(i, float(i))
        h.pop()
        h.remove(3)
        assert h.journal == [0, 1, 2, 3, 4]

    def test_clear_empties_journal(self):
        h = JournaledHeap()
        h.push(1, 1.0)
        h.clear()
        assert h.journal == []
        assert not h
        h.push(1, 2.0)
        assert h.journal == [1]  # re-insertion after clear is "first" again

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.floats(0, 100, allow_nan=False)),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_heap_semantics_identical_to_indexed_heap(self, ops):
        """Journaling must not perturb heap behavior in any way."""
        j, plain = JournaledHeap(), IndexedHeap()
        first_seen = []
        seen = set()
        for key, pri in ops:
            assert j.push(key, pri) == plain.push(key, pri)
            if key not in seen:
                seen.add(key)
                first_seen.append(key)
        assert j.journal == first_seen
        while plain:
            assert j.pop() == plain.pop()
        assert not j


class TestSearchWorkspace:
    def test_first_acquire_is_not_a_hit(self):
        ws = SearchWorkspace()
        assert ws.acquire(10) is False
        ws.release()
        assert ws.acquire(10) is True
        ws.release()
        assert ws.allocations == 1
        assert ws.hits == 1
        assert ws.resets == 2

    def test_resize_reallocates_once(self):
        ws = SearchWorkspace(10)
        assert ws.acquire(10) is False
        ws.release()
        assert ws.acquire(25) is False   # plane grew: rebuild
        ws.release()
        assert ws.acquire(25) is True    # same size: reuse
        ws.release()
        assert ws.allocations == 2
        assert len(ws.g_f) == 25 and len(ws.settled_b) == 25

    def test_release_resets_exactly_the_touched_entries(self):
        ws = SearchWorkspace(100)
        ws.acquire(100)
        for v in (3, 17, 42):
            ws.heap_f.push(v, float(v))
            ws.g_f[v] = float(v)
            ws.settled_f[v] = 1
        ws.heap_b.push(99, 0.5)
        ws.g_b[99] = 0.5
        touched = ws.release()
        assert touched == 4
        assert ws.touched_reset == 4
        assert ws.is_clean()

    def test_release_covers_lazy_parent_and_slot_arrays(self):
        ws = SearchWorkspace(50)
        ws.acquire(50)
        ws.ensure_parents()
        slot = ws.ensure_slot()
        ws.heap_f.push(7, 1.0)
        ws.g_f[7] = 1.0
        ws.parent_f[7] = 3
        slot[7] = 0
        ws.release()
        slot[7] = -1  # the verb resets slot itself (journal doesn't cover it)
        assert ws.is_clean()
        # lazy arrays persist across acquires — allocated once
        assert ws.parent_f is not None and ws.slot is not None
        ws.acquire(50)
        assert ws.parent_f is not None
        ws.release()

    def test_stats_row_shape(self):
        ws = SearchWorkspace(5)
        row = ws.stats_row()
        assert row == {
            "workspace_vertices": 5,
            "workspace_allocs": 1,
            "workspace_hits": 0,
            "workspace_resets": 0,
            "touched_reset": 0,
        }


class TestEngineSteadyState:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_one_allocation_many_queries(self, policy):
        engine, plane = _dense_engine(40, policy)
        rng = random.Random(7)
        n = 60
        for _ in range(30):
            s, t = rng.randrange(n), rng.randrange(n)
            engine.best_cost(s, t)
        row = engine.workspace_stats()
        assert row["workspace_allocs"] == 1
        # every acquire after the first was a reuse hit, and every search
        # that acquired also released
        assert row["workspace_hits"] == row["workspace_resets"] - 1
        assert engine.workspace.is_clean()

    def test_all_verbs_share_one_workspace(self):
        engine, plane = _dense_engine(41, PruningPolicy.UPPER_AND_LOWER)
        engine.best_cost(0, 33)
        engine.one_to_many(0, list(range(1, 20)))
        engine.best_path(2, 44)
        engine.expand(0, 5, None)
        engine.expand(0, None, 2.5)
        row = engine.workspace_stats()
        assert row["workspace_allocs"] == 1
        assert engine.workspace.is_clean()

    def test_reuse_disabled_never_binds(self):
        engine, _plane = _dense_engine(42, PruningPolicy.NONE,
                                       reuse_workspace=False)
        engine.best_cost(0, 33)
        engine.best_cost(0, 33)
        assert engine.workspace is None
        assert engine.workspace_stats()["workspace_allocs"] == 0


class TestFailureIsolation:
    """Satellite: a failed verb can never poison the next query."""

    def test_validation_happens_before_acquire(self):
        engine, _plane = _dense_engine(43, PruningPolicy.UPPER_AND_LOWER)
        engine.best_cost(0, 33)  # bind the workspace
        before = dict(engine.workspace_stats())
        with pytest.raises(QueryError):
            engine.best_cost(0, 10_000)       # absent endpoint
        with pytest.raises(ConfigError):
            engine.best_cost(0, 33, tolerance=-0.5)
        with pytest.raises(QueryError):
            engine.one_to_many(0, [1, 10_000])
        with pytest.raises(QueryError):
            engine.expand(10_000, 5, None)
        # none of the rejected calls acquired (or reset) the workspace
        assert dict(engine.workspace_stats()) == before
        assert engine.workspace.is_clean()

    @pytest.mark.parametrize("policy", POLICIES)
    def test_exception_mid_search_leaves_next_query_bit_identical(
        self, monkeypatch, policy
    ):
        engine, _plane = _dense_engine(44, policy)
        # Find a pair the index cannot close, so the search actually pops.
        probe_rng = random.Random(3)
        while True:
            ps, pt = probe_rng.randrange(60), probe_rng.randrange(60)
            if ps == pt:
                continue
            _value, probe_stats = engine.best_cost(ps, pt)
            if probe_stats.activations >= 4:
                break
        victim = engine.workspace.heap_f
        state = {"pops": 0}
        orig_pop = JournaledHeap.pop

        def exploding_pop(self):
            if self is victim:
                state["pops"] += 1
                if state["pops"] > 2:
                    raise RuntimeError("injected mid-search failure")
            return orig_pop(self)

        monkeypatch.setattr(JournaledHeap, "pop", exploding_pop)
        with pytest.raises(RuntimeError, match="injected"):
            engine.best_cost(ps, pt)
        monkeypatch.setattr(JournaledHeap, "pop", orig_pop)

        assert not engine.workspace.in_use
        assert engine.workspace.is_clean()
        fresh, _ = _dense_engine(44, policy)
        for s, t in [(ps, pt), (1, 50), (5, 60), (12, 3)]:
            value, stats = engine.best_cost(s, t)
            ref_value, ref_stats = fresh.best_cost(s, t)
            assert value == ref_value
            assert _stats_tuple(stats) == _stats_tuple(ref_stats)

    def test_exception_mid_one_to_many_resets_slot_map(self, monkeypatch):
        engine, _plane = _dense_engine(45, PruningPolicy.NONE)
        targets = list(range(1, 25))
        engine.one_to_many(0, targets)  # bind + allocate the slot map
        victim = engine.workspace.heap_f
        state = {"pops": 0}
        orig_pop = JournaledHeap.pop

        def exploding_pop(self):
            if self is victim:
                state["pops"] += 1
                if state["pops"] > 2:
                    raise RuntimeError("injected mid-batch failure")
            return orig_pop(self)

        monkeypatch.setattr(JournaledHeap, "pop", exploding_pop)
        with pytest.raises(RuntimeError, match="injected"):
            engine.one_to_many(0, targets)
        monkeypatch.setattr(JournaledHeap, "pop", orig_pop)

        assert engine.workspace.is_clean()  # covers the slot map too
        fresh, _ = _dense_engine(45, PruningPolicy.NONE)
        values, stats = engine.one_to_many(0, targets)
        ref_values, ref_stats = fresh.one_to_many(0, targets)
        assert values == ref_values
        assert _stats_tuple(stats) == _stats_tuple(ref_stats)


class TestHubTableCaches:
    """Per-epoch LRUs on DenseHubTables: columns and residual rows."""

    def _tables(self, seed: int = 46):
        _engine, plane = _dense_engine(seed, PruningPolicy.UPPER_AND_LOWER)
        return plane.tables

    def test_columns_match_direct_extraction(self):
        tables = self._tables()
        Fl, Bl = tables.rows_as_lists()
        for v in (0, 7, 33, 7):  # 7 twice: second read is a cache hit
            fwd, bwd = tables.columns_for(v)
            assert fwd == [row[v] for row in Fl]
            assert bwd == [row[v] for row in Bl]
        assert tables.column_hits == 1
        assert tables.column_misses == 3
        assert tables.columns_for(7) is tables.columns_for(7)

    def test_column_cache_evicts_lru(self, monkeypatch):
        monkeypatch.setattr(hub_index_mod, "HUB_COLUMN_CACHE", 2)
        tables = self._tables()
        tables.columns_for(0)
        tables.columns_for(1)
        tables.columns_for(2)       # evicts 0
        assert 0 not in tables._cols
        tables.columns_for(0)       # miss again
        assert tables.column_misses == 4

    def test_residual_rows_match_uncached_reference(self):
        tables = self._tables()
        for t in (3, 12, 3):
            row = tables.residual_list_for(t)
            assert row == tables.residual_rows_to_target(t).tolist()
        assert tables.row_hits == 1
        assert tables.row_misses == 2
        # and the batched matrix pass agrees row-for-row (bit-identity of
        # the one-to-many prune inputs regardless of which path built them)
        batched = tables.residual_rows_to_targets([3, 12]).tolist()
        assert batched[0] == tables.residual_list_for(3)
        assert batched[1] == tables.residual_list_for(12)

    def test_residual_row_cache_evicts_lru(self, monkeypatch):
        monkeypatch.setattr(hub_index_mod, "RESIDUAL_ROW_CACHE", 2)
        tables = self._tables()
        tables.residual_list_for(0)
        tables.residual_list_for(1)
        tables.residual_list_for(2)
        assert 0 not in tables._res_rows
        assert set(tables._res_rows) == {1, 2}
