"""EpochScheduler interleaving tests."""

from __future__ import annotations

import pytest

from repro.core.config import SGraphConfig
from repro.errors import WorkloadError
from repro.graph.generators import power_law_graph
from repro.graph.stats import sample_vertex_pairs
from repro.sgraph import SGraph
from repro.streaming.scheduler import EpochScheduler
from repro.streaming.workload import sliding_window_stream


@pytest.fixture
def scheduled_setup():
    graph = power_law_graph(300, 3, seed=8, weight_range=(1.0, 4.0))
    sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=6))
    pairs = sample_vertex_pairs(graph, 16, seed=9)
    updates = list(sliding_window_stream(graph, 60, seed=10))
    return sg, pairs, updates


class TestScheduler:
    def test_round_accounting(self, scheduled_setup):
        sg, pairs, updates = scheduled_setup
        scheduler = EpochScheduler(sg, sg.distance)
        report = scheduler.run(updates, pairs, updates_per_round=20,
                               queries_per_round=4)
        assert len(report.rounds) == 3
        assert report.total_updates == 60
        assert report.total_queries == 12
        assert report.query_stats.total == 12
        assert report.updates_per_second > 0
        row = report.as_row()
        assert row["rounds"] == 3
        assert "q_p99_ms" in row

    def test_queries_observe_fresh_epochs(self, scheduled_setup):
        sg, pairs, updates = scheduled_setup
        epochs = []
        scheduler = EpochScheduler(
            sg, lambda s, t: epochs.append(sg.epoch) or sg.distance(s, t)
        )
        scheduler.run(updates, pairs, updates_per_round=30,
                      queries_per_round=2)
        # The second round's queries must see a later epoch than the first's.
        assert epochs[2] > epochs[0]

    def test_answers_stay_correct_under_interleaving(self, scheduled_setup):
        sg, pairs, updates = scheduled_setup
        from repro.baselines.dijkstra import dijkstra_distance

        checked = []

        def query(s, t):
            result = sg.distance(s, t)
            ref, _stats = dijkstra_distance(sg.graph, s, t)
            checked.append((result.value, ref))
            return result

        scheduler = EpochScheduler(sg, query)
        scheduler.run(updates, pairs, updates_per_round=15,
                      queries_per_round=3)
        assert checked
        for got, want in checked:
            assert got == pytest.approx(want)

    def test_zero_queries_per_round(self, scheduled_setup):
        sg, pairs, updates = scheduled_setup
        report = EpochScheduler(sg, sg.distance).run(
            updates, pairs, updates_per_round=30, queries_per_round=0
        )
        assert report.total_queries == 0
        assert report.total_updates == 60

    def test_invalid_round_sizes(self, scheduled_setup):
        sg, pairs, updates = scheduled_setup
        scheduler = EpochScheduler(sg, sg.distance)
        with pytest.raises(WorkloadError):
            scheduler.run(updates, pairs, updates_per_round=0,
                          queries_per_round=1)
        with pytest.raises(WorkloadError):
            scheduler.run(updates, [], updates_per_round=5,
                          queries_per_round=1)

    def test_query_workload_cycles(self, scheduled_setup):
        sg, pairs, updates = scheduled_setup
        report = EpochScheduler(sg, sg.distance).run(
            updates, pairs[:2], updates_per_round=20, queries_per_round=5
        )
        assert report.total_queries == 15
