"""SCC / condensation / reachability-oracle tests (networkx as oracle)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.algorithms import (
    ReachabilityOracle,
    condensation,
    strongly_connected_components,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi_graph, rmat_graph


def _to_networkx(graph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(graph.vertices())
    if graph.directed:
        nxg.add_edges_from((s, d) for s, d, _w in graph.edges())
    else:
        for s, d, _w in graph.edges():
            nxg.add_edge(s, d)
            nxg.add_edge(d, s)
    return nxg


class TestTarjan:
    def test_simple_cycle(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)
        g.add_edge(2, 3)
        comps = strongly_connected_components(g)
        assert sorted(map(sorted, comps)) == [[0, 1, 2], [3]]

    def test_dag_is_singletons(self):
        g = DynamicGraph(directed=True)
        for i in range(5):
            g.add_edge(i, i + 1)
        comps = strongly_connected_components(g)
        assert sorted(len(c) for c in comps) == [1] * 6

    def test_undirected_components(self, two_components):
        comps = strongly_connected_components(two_components)
        assert sorted(map(sorted, comps)) == [[0, 1], [2, 3]]

    def test_reverse_topological_emission(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        comps = strongly_connected_components(g)
        # Sinks first: 2 before 1 before 0.
        assert [c[0] for c in comps] == [2, 1, 0]

    def test_deep_path_no_recursion_error(self):
        g = DynamicGraph(directed=True)
        for i in range(5000):
            g.add_edge(i, i + 1)
        comps = strongly_connected_components(g)
        assert len(comps) == 5001

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_matches_networkx(self, seed):
        graph = erdos_renyi_graph(30, 90, seed=seed, directed=True)
        mine = {frozenset(c) for c in strongly_connected_components(graph)}
        theirs = {frozenset(c)
                  for c in nx.strongly_connected_components(_to_networkx(graph))}
        assert mine == theirs


class TestCondensation:
    def test_quotient_is_acyclic(self):
        graph = rmat_graph(scale=7, edge_factor=4, seed=5, directed=True)
        component_of, successors = condensation(graph)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(len(successors)))
        for cid, nexts in enumerate(successors):
            for nxt in nexts:
                nxg.add_edge(cid, nxt)
        assert nx.is_directed_acyclic_graph(nxg)
        assert set(component_of) == set(graph.vertices())

    def test_no_self_loops(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        _component_of, successors = condensation(g)
        for cid, nexts in enumerate(successors):
            assert cid not in nexts


class TestReachabilityOracle:
    def test_simple(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        oracle = ReachabilityOracle(g)
        assert oracle.reachable(0, 2)
        assert not oracle.reachable(2, 0)
        assert oracle.reachable(1, 1)

    def test_same_component(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        g.add_edge(1, 2)
        oracle = ReachabilityOracle(g)
        assert oracle.same_component(0, 1)
        assert not oracle.same_component(1, 2)

    def test_unknown_vertex(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1)
        with pytest.raises(GraphError):
            ReachabilityOracle(g).reachable(0, 99)

    def test_epoch_recorded(self):
        g = DynamicGraph(directed=True)
        g.add_edge(0, 1)
        assert ReachabilityOracle(g).epoch == g.epoch

    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_matches_networkx_closure(self, seed):
        graph = erdos_renyi_graph(20, 50, seed=seed, directed=True)
        oracle = ReachabilityOracle(graph)
        nxg = _to_networkx(graph)
        verts = sorted(graph.vertices())
        for s in verts[:8]:
            reachable_ref = nx.descendants(nxg, s) | {s}
            for t in verts:
                assert oracle.reachable(s, t) == (t in reachable_ref)

    def test_agrees_with_sgraph_reachability(self):
        graph = erdos_renyi_graph(60, 150, seed=3, directed=True,
                                  weight_range=(1.0, 4.0))
        from repro.core.config import SGraphConfig
        from repro.sgraph import SGraph

        sg = SGraph(graph=graph, config=SGraphConfig(num_hubs=4))
        oracle = ReachabilityOracle(graph)
        verts = sorted(graph.vertices())
        for s in verts[:6]:
            for t in verts[:20]:
                if s == t:
                    continue
                assert bool(sg.reachable(s, t).value) == oracle.reachable(s, t)
