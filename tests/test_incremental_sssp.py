"""IncrementalBestPath maintenance: unit cases + randomized equivalence.

The central property: after ANY sequence of edge insertions/deletions
(mutate graph first, notify second), the maintained cost table equals a
from-scratch rebuild.  Checked for undirected and directed graphs, forward
and backward trees, and both semirings.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semiring import BOTTLENECK_CAPACITY, SHORTEST_DISTANCE
from repro.errors import IndexStateError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi_graph, power_law_graph
from repro.streaming.incremental_sssp import IncrementalBestPath


class TestConstruction:
    def test_initial_costs(self, line_graph):
        tree = IncrementalBestPath(line_graph, 0, SHORTEST_DISTANCE)
        assert tree.cost(0) == 0.0
        assert tree.cost(4) == 4.0
        assert tree.cost(99) == math.inf
        assert tree.num_reachable == 5
        assert tree.source == 0
        assert tree.direction == "forward"

    def test_missing_source_raises(self, line_graph):
        with pytest.raises(IndexStateError):
            IncrementalBestPath(line_graph, 77, SHORTEST_DISTANCE)

    def test_bad_direction_raises(self, line_graph):
        with pytest.raises(ValueError):
            IncrementalBestPath(line_graph, 0, SHORTEST_DISTANCE,
                                direction="sideways")

    def test_backward_direction(self, directed_diamond):
        tree = IncrementalBestPath(directed_diamond, 3, SHORTEST_DISTANCE,
                                   direction="backward")
        assert tree.cost(0) == 2.0
        assert tree.cost(3) == 0.0

    def test_costs_returns_copy(self, line_graph):
        tree = IncrementalBestPath(line_graph, 0, SHORTEST_DISTANCE)
        table = tree.costs()
        table[0] = 123.0
        assert tree.cost(0) == 0.0


class TestInsertions:
    def test_shortcut_propagates(self, line_graph):
        tree = IncrementalBestPath(line_graph, 0, SHORTEST_DISTANCE)
        line_graph.add_edge(0, 3, 0.5)
        tree.on_edge_inserted(0, 3, 0.5)
        assert tree.cost(3) == 0.5
        assert tree.cost(2) == 1.5  # improved via the reverse arc 3-2
        assert tree.cost(4) == 1.5
        assert tree.settled_last_op == 3  # vertices 3, 2, 4

    def test_irrelevant_insert_settles_nothing(self, line_graph):
        tree = IncrementalBestPath(line_graph, 0, SHORTEST_DISTANCE)
        line_graph.add_edge(1, 3, 10.0)
        tree.on_edge_inserted(1, 3, 10.0)
        assert tree.settled_last_op == 0
        assert tree.cost(3) == 3.0

    def test_insert_connects_new_region(self, two_components):
        tree = IncrementalBestPath(two_components, 0, SHORTEST_DISTANCE)
        assert tree.cost(3) == math.inf
        two_components.add_edge(1, 2, 2.0)
        tree.on_edge_inserted(1, 2, 2.0)
        assert tree.cost(2) == 3.0
        assert tree.cost(3) == 4.0

    def test_undirected_insert_relaxes_both_arcs(self):
        # The new edge improves the head-side via its *reverse* arc.
        g = DynamicGraph()
        g.add_edge(0, 1, 10.0)
        g.add_edge(0, 2, 1.0)
        tree = IncrementalBestPath(g, 0, SHORTEST_DISTANCE)
        g.add_edge(1, 2, 1.0)
        tree.on_edge_inserted(1, 2, 1.0)
        assert tree.cost(1) == 2.0

    def test_capacity_insert(self, triangle_graph):
        tree = IncrementalBestPath(triangle_graph, 0, BOTTLENECK_CAPACITY)
        assert tree.cost(2) == 4.0  # direct edge wins: min(4) vs min(1,2)
        # Weight change = remove-then-reinsert at the graph level.
        triangle_graph.remove_edge(0, 2)
        tree.on_edge_deleted(0, 2, 4.0)
        triangle_graph.add_edge(0, 2, 9.0)
        tree.on_edge_inserted(0, 2, 9.0)
        assert tree.cost(2) == 9.0


class TestDeletions:
    def test_delete_tight_edge(self, line_graph):
        tree = IncrementalBestPath(line_graph, 0, SHORTEST_DISTANCE)
        line_graph.remove_edge(1, 2)
        tree.on_edge_deleted(1, 2, 1.0)
        assert tree.cost(1) == 1.0
        assert tree.cost(2) == math.inf
        assert tree.cost(4) == math.inf

    def test_delete_non_tight_edge_is_cheap(self, triangle_graph):
        tree = IncrementalBestPath(triangle_graph, 0, SHORTEST_DISTANCE)
        # 0-2 direct (4.0) is not tight; best is 0-1-2 (3.0).
        triangle_graph.remove_edge(0, 2)
        tree.on_edge_deleted(0, 2, 4.0)
        assert tree.settled_last_op == 0
        assert tree.cost(2) == 3.0

    def test_delete_with_equal_cost_alternative(self):
        g = DynamicGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        g.add_edge(1, 3, 1.0)
        g.add_edge(2, 3, 1.0)
        tree = IncrementalBestPath(g, 0, SHORTEST_DISTANCE)
        assert tree.cost(3) == 2.0
        g.remove_edge(1, 3)
        tree.on_edge_deleted(1, 3, 1.0)
        assert tree.cost(3) == 2.0  # the 0-2-3 path still supports it

    def test_capacity_delete_marks_dirty_then_rebuilds(self, triangle_graph):
        tree = IncrementalBestPath(triangle_graph, 0, BOTTLENECK_CAPACITY)
        triangle_graph.remove_edge(0, 2)
        tree.on_edge_deleted(0, 2, 4.0)
        assert tree.dirty
        assert tree.cost(2) == 1.0  # rebuilt lazily: via 0-1-2, min(1, 2)
        assert not tree.dirty

    def test_source_never_affected(self):
        g = DynamicGraph()
        g.add_edge(0, 1, 1.0)
        tree = IncrementalBestPath(g, 0, SHORTEST_DISTANCE)
        g.remove_edge(0, 1)
        tree.on_edge_deleted(0, 1, 1.0)
        assert tree.cost(0) == 0.0
        assert tree.cost(1) == math.inf


def _apply_and_check(graph, trees, steps, seed):
    rng = random.Random(seed)
    verts = list(graph.vertices())
    for step in range(steps):
        u, v = rng.sample(verts, 2)
        if graph.has_edge(u, v) and rng.random() < 0.5:
            w_old = graph.edge_weight(u, v)
            graph.remove_edge(u, v)
            for tree in trees:
                tree.on_edge_deleted(u, v, w_old)
        else:
            if graph.has_edge(u, v):
                # weight change: remove-then-reinsert protocol
                w_old = graph.edge_weight(u, v)
                w_new = rng.uniform(1.0, 5.0)
                graph.remove_edge(u, v)
                for tree in trees:
                    tree.on_edge_deleted(u, v, w_old)
                graph.add_edge(u, v, w_new)
                for tree in trees:
                    tree.on_edge_inserted(u, v, w_new)
            else:
                w_new = rng.uniform(1.0, 5.0)
                graph.add_edge(u, v, w_new)
                for tree in trees:
                    tree.on_edge_inserted(u, v, w_new)
        if step % 7 == 0 or step == steps - 1:
            for tree in trees:
                fresh = IncrementalBestPath(
                    graph, tree.source, tree.semiring, direction=tree.direction
                )
                assert tree.costs() == fresh.costs(), (
                    f"divergence at step {step} for source {tree.source} "
                    f"({tree.direction}, {tree.semiring.name})"
                )


class TestRandomizedEquivalence:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_undirected_distance(self, seed):
        graph = erdos_renyi_graph(24, 40, seed=seed % 1000,
                                  weight_range=(1.0, 5.0))
        sources = list(graph.vertices())[:2]
        trees = [
            IncrementalBestPath(graph, s, SHORTEST_DISTANCE) for s in sources
        ]
        _apply_and_check(graph, trees, steps=40, seed=seed)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_directed_both_directions(self, seed):
        graph = erdos_renyi_graph(20, 60, seed=seed % 1000, directed=True,
                                  weight_range=(1.0, 5.0))
        source = next(iter(graph.vertices()))
        trees = [
            IncrementalBestPath(graph, source, SHORTEST_DISTANCE),
            IncrementalBestPath(graph, source, SHORTEST_DISTANCE,
                                direction="backward"),
        ]
        _apply_and_check(graph, trees, steps=35, seed=seed)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_capacity_with_lazy_rebuilds(self, seed):
        graph = erdos_renyi_graph(18, 36, seed=seed % 1000,
                                  weight_range=(1.0, 5.0))
        source = next(iter(graph.vertices()))
        trees = [IncrementalBestPath(graph, source, BOTTLENECK_CAPACITY)]
        _apply_and_check(graph, trees, steps=30, seed=seed)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_powerlaw_topology(self, seed):
        graph = power_law_graph(40, 2, seed=seed % 1000,
                                weight_range=(1.0, 5.0))
        source = max(graph.vertices(), key=graph.degree)
        trees = [IncrementalBestPath(graph, source, SHORTEST_DISTANCE)]
        _apply_and_check(graph, trees, steps=40, seed=seed)
