"""Bench harness tests: table rendering, workload bundles, runners, and a
smoke pass over every experiment at miniature sizes."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    run_e1_datasets,
    run_e2_activations,
    run_e6_maintenance,
    run_e7_hubs,
    run_e9_crossover,
    run_e10_memory,
)
from repro.bench.harness import run_query_workload, time_callable
from repro.bench.report import format_series, format_table
from repro.bench.workloads import build_workload
from repro.core.engine import PairwiseEngine


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_ragged_rows(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "b" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="X")

    def test_format_series(self):
        text = format_series("k", [1, 2], {"lat": [0.5, 0.25]})
        assert "k" in text and "lat" in text and "0.25" in text


class TestWorkloads:
    def test_build_workload(self):
        wl = build_workload("collab-sw", num_pairs=6, num_hubs=4)
        assert wl.name == "collab-sw"
        assert len(wl.pairs) == 6
        assert wl.index.num_hubs == 4
        assert wl.num_vertices == wl.graph.num_vertices

    def test_run_query_workload(self):
        wl = build_workload("collab-sw", num_pairs=5, num_hubs=4)
        engine = PairwiseEngine(wl.graph, index=wl.index)
        agg = run_query_workload(engine.best_cost, wl.pairs)
        assert agg.total == 5
        assert agg.mean_elapsed > 0
        assert 0 <= agg.p(0.5) <= agg.p(1.0)
        assert agg.mean_activation_fraction(wl.num_vertices) >= 0

    def test_time_callable(self):
        assert time_callable(lambda: sum(range(100)), repeat=3) >= 0
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeat=0)


class TestExperimentSmoke:
    """Tiny-parameter versions of selected experiments: they must run and
    produce the claimed qualitative shapes."""

    def test_e1_rows_cover_datasets(self):
        rows = run_e1_datasets()
        assert len(rows) >= 5
        assert all("|V|" in row for row in rows)

    def test_e2_shape(self):
        rows = run_e2_activations(num_pairs=4)
        by_key = {(r["dataset"], r["engine"]): r for r in rows}
        for dataset in ("social-pl", "collab-sw"):
            none = by_key[(dataset, "propagate/none")]["act/query"]
            ub = by_key[(dataset, "propagate/upper-only")]["act/query"]
            lb = by_key[(dataset, "propagate/upper+lower")]["act/query"]
            sg = by_key[(dataset, "sgraph (ordered)")]["act/query"]
            assert ub < none
            assert lb < ub
            assert sg <= lb * 1.5  # ordered engine at least comparable

    def test_e6_incremental_beats_rebuild(self):
        rows = run_e6_maintenance(batch_sizes=(1, 10))
        for row in rows:
            assert row["incremental_ms"] < row["rebuild_ms"]

    def test_e7_more_hubs_tighter(self):
        rows = run_e7_hubs(hub_counts=(1, 16), num_pairs=6)
        social = [r for r in rows
                  if r["dataset"] == "social-pl" and r["strategy"] == "degree"]
        act = {r["k"]: r["act%"] for r in social}
        assert act[16] <= act[1]

    def test_e9_has_both_winners(self):
        rows = run_e9_crossover(source_counts=(1, 64), num_updates=60,
                                num_queries=40)
        winners = {r["winner"] for r in rows}
        assert "continuous" in winners  # tiny working set: maintenance wins

    def test_e10_monotone_in_k(self):
        rows = run_e10_memory(hub_counts=(2, 8), scales=(0.5,))
        entries = {r["k"]: r["entries"] for r in rows}
        assert entries[8] > entries[2]

    def test_e13_to_e17_smoke(self):
        """Tiny-parameter executions of the extension experiments."""
        from repro.bench.experiments import (
            run_e13_directed,
            run_e14_one_to_many,
            run_e15_adaptive,
            run_e16_reliability,
            run_e17_cache,
        )

        assert len(run_e13_directed(num_pairs=4)) == 3
        assert len(run_e14_one_to_many(target_counts=(1, 4))) == 2
        assert len(run_e15_adaptive(num_pairs=4)) == 9
        assert len(run_e16_reliability(num_pairs=4)) == 3
        rows = run_e17_cache(num_queries=30)
        assert len(rows) == 3
        assert all("hit%" in row for row in rows)

    def test_capture_buffer_round_trip(self):
        from repro.bench.capture import drain_tables, record_table

        record_table([{"a": 1}], "T1")
        record_table([{"b": 2}], "T2")
        tables = drain_tables()
        assert len(tables) == 2
        assert "T1" in tables[0] and "T2" in tables[1]
        assert drain_tables() == []

    def test_all_experiments_registry(self):
        from repro.bench.experiments import ALL_EXPERIMENTS

        assert len(ALL_EXPERIMENTS) == 25
        assert all(title.split()[0].startswith("E")
                   for title in ALL_EXPERIMENTS)
