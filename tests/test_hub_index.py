"""HubIndex build correctness and incremental maintenance tests."""

from __future__ import annotations

import math

import pytest

from repro.core.hub_index import HubIndex
from repro.core.semiring import BOTTLENECK_CAPACITY
from repro.errors import ConfigError, IndexStateError
from tests.conftest import reference_dijkstra, reference_widest


class TestBuild:
    def test_costs_match_dijkstra(self, small_powerlaw):
        index = HubIndex.build(small_powerlaw, 4)
        for hub in index.hubs:
            ref = reference_dijkstra(small_powerlaw, hub)
            for v in small_powerlaw.vertices():
                assert index.cost_from_hub(hub, v) == pytest.approx(
                    ref.get(v, math.inf)
                )

    def test_directed_backward_costs(self, directed_diamond):
        index = HubIndex(directed_diamond, [3])
        # cost to hub 3: from 0 it is min(1+1, 2+2) = 2.
        assert index.cost_to_hub(3, 0) == 2.0
        assert index.cost_to_hub(3, 1) == 1.0
        # forward from 3: nothing is reachable.
        assert index.cost_from_hub(3, 0) == math.inf

    def test_undirected_backward_aliases_forward(self, small_powerlaw):
        index = HubIndex.build(small_powerlaw, 2)
        hub = index.hubs[0]
        assert index.forward_tree(hub) is index.backward_tree(hub)

    def test_capacity_semiring(self, triangle_graph):
        index = HubIndex(triangle_graph, [0], semiring=BOTTLENECK_CAPACITY)
        ref = reference_widest(triangle_graph, 0)
        for v in triangle_graph.vertices():
            assert index.cost_from_hub(0, v) == ref[v]

    def test_validation(self, triangle_graph):
        with pytest.raises(ConfigError):
            HubIndex(triangle_graph, [])
        with pytest.raises(ConfigError):
            HubIndex(triangle_graph, [0, 0])
        with pytest.raises(IndexStateError):
            HubIndex(triangle_graph, [99])
        with pytest.raises(IndexStateError):
            HubIndex(triangle_graph, [0]).cost_from_hub(1, 0)

    def test_build_selects_requested_count(self, small_powerlaw):
        index = HubIndex.build(small_powerlaw, 7, strategy="random", seed=1)
        assert index.num_hubs == 7
        assert "k=7" in repr(index)


class TestMaintenance:
    def _assert_fresh(self, index, graph):
        for hub in index.hubs:
            ref = reference_dijkstra(graph, hub)
            for v in graph.vertices():
                assert index.cost_from_hub(hub, v) == pytest.approx(
                    ref.get(v, math.inf)
                ), f"hub {hub}, vertex {v}"

    def test_insert_improves(self, line_graph):
        index = HubIndex(line_graph, [0])
        assert index.cost_from_hub(0, 4) == 4.0
        line_graph.add_edge(0, 4, 1.5)
        index.notify_edge_inserted(0, 4, 1.5)
        assert index.cost_from_hub(0, 4) == 1.5
        self._assert_fresh(index, line_graph)

    def test_delete_worsens(self, line_graph):
        line_graph.add_edge(0, 4, 1.5)
        index = HubIndex(line_graph, [0])
        line_graph.remove_edge(0, 4)
        index.notify_edge_deleted(0, 4, 1.5)
        assert index.cost_from_hub(0, 4) == 4.0
        self._assert_fresh(index, line_graph)

    def test_delete_disconnects(self, line_graph):
        index = HubIndex(line_graph, [0])
        line_graph.remove_edge(2, 3)
        index.notify_edge_deleted(2, 3, 1.0)
        assert index.cost_from_hub(0, 3) == math.inf
        assert index.cost_from_hub(0, 4) == math.inf
        assert index.cost_from_hub(0, 2) == 2.0

    def test_delete_with_alternative_path(self, triangle_graph):
        index = HubIndex(triangle_graph, [0])
        assert index.cost_from_hub(0, 2) == 3.0  # via 1
        triangle_graph.remove_edge(1, 2)
        index.notify_edge_deleted(1, 2, 2.0)
        assert index.cost_from_hub(0, 2) == 4.0  # direct edge
        self._assert_fresh(index, triangle_graph)

    def test_directed_maintenance_both_directions(self, directed_diamond):
        index = HubIndex(directed_diamond, [3])
        directed_diamond.remove_edge(1, 3)
        index.notify_edge_deleted(1, 3, 1.0)
        assert index.cost_to_hub(3, 0) == 4.0  # only 0→2→3 remains
        directed_diamond.add_edge(0, 3, 0.5)
        index.notify_edge_inserted(0, 3, 0.5)
        assert index.cost_to_hub(3, 0) == 0.5

    def test_capacity_deletion_goes_lazy(self, triangle_graph):
        index = HubIndex(triangle_graph, [0], semiring=BOTTLENECK_CAPACITY)
        triangle_graph.remove_edge(1, 2)
        index.notify_edge_deleted(1, 2, 2.0)
        assert index.forward_tree(0).dirty
        # Reads must transparently rebuild.
        ref = reference_widest(triangle_graph, 0)
        assert index.cost_from_hub(0, 2) == ref[2]
        assert not index.forward_tree(0).dirty

    def test_settled_accounting(self, line_graph):
        index = HubIndex(line_graph, [0])
        line_graph.add_edge(3, 0, 0.5)
        index.notify_edge_inserted(3, 0, 0.5)
        assert index.settled_last_update > 0

    def test_refresh_and_rebuild(self, small_powerlaw):
        index = HubIndex.build(small_powerlaw, 3)
        index.refresh()  # no-op when clean
        index.rebuild()
        self._assert_fresh(index, small_powerlaw)


class TestAccounting:
    def test_size_entries_undirected(self, small_powerlaw):
        index = HubIndex.build(small_powerlaw, 3)
        # Connected graph: every vertex reachable from every hub.
        assert index.size_entries() == 3 * small_powerlaw.num_vertices

    def test_size_entries_directed_counts_both(self, directed_diamond):
        index = HubIndex(directed_diamond, [0])
        # forward from 0 reaches all 4; backward to 0 reaches only 0.
        assert index.size_entries() == 4 + 1

    def test_size_bytes_positive(self, small_powerlaw):
        index = HubIndex.build(small_powerlaw, 2)
        assert index.size_bytes() > index.size_entries() * 8
