"""Epoch scheduler: deterministic interleaving of ingestion and queries.

The paper's system ingests updates and answers queries *simultaneously* on a
multicore server.  In a single-threaded Python reproduction, "simultaneous"
is modelled as a deterministic epoch loop: each round applies one update
batch (advancing the graph), then answers a batch of queries against the
now-current state, recording per-round latency for both sides.  E8 sweeps
the update rate and reports query-latency percentiles from the
:class:`ScheduleReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.core.stats import StatsAggregate
from repro.errors import WorkloadError
from repro.streaming.update import EdgeUpdate, batched


@dataclass
class RoundRecord:
    """Timing for one scheduler round."""

    epoch: int
    updates_applied: int
    update_seconds: float
    queries_answered: int
    query_seconds: float


@dataclass
class ScheduleReport:
    """Aggregate outcome of a full scheduled run."""

    rounds: List[RoundRecord] = field(default_factory=list)
    query_stats: StatsAggregate = field(default_factory=StatsAggregate)

    @property
    def total_updates(self) -> int:
        return sum(r.updates_applied for r in self.rounds)

    @property
    def total_queries(self) -> int:
        return sum(r.queries_answered for r in self.rounds)

    @property
    def update_seconds(self) -> float:
        return sum(r.update_seconds for r in self.rounds)

    @property
    def query_seconds(self) -> float:
        return sum(r.query_seconds for r in self.rounds)

    @property
    def updates_per_second(self) -> float:
        if self.update_seconds <= 0:
            return 0.0
        return self.total_updates / self.update_seconds

    def as_row(self) -> dict:
        return {
            "rounds": len(self.rounds),
            "updates": self.total_updates,
            "queries": self.total_queries,
            "ups": round(self.updates_per_second),
            "q_mean_ms": round(1e3 * self.query_stats.mean_elapsed, 3),
            "q_p99_ms": round(1e3 * self.query_stats.p(0.99), 3),
        }


class EpochScheduler:
    """Interleaves an update stream with a query workload.

    Parameters
    ----------
    sgraph:
        An :class:`repro.SGraph` (or anything with ``apply_update`` taking an
        :class:`EdgeUpdate` and a per-query callable interface).
    query_fn:
        Callable ``(source, target) -> QueryResult`` used for every query.
    """

    def __init__(self, sgraph, query_fn: Callable[[int, int], object]) -> None:
        self._sgraph = sgraph
        self._query_fn = query_fn

    def run(
        self,
        updates: Iterable[EdgeUpdate],
        query_pairs: Sequence[Tuple[int, int]],
        updates_per_round: int,
        queries_per_round: int,
    ) -> ScheduleReport:
        """Run the full schedule and return its report.

        The query workload cycles if shorter than the schedule needs.
        """
        if updates_per_round < 1 or queries_per_round < 0:
            raise WorkloadError("invalid round sizes")
        if queries_per_round > 0 and not query_pairs:
            raise WorkloadError("queries requested but no query pairs supplied")
        report = ScheduleReport()
        query_cursor = 0
        for epoch, batch in enumerate(batched(updates, updates_per_round)):
            start = time.perf_counter()
            for update in batch:
                self._sgraph.apply_update(update)
            update_seconds = time.perf_counter() - start

            query_seconds = 0.0
            answered = 0
            for _ in range(queries_per_round):
                s, t = query_pairs[query_cursor % len(query_pairs)]
                query_cursor += 1
                q_start = time.perf_counter()
                result = self._query_fn(s, t)
                q_elapsed = time.perf_counter() - q_start
                query_seconds += q_elapsed
                answered += 1
                stats = result.stats
                stats.elapsed = q_elapsed
                report.query_stats.add(stats)
            report.rounds.append(
                RoundRecord(
                    epoch=epoch,
                    updates_applied=len(batch),
                    update_seconds=update_seconds,
                    queries_answered=answered,
                    query_seconds=query_seconds,
                )
            )
        return report
