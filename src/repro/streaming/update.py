"""Edge-update records and batches — the unit of graph evolution.

An evolving-graph workload is a stream of :class:`EdgeUpdate` records.  The
ingestion engine applies them in order; the scheduler groups them into
:class:`UpdateBatch` epochs.  Weight changes are modelled as delete+insert at
the notification level (see :mod:`repro.streaming.ingest`), which keeps the
incremental maintainers' contracts simple.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, List

from repro.errors import WorkloadError


class UpdateKind(Enum):
    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge mutation.

    ``weight`` is required for inserts and ignored for deletes (the live
    graph knows the weight being removed).
    """

    kind: UpdateKind
    src: int
    dst: int
    weight: float = 1.0

    @classmethod
    def insert(cls, src: int, dst: int, weight: float = 1.0) -> "EdgeUpdate":
        return cls(UpdateKind.INSERT, src, dst, weight)

    @classmethod
    def delete(cls, src: int, dst: int) -> "EdgeUpdate":
        return cls(UpdateKind.DELETE, src, dst)

    def __repr__(self) -> str:
        if self.kind is UpdateKind.INSERT:
            return f"+({self.src},{self.dst},{self.weight})"
        return f"-({self.src},{self.dst})"


class UpdateBatch:
    """An ordered group of updates applied as one epoch."""

    def __init__(self, updates: Iterable[EdgeUpdate]) -> None:
        self._updates: List[EdgeUpdate] = list(updates)
        if not self._updates:
            raise WorkloadError("an update batch must contain at least one update")

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self._updates)

    def __getitem__(self, idx: int) -> EdgeUpdate:
        return self._updates[idx]

    @property
    def num_inserts(self) -> int:
        return sum(1 for u in self._updates if u.kind is UpdateKind.INSERT)

    @property
    def num_deletes(self) -> int:
        return len(self._updates) - self.num_inserts

    def __repr__(self) -> str:
        return (
            f"UpdateBatch(n={len(self)}, +{self.num_inserts}, "
            f"-{self.num_deletes})"
        )


def batched(
    updates: Iterable[EdgeUpdate], batch_size: int
) -> Iterator[UpdateBatch]:
    """Split a stream of updates into fixed-size batches (last may be short)."""
    if batch_size < 1:
        raise WorkloadError("batch_size must be >= 1")
    bucket: List[EdgeUpdate] = []
    for update in updates:
        bucket.append(update)
        if len(bucket) == batch_size:
            yield UpdateBatch(bucket)
            bucket = []
    if bucket:
        yield UpdateBatch(bucket)
