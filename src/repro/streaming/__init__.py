"""Streaming substrate: update batches, ingestion, incremental maintenance."""

from repro.streaming.incremental_sssp import IncrementalBestPath
from repro.streaming.ingest import IngestEngine, IngestStats
from repro.streaming.update import EdgeUpdate, UpdateBatch, UpdateKind

__all__ = [
    "IncrementalBestPath",
    "IngestEngine",
    "IngestStats",
    "EdgeUpdate",
    "UpdateBatch",
    "UpdateKind",
]
