"""Versioned query views: answer pairwise queries *as of* a published epoch.

Real-time OLAP systems let analysts query a consistent recent version while
ingestion races ahead.  :class:`VersionedStore` provides that on top of the
facade: :meth:`VersionedStore.publish` captures the current epoch — an
immutable graph snapshot plus frozen hub-index cost tables — and keeps a
bounded ring of versions.  :meth:`VersionedStore.view_at` returns a
:class:`FrozenView` whose queries run the same pruned engine against that
frozen state, unaffected by later churn.

Publishing is *delta-proportional*: the graph snapshot is derived
copy-on-write from the previous snapshot (unchanged vertices share their
adjacency dicts; see :mod:`repro.graph.deltas`), and each frozen hub table
is derived from the previous freeze's table plus the maintainer's change
journal via :meth:`repro.core.hub_index.HubIndex.freeze`.  A publish after
Δ updates therefore costs O(Δ · affected-region) plus O(k) bookkeeping —
independent of |V| and |E| — and publishing an epoch that is already the
last published one is a dictionary lookup.  Only the first publish (or one
right after a wholesale index rebuild) pays the old O(|V|·k) full-copy
cost.  Queries against a view cost the same as live queries.  This is the
deterministic single-process stand-in for SGraph's epoch-published,
snapshot-isolated concurrent reads.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.engine import (
    PairwiseEngine,
    expand_from_graph,
)
from repro.core.hub_index import DensePlane, HubIndex
from repro.core.pairwise import ManyQueryResult, QueryKind, QueryResult
from repro.errors import ConfigError, QueryError, SnapshotError
from repro.graph.snapshot import GraphSnapshot
from repro.graph.views import UnitWeightView


class FrozenView:
    """Read-only pairwise query surface over one published epoch."""

    def __init__(
        self,
        snapshot: GraphSnapshot,
        engines: Dict[str, PairwiseEngine],
        label: Optional[str] = None,
    ) -> None:
        self._snapshot = snapshot
        self._engines = engines
        self.label = label

    @property
    def epoch(self) -> int:
        return self._snapshot.epoch

    @property
    def snapshot(self) -> GraphSnapshot:
        return self._snapshot

    @property
    def num_vertices(self) -> int:
        return self._snapshot.num_vertices

    @property
    def num_edges(self) -> int:
        return self._snapshot.num_edges

    def __repr__(self) -> str:
        tag = f", label={self.label!r}" if self.label else ""
        return f"FrozenView(epoch={self.epoch}{tag})"

    def _engine(self, family: str) -> PairwiseEngine:
        try:
            return self._engines[family]
        except KeyError:
            raise ConfigError(
                f"family {family!r} was not indexed when this view was "
                f"published; available: {sorted(self._engines)}"
            ) from None

    def engine(self, family: str = "distance") -> PairwiseEngine:
        """The frozen engine serving ``family`` at this epoch.

        Public accessor for consumers that need engine internals — the shm
        exporter reads its dense plane, benchmarks read its hub index to
        build bit-identical dict references.
        """
        return self._engine(family)

    def dense_plane(self, family: str = "distance") -> DensePlane:
        """The dense plane serving ``family``, forcing the lazy build.

        This is what the shm exporter lays into a segment: CSR arrays, hub
        rows, and the id map of this epoch.  Raises :class:`ConfigError`
        when the family is served dict-only (``backend="dict"``).
        """
        plane = self._engine(family).dense_plane
        if plane is None:
            raise ConfigError(
                f"family {family!r} is not served by a dense plane at this "
                "view (backend is dict-only)"
            )
        return plane

    def _run(self, kind: QueryKind, family: str, source: int,
             target: int) -> QueryResult:
        engine = self._engine(family)
        start = time.perf_counter()
        value, stats = engine.best_cost(source, target)
        stats.elapsed = time.perf_counter() - start
        return QueryResult(kind=kind, source=source, target=target,
                           value=value, stats=stats, epoch=self.epoch)

    def distance(self, source: int, target: int) -> QueryResult:
        """Weighted shortest-path cost at this epoch."""
        return self._run(QueryKind.DISTANCE, "distance", source, target)

    def hop_distance(self, source: int, target: int) -> QueryResult:
        """Hop count at this epoch."""
        return self._run(QueryKind.HOPS, "hops", source, target)

    def bottleneck(self, source: int, target: int) -> QueryResult:
        """Widest-path capacity at this epoch."""
        return self._run(QueryKind.BOTTLENECK, "capacity", source, target)

    def reachable(self, source: int, target: int) -> QueryResult:
        """Path existence at this epoch."""
        family = next(iter(self._engines))
        engine = self._engines[family]
        start = time.perf_counter()
        exists, stats = engine.feasible(source, target)
        stats.elapsed = time.perf_counter() - start
        return QueryResult(kind=QueryKind.REACHABILITY, source=source,
                           target=target, value=1.0 if exists else 0.0,
                           stats=stats, epoch=self.epoch)

    def within_distance(
        self, source: int, target: int, budget: float
    ) -> QueryResult:
        """Whether the weighted distance at this epoch is ≤ ``budget``."""
        engine = self._engine("distance")
        start = time.perf_counter()
        ok, stats = engine.within_budget(source, target, budget)
        stats.elapsed = time.perf_counter() - start
        return QueryResult(kind=QueryKind.REACHABILITY, source=source,
                           target=target, value=1.0 if ok else 0.0,
                           stats=stats, epoch=self.epoch)

    # -- batched queries ----------------------------------------------------

    def distance_many(
        self, source: int, targets: Iterable[int]
    ) -> Dict[int, float]:
        """Shortest distances to every target, as of this epoch.

        One shared search (see :meth:`PairwiseEngine.one_to_many`); when
        this view serves the dense plane the whole batch runs on the same
        flat arrays as its pairwise queries.
        """
        return self.distance_many_result(source, targets).values

    def distance_many_result(
        self, source: int, targets: Iterable[int]
    ) -> ManyQueryResult:
        """Like :meth:`distance_many`, surfacing the combined counters."""
        engine = self._engine("distance")
        start = time.perf_counter()
        results, stats = engine.one_to_many(source, list(targets))
        stats.elapsed = time.perf_counter() - start
        return ManyQueryResult(
            kind=QueryKind.DISTANCE,
            source=source,
            values=results,
            stats=stats,
            epoch=self.epoch,
        )

    def nearest(self, source: int, k: int) -> List[Tuple[int, float]]:
        """The ``k`` closest vertices to ``source`` as of this epoch.

        Runs over the view's dense CSR when the distance family is served
        dense; otherwise a dict traversal of the frozen snapshot.
        """
        if k < 1:
            raise QueryError("k must be >= 1")
        return self._expand_from(source, max_results=k, radius=None)

    def within(self, source: int, radius: float) -> List[Tuple[int, float]]:
        """All vertices within distance ``radius``, as of this epoch."""
        if radius < 0:
            raise QueryError("radius must be non-negative")
        return self._expand_from(source, max_results=None, radius=radius)

    def _expand_from(
        self,
        source: int,
        max_results: Optional[int],
        radius: Optional[float],
    ) -> List[Tuple[int, float]]:
        engine = self._engine("distance")
        if not self._snapshot.has_vertex(source):
            raise QueryError(f"query endpoint {source} is not in the graph")
        plane = engine.dense_plane  # forces the lazy factory, once per view
        if plane is not None:
            # Runs in the view engine's reusable workspace (O(touched)).
            return engine.expand(source, max_results, radius)
        return expand_from_graph(self._snapshot, source, max_results, radius)


class VersionedStore:
    """Bounded ring of published epochs over one :class:`repro.SGraph`."""

    def __init__(self, sgraph, capacity: int = 4) -> None:
        if capacity < 1:
            raise ConfigError("capacity must be >= 1")
        self._sgraph = sgraph
        self._capacity = capacity
        self._views: "OrderedDict[int, FrozenView]" = OrderedDict()
        # Most recently *built* dense plane per family — the `prev` seed that
        # lets the next epoch's plane derive its CSR id space and hub rows
        # delta-proportionally instead of from scratch.
        self._planes: Dict[str, DensePlane] = {}
        self._subscribers: List = []

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._views)

    def epochs(self) -> List[int]:
        """Published epochs, oldest first."""
        return list(self._views)

    def publish(self, label: Optional[str] = None) -> FrozenView:
        """Capture the facade's current state as an immutable version.

        Evicts the oldest version beyond ``capacity``.  Publishing the same
        epoch twice returns the existing view; otherwise the cost is
        proportional to the churn since the last publish (the snapshot and
        every frozen table are derived from the previous version plus the
        change journals — see the module docstring).
        """
        sg = self._sgraph
        epoch = sg.epoch
        existing = self._views.get(epoch)
        if existing is not None:
            return existing
        snapshot = sg.snapshot()  # memoized per epoch
        engines: Dict[str, PairwiseEngine] = {}
        for family in sg.config.queries:
            index = sg.index_for(family)
            fwd, bwd = index.freeze()
            view_graph = (UnitWeightView(snapshot) if family == "hops"
                          else snapshot)
            frozen_index = HubIndex.from_tables(
                view_graph, index.hubs, index.semiring, fwd,
                backward_tables=bwd if snapshot.directed else None,
                copy=False,
            )
            # Dense serving for the min-plus families unless the config pins
            # the dict reference path.  The factory defers the plane build
            # to the first query against this view, so publish() itself
            # stays O(Δ) — no CSR or array materialization here.
            dense_factory = None
            if sg.config.backend != "dict" and family in ("distance", "hops"):
                dense_factory = self._make_plane_factory(
                    family, snapshot, index.hubs, fwd, bwd
                )
            engines[family] = PairwiseEngine(
                view_graph, index=frozen_index, policy=sg.config.policy,
                dense_factory=dense_factory,
            )
        view = FrozenView(snapshot, engines, label=label)
        self._views[epoch] = view
        sg._note_published(epoch)
        while len(self._views) > self._capacity:
            self._views.popitem(last=False)
        for callback in list(self._subscribers):
            callback(view)
        return view

    def subscribe(self, callback,
                  replay_latest: bool = False) -> "Callable[[], None]":
        """Invoke ``callback(view)`` on every *new* publish.

        Republishing an already-published epoch does not fire (the early
        return above never reaches the callbacks), so subscribers see each
        epoch at most once.  With ``replay_latest`` the callback also fires
        immediately for the most recently published view, if any — so a
        subscriber joining a store whose current epoch is already published
        (where ``publish()`` would be a cache hit that fires nothing) still
        observes it.  Returns an idempotent unsubscribe closure.
        """
        self._subscribers.append(callback)
        if replay_latest and self._views:
            callback(next(reversed(self._views.values())))

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def _make_plane_factory(self, family, snapshot, hubs, fwd, bwd):
        """Lazy :class:`DensePlane` builder for one published family.

        Chains off the last plane this store built for the family, whatever
        epoch that was: derivation diffs the frozen mapping objects
        symmetrically (union of both overlays), so it is order-independent
        even when views are queried out of publish order or some freezes
        were never queried at all.
        """

        def build() -> DensePlane:
            plane = DensePlane.build(
                snapshot, hubs, fwd, bwd,
                unit_weights=(family == "hops"),
                prev=self._planes.get(family),
            )
            self._planes[family] = plane
            return plane

        return build

    def view_at(self, epoch: int) -> FrozenView:
        """The view published at exactly ``epoch``."""
        try:
            return self._views[epoch]
        except KeyError:
            raise SnapshotError(
                f"epoch {epoch} is not published (or was evicted); "
                f"published: {self.epochs()}"
            ) from None

    def latest(self) -> FrozenView:
        """The most recently published view."""
        if not self._views:
            raise SnapshotError("no version has been published yet")
        return next(reversed(self._views.values()))
