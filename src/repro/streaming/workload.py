"""Update-stream generators for the evolving-graph experiments.

Three stream shapes cover the evaluation:

* :func:`insert_only_stream` — growth workload: fresh edges appended to an
  existing graph (the cheapest for every system; the monotone case).
* :func:`sliding_window_stream` — the canonical evolving-graph model: each
  step inserts a new edge and deletes the oldest live one, keeping |E|
  constant (exercises the deletion-repair path).
* :func:`mixed_stream` — tunable insert:delete ratio over random live edges.

All generators are deterministic in their seed and never emit an update that
would be redundant *at generation time* against the tracked edge set (the
ingest engine still tolerates redundancy, but benchmarks should measure real
work).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterator, List, Optional, Set, Tuple

from repro.errors import WorkloadError
from repro.graph.dynamic_graph import DynamicGraph
from repro.streaming.update import EdgeUpdate


def _edge_key(graph: DynamicGraph, src: int, dst: int) -> Tuple[int, int]:
    if graph.directed or src <= dst:
        return (src, dst)
    return (dst, src)


def _live_edges(graph: DynamicGraph) -> Tuple[Set[Tuple[int, int]], List[Tuple[int, int]]]:
    keys = {(s, d) for s, d, _w in graph.edges()}
    return keys, list(keys)


def _random_new_edge(
    rng: random.Random,
    vertices: List[int],
    live: Set[Tuple[int, int]],
    directed: bool,
) -> Optional[Tuple[int, int]]:
    for _attempt in range(64):
        u = rng.choice(vertices)
        v = rng.choice(vertices)
        if u == v:
            continue
        key = (u, v) if directed or u <= v else (v, u)
        if key not in live:
            return key
    return None


def query_stream(
    graph: DynamicGraph,
    count: int,
    skew: float = 1.0,
    seed: int = 0,
) -> List[Tuple[int, int]]:
    """Popularity-skewed query pairs (Zipf over degree rank).

    Real pairwise workloads concentrate on popular entities; this samples
    endpoints with probability ∝ 1/rank^skew, where rank orders vertices of
    the largest component by descending degree.  ``skew=0`` degenerates to
    uniform sampling.
    """
    if count < 0:
        raise WorkloadError("count must be non-negative")
    if skew < 0:
        raise WorkloadError("skew must be non-negative")
    from repro.graph.stats import largest_component

    pool = sorted(largest_component(graph),
                  key=lambda v: (-graph.degree(v), v))
    if len(pool) < 2:
        raise WorkloadError("graph needs >= 2 connected vertices")
    rng = random.Random(seed)
    weights = [1.0 / (rank ** skew) if skew > 0 else 1.0
               for rank in range(1, len(pool) + 1)]
    pairs: List[Tuple[int, int]] = []
    while len(pairs) < count:
        s, t = rng.choices(pool, weights=weights, k=2)
        if s != t:
            pairs.append((s, t))
    return pairs


def insert_only_stream(
    graph: DynamicGraph,
    count: int,
    seed: int = 0,
    weight_range: Tuple[float, float] = (1.0, 4.0),
) -> Iterator[EdgeUpdate]:
    """Yield ``count`` inserts of edges not currently in ``graph``.

    The graph object is only *read* (to learn vertices and live edges); the
    stream tracks its own view of liveness so it can be generated up front.
    """
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        raise WorkloadError("graph needs >= 2 vertices for an update stream")
    rng = random.Random(seed)
    live, _order = _live_edges(graph)
    emitted = 0
    while emitted < count:
        key = _random_new_edge(rng, vertices, live, graph.directed)
        if key is None:
            raise WorkloadError("graph too dense to generate new inserts")
        live.add(key)
        yield EdgeUpdate.insert(key[0], key[1], rng.uniform(*weight_range))
        emitted += 1


def sliding_window_stream(
    graph: DynamicGraph,
    count: int,
    seed: int = 0,
    weight_range: Tuple[float, float] = (1.0, 4.0),
) -> Iterator[EdgeUpdate]:
    """Yield ``count`` insert/delete pairs keeping |E| constant.

    Each round inserts one fresh edge then deletes the oldest edge of the
    window (initialized with the graph's edges in iteration order), modelling
    a time-windowed evolving graph.  ``count`` counts *updates*, so a round
    contributes two.
    """
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        raise WorkloadError("graph needs >= 2 vertices for an update stream")
    rng = random.Random(seed)
    live, order = _live_edges(graph)
    window: Deque[Tuple[int, int]] = deque(order)
    emitted = 0
    while emitted < count:
        key = _random_new_edge(rng, vertices, live, graph.directed)
        if key is None:
            raise WorkloadError("graph too dense to generate new inserts")
        live.add(key)
        window.append(key)
        yield EdgeUpdate.insert(key[0], key[1], rng.uniform(*weight_range))
        emitted += 1
        if emitted >= count:
            break
        old = window.popleft()
        live.discard(old)
        yield EdgeUpdate.delete(old[0], old[1])
        emitted += 1


def mixed_stream(
    graph: DynamicGraph,
    count: int,
    insert_fraction: float = 0.8,
    seed: int = 0,
    weight_range: Tuple[float, float] = (1.0, 4.0),
) -> Iterator[EdgeUpdate]:
    """Yield ``count`` updates, each an insert with probability
    ``insert_fraction`` and otherwise a delete of a random live edge."""
    if not 0.0 <= insert_fraction <= 1.0:
        raise WorkloadError("insert_fraction must be within [0, 1]")
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        raise WorkloadError("graph needs >= 2 vertices for an update stream")
    rng = random.Random(seed)
    live, order = _live_edges(graph)
    pool: List[Tuple[int, int]] = list(order)
    emitted = 0
    while emitted < count:
        do_insert = rng.random() < insert_fraction or not pool
        if do_insert:
            key = _random_new_edge(rng, vertices, live, graph.directed)
            if key is None:
                do_insert = False
                if not pool:
                    raise WorkloadError("cannot continue stream: graph saturated")
            else:
                live.add(key)
                pool.append(key)
                yield EdgeUpdate.insert(key[0], key[1], rng.uniform(*weight_range))
                emitted += 1
                continue
        # Delete a random live edge via swap-remove on the pool.
        while pool:
            idx = rng.randrange(len(pool))
            key = pool[idx]
            pool[idx] = pool[-1]
            pool.pop()
            if key in live:
                break
        else:
            raise WorkloadError("no live edges left to delete")
        live.discard(key)
        yield EdgeUpdate.delete(key[0], key[1])
        emitted += 1
