"""Incremental single-source best-path maintenance.

The hub index keeps one best-path tree per hub per direction.  Rebuilding a
tree on every graph update would dominate ingestion cost, so this module
maintains each tree *incrementally*:

* **insertions** only ever improve costs, so a bounded Dijkstra pass seeded at
  the inserted edge's head repairs the tree (sound for any monotone
  :class:`~repro.core.semiring.PathSemiring`);
* **deletions** under the additive :class:`ShortestDistance` algebra use the
  Ramalingam–Reps two-phase repair: find the affected region (vertices whose
  best path ran through the deleted edge and have no surviving tight parent),
  reset it, and re-run Dijkstra from the region's boundary.  Soundness
  requires strictly positive weights (enforced by
  :class:`~repro.graph.DynamicGraph`), which makes the tight-edge graph
  acyclic.
* **deletions** under non-additive algebras (bottleneck capacity) are handled
  by marking the tree dirty and rebuilding lazily before the next read —
  tight-edge ties make the affected-region argument unsound there, and
  correctness beats cleverness.

The maintainer reads the *live* graph, so callers must keep graph state
consistent with each notification: mutate first, notify second — and a
weight change must be executed as a true remove-then-reinsert (delete the
edge, notify the deletion, add the edge with the new weight, notify the
insertion).  Notifying a deletion while the edge still exists with a new
weight breaks the repair's assumption that deletions never improve costs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.semiring import PathSemiring, ShortestDistance
from repro.errors import IndexStateError
from repro.graph.deltas import CostJournal
from repro.utils.pqueue import IndexedHeap


class IncrementalBestPath:
    """Best-path costs from one source vertex, maintained under edge churn.

    Parameters
    ----------
    graph:
        A live :class:`~repro.graph.DynamicGraph` (or anything with the
        traversal protocol).  Held by reference — the maintainer always reads
        current adjacency.
    source:
        The tree root (a hub).  Must exist in the graph and must not be
        removed while the maintainer is alive.
    semiring:
        The cost algebra.
    direction:
        ``"forward"`` maintains costs *from* the source along arc directions;
        ``"backward"`` maintains costs *to* the source (i.e. runs on the
        reversed graph).  Irrelevant for undirected graphs.
    """

    __slots__ = ("_graph", "_source", "_semiring", "_forward", "_costs",
                 "_dirty", "_journal", "settled_last_op")

    def __init__(
        self,
        graph,
        source: int,
        semiring: PathSemiring,
        direction: str = "forward",
    ) -> None:
        if direction not in ("forward", "backward"):
            raise ValueError(f"direction must be forward/backward, got {direction!r}")
        if not graph.has_vertex(source):
            raise IndexStateError(f"source vertex {source} not in graph")
        self._graph = graph
        self._source = source
        self._semiring = semiring
        self._forward = direction == "forward"
        self._costs: Dict[int, float] = {}
        self._dirty = False
        # Change journal since the last drain (freeze); the initial rebuild
        # marks it full, so the first freeze takes a complete copy.
        self._journal = CostJournal()
        #: vertices touched by the most recent operation (maintenance-cost metric)
        self.settled_last_op = 0
        self.rebuild()

    @classmethod
    def from_cost_table(
        cls,
        graph,
        source: int,
        semiring: PathSemiring,
        direction: str,
        costs: Mapping,
        copy: bool = True,
    ) -> "IncrementalBestPath":
        """Adopt a previously computed cost table without rebuilding.

        The caller asserts the table matches the graph (persistence restore
        path); a wrong table silently corrupts later queries, so load-time
        verification is the persistence layer's job.  With ``copy=False``
        the mapping is adopted by reference — only valid for *frozen* trees
        that will never be notified of updates (the publish path, where the
        mapping is structurally shared across versions).
        """
        tree = cls.__new__(cls)
        if direction not in ("forward", "backward"):
            raise ValueError(f"direction must be forward/backward, got {direction!r}")
        if not graph.has_vertex(source):
            raise IndexStateError(f"source vertex {source} not in graph")
        tree._graph = graph
        tree._source = source
        tree._semiring = semiring
        tree._forward = direction == "forward"
        tree._costs = dict(costs) if copy else costs
        tree._dirty = False
        tree._journal = CostJournal()
        tree._journal.mark_full()
        tree.settled_last_op = 0
        return tree

    # -- introspection ---------------------------------------------------------

    @property
    def source(self) -> int:
        return self._source

    @property
    def semiring(self) -> PathSemiring:
        return self._semiring

    @property
    def direction(self) -> str:
        return "forward" if self._forward else "backward"

    @property
    def dirty(self) -> bool:
        """True when a lazy rebuild is pending (non-additive deletions)."""
        return self._dirty

    @property
    def num_reachable(self) -> int:
        self.ensure_fresh()
        return len(self._costs)

    def cost(self, vertex: int) -> float:
        """Current best cost for ``vertex`` (the algebra's unreachable value
        if no path exists)."""
        self.ensure_fresh()
        return self._costs.get(vertex, self._semiring.unreachable)

    def costs(self) -> Dict[int, float]:
        """Copy of the reachable-cost table (test/diagnostic use)."""
        self.ensure_fresh()
        return dict(self._costs)

    def raw_cost_table(self) -> Mapping:
        """The live cost table, *without* a freshness check.

        Only the hub index's bound evaluators use this, after calling
        :meth:`ensure_fresh` once per query instead of per lookup.
        """
        return self._costs

    # -- traversal helpers ---------------------------------------------------------

    def _succ(self, vertex: int):
        return (self._graph.out_items(vertex) if self._forward
                else self._graph.in_items(vertex))

    def _pred(self, vertex: int):
        return (self._graph.in_items(vertex) if self._forward
                else self._graph.out_items(vertex))

    # -- full rebuild ----------------------------------------------------------------

    def ensure_fresh(self) -> None:
        if self._dirty:
            self.rebuild()

    def rebuild(self) -> None:
        """Recompute the whole tree with Dijkstra.  O((V+E) log V)."""
        sr = self._semiring
        costs: Dict[int, float] = {self._source: sr.source_value}
        heap = IndexedHeap()
        heap.push(self._source, sr.priority(sr.source_value))
        settled = 0
        done = set()
        while heap:
            v, _priority = heap.pop()
            done.add(v)
            settled += 1
            base = costs[v]
            for u, w in self._succ(v):
                if u in done:
                    continue
                cand = sr.extend(base, w)
                if u not in costs or sr.is_better(cand, costs[u]):
                    costs[u] = cand
                    heap.push(u, sr.priority(cand))
        self._costs = costs
        self._dirty = False
        self._journal.mark_full()
        self.settled_last_op = settled

    def adopt_table(self, costs: Dict[int, float]) -> None:
        """Replace the cost table with an externally computed fresh one.

        Used by the CSR-accelerated full rebuild; the caller guarantees the
        table reflects the graph's current state.
        """
        self._costs = costs
        self._dirty = False
        self._journal.mark_full()
        self.settled_last_op = len(costs)

    # -- change journal (drained by HubIndex.freeze) ---------------------------

    @property
    def journal_size(self) -> int:
        """Distinct vertices journaled since the last drain (0 when full)."""
        return len(self._journal)

    def drain_changes(
        self,
    ) -> Tuple[bool, List[Tuple[int, Optional[float], Optional[float]]]]:
        """Net ``(vertex, old_cost, new_cost)`` changes since the last drain.

        Returns ``(full, changes)`` and resets the journal: ``full=True``
        means per-vertex history was lost to a wholesale rebuild and the
        caller must copy the entire table.  Forces any pending lazy rebuild
        first, so the drained state matches what queries would observe.
        """
        self.ensure_fresh()
        return self._journal.drain(self._costs)

    # -- incremental updates -------------------------------------------------------

    def on_edge_inserted(self, u: int, v: int, weight: float) -> None:
        """Repair after the arc ``u → v`` (weight ``weight``) was added.

        For undirected graphs the caller notifies once; the symmetric arc is
        handled by a second seed.
        """
        if self._dirty:
            # A rebuild is already pending; it will see this edge.
            self.settled_last_op = 0
            return
        seeds = [self._seed_for_arc(u, v, weight)]
        if not self._graph.directed and u != v:
            seeds.append(self._seed_for_arc(v, u, weight))
        self._relax([s for s in seeds if s is not None])

    def _seed_for_arc(self, u: int, v: int, weight: float):
        """Candidate (head, cost) induced by arc u→v, or None if no improvement."""
        sr = self._semiring
        tail, head = (u, v) if self._forward else (v, u)
        base = self._costs.get(tail)
        if base is None:
            return None
        cand = sr.extend(base, weight)
        current = self._costs.get(head, sr.unreachable)
        if sr.is_better(cand, current):
            return head, cand
        return None

    def _relax(self, seeds: Iterable[Tuple[int, float]]) -> None:
        """Bounded Dijkstra from improvement seeds."""
        sr = self._semiring
        costs = self._costs
        journal = self._journal
        heap = IndexedHeap()
        pending: Dict[int, float] = {}
        for vertex, cand in seeds:
            if vertex not in pending or sr.is_better(cand, pending[vertex]):
                pending[vertex] = cand
                heap.push(vertex, sr.priority(cand))
        settled = 0
        while heap:
            v, _priority = heap.pop()
            cand = pending.pop(v)
            current = costs.get(v, sr.unreachable)
            if not sr.is_better(cand, current):
                continue
            journal.note(costs, v)
            costs[v] = cand
            settled += 1
            for u, w in self._succ(v):
                nxt = sr.extend(cand, w)
                best_known = pending.get(u, costs.get(u, sr.unreachable))
                if sr.is_better(nxt, best_known):
                    pending[u] = nxt
                    heap.push(u, sr.priority(nxt))
        self.settled_last_op = settled

    def on_edge_deleted(self, u: int, v: int, old_weight: float) -> None:
        """Repair after the arc ``u → v`` (old weight ``old_weight``) was removed."""
        if self._dirty:
            self.settled_last_op = 0
            return
        if not isinstance(self._semiring, ShortestDistance):
            # Tight-edge ties (e.g. bottleneck plateaus) break the affected-
            # region argument; rebuild lazily instead.
            self._dirty = True
            self.settled_last_op = 0
            return
        arcs = [(u, v)]
        if not self._graph.directed and u != v:
            arcs.append((v, u))
        sr = self._semiring
        costs = self._costs
        seeds: List[int] = []
        for a, b in arcs:
            tail, head = (a, b) if self._forward else (b, a)
            base = costs.get(tail)
            if base is None or head not in costs:
                continue
            if costs[head] == sr.extend(base, old_weight):
                # The deleted arc was tight for head: head may have depended on it.
                seeds.append(head)
        if not seeds:
            self.settled_last_op = 0
            return
        affected = self._affected_region(seeds)
        if not affected:
            self.settled_last_op = 0
            return
        self._repair_region(affected)

    def _affected_region(self, seeds: List[int]) -> set:
        """Vertices whose stored cost depended on the deleted arc(s)."""
        sr = self._semiring
        costs = self._costs
        affected: set = set()
        worklist: List[int] = list(seeds)
        while worklist:
            y = worklist.pop()
            if y in affected or y == self._source or y not in costs:
                continue
            # Supported if some unaffected predecessor still yields our cost.
            supported = False
            for z, w in self._pred(y):
                if z in affected:
                    continue
                zc = costs.get(z)
                if zc is not None and sr.extend(zc, w) == costs[y]:
                    supported = True
                    break
            if supported:
                continue
            affected.add(y)
            # Tight successors may have depended on y; they get re-examined
            # even if previously judged supported (their support may be y).
            yc = costs[y]
            for x, w in self._succ(y):
                xc = costs.get(x)
                if xc is not None and xc == sr.extend(yc, w) and x not in affected:
                    worklist.append(x)
        return affected

    def _repair_region(self, affected: set) -> None:
        """Clear the affected region and re-run Dijkstra from its boundary."""
        sr = self._semiring
        costs = self._costs
        journal = self._journal
        for a in affected:
            # Journal the pre-repair cost; vertices re-settled below keep
            # this first-seen old value (first-write-wins).
            journal.note(costs, a)
            costs.pop(a, None)
        heap = IndexedHeap()
        pending: Dict[int, float] = {}
        for a in affected:
            best = sr.unreachable
            for z, w in self._pred(a):
                zc = costs.get(z)
                if zc is None or z in affected:
                    continue
                cand = sr.extend(zc, w)
                if sr.is_better(cand, best):
                    best = cand
            if sr.is_reachable(best):
                pending[a] = best
                heap.push(a, sr.priority(best))
        settled = 0
        while heap:
            v, _priority = heap.pop()
            cand = pending.pop(v)
            current = costs.get(v, sr.unreachable)
            if not sr.is_better(cand, current):
                continue
            costs[v] = cand
            settled += 1
            for x, w in self._succ(v):
                if x not in affected:
                    continue  # unaffected costs are already optimal
                nxt = sr.extend(cand, w)
                best_known = pending.get(x, costs.get(x, sr.unreachable))
                if sr.is_better(nxt, best_known):
                    pending[x] = nxt
                    heap.push(x, sr.priority(nxt))
        self.settled_last_op = settled + len(affected)
