"""The ingestion engine: applies update streams to a graph and its indexes.

Responsibilities:

* apply each :class:`~repro.streaming.update.EdgeUpdate` to the live
  :class:`~repro.graph.DynamicGraph` with the right mutate-then-notify
  ordering (the incremental maintainers read post-mutation adjacency);
* translate weight *changes* (insert of an existing edge) into a delete+
  insert notification pair;
* tolerate redundant updates (inserting an identical edge, deleting a
  missing edge) the way a real stream consumer must — they are counted and
  skipped, not fatal;
* account for throughput (E5) and maintenance work (E6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Sequence

from repro.graph.dynamic_graph import DynamicGraph
from repro.streaming.update import EdgeUpdate, UpdateKind


class IndexListener(Protocol):
    """Anything that tracks graph mutations (hub indexes, baselines)."""

    def notify_edge_inserted(self, src: int, dst: int, weight: float) -> None: ...

    def notify_edge_deleted(self, src: int, dst: int, old_weight: float) -> None: ...


@dataclass
class IngestStats:
    """Counters for one ingestion run."""

    applied: int = 0
    inserts: int = 0
    deletes: int = 0
    redundant: int = 0
    #: vertices settled by index maintenance across all listeners
    maintenance_settled: int = 0
    elapsed: float = 0.0

    @property
    def updates_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.applied / self.elapsed

    def as_row(self) -> dict:
        return {
            "applied": self.applied,
            "+": self.inserts,
            "-": self.deletes,
            "redundant": self.redundant,
            "settled": self.maintenance_settled,
            "ups": round(self.updates_per_second),
        }


class IngestEngine:
    """Applies update streams to one graph, keeping listeners in sync."""

    def __init__(
        self,
        graph: DynamicGraph,
        listeners: Optional[Sequence[IndexListener]] = None,
    ) -> None:
        self._graph = graph
        self._listeners: List[IndexListener] = list(listeners or [])

    @property
    def graph(self) -> DynamicGraph:
        return self._graph

    def add_listener(self, listener: IndexListener) -> None:
        self._listeners.append(listener)

    # -- single updates ---------------------------------------------------------

    def apply_update(self, update: EdgeUpdate, stats: Optional[IngestStats] = None) -> None:
        """Apply one update with mutate-then-notify ordering."""
        if update.kind is UpdateKind.INSERT:
            self._apply_insert(update.src, update.dst, update.weight, stats)
        else:
            self._apply_delete(update.src, update.dst, stats)
        if stats is not None:
            stats.applied += 1

    def _apply_insert(
        self, src: int, dst: int, weight: float, stats: Optional[IngestStats]
    ) -> None:
        graph = self._graph
        old_weight: Optional[float] = None
        if graph.has_edge(src, dst):
            old_weight = graph.edge_weight(src, dst)
            if old_weight == weight:
                if stats is not None:
                    stats.redundant += 1
                return
        settled = 0
        if old_weight is not None:
            # A weight change is a true remove-then-reinsert: each listener
            # notification must observe graph state consistent with the event
            # (deletion repair while the edge is absent, insertion repair
            # after the new edge exists), or a weight decrease smuggled into
            # a deletion repair would improve costs without propagating the
            # improvement beyond the repaired region.
            graph.remove_edge(src, dst)
            for listener in self._listeners:
                listener.notify_edge_deleted(src, dst, old_weight)
                settled += getattr(listener, "settled_last_update", 0)
        graph.add_edge(src, dst, weight)
        for listener in self._listeners:
            listener.notify_edge_inserted(src, dst, weight)
            settled += getattr(listener, "settled_last_update", 0)
        if stats is not None:
            stats.inserts += 1
            stats.maintenance_settled += settled

    def _apply_delete(
        self, src: int, dst: int, stats: Optional[IngestStats]
    ) -> None:
        graph = self._graph
        if not graph.has_edge(src, dst):
            if stats is not None:
                stats.redundant += 1
            return
        old_weight = graph.edge_weight(src, dst)
        graph.remove_edge(src, dst)
        settled = 0
        for listener in self._listeners:
            listener.notify_edge_deleted(src, dst, old_weight)
            settled += getattr(listener, "settled_last_update", 0)
        if stats is not None:
            stats.deletes += 1
            stats.maintenance_settled += settled

    # -- streams -----------------------------------------------------------------

    def apply_all(self, updates: Iterable[EdgeUpdate]) -> IngestStats:
        """Apply a whole stream, timing it."""
        stats = IngestStats()
        start = time.perf_counter()
        for update in updates:
            self.apply_update(update, stats)
        stats.elapsed = time.perf_counter() - start
        return stats
