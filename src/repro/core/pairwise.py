"""Pairwise query and result types.

A pairwise query asks about a single (source, target) pair — the class of
query the paper observes is "enough for many real-world scenarios" while
avoiding the exhaustive, whole-graph nature of analytic queries.  The
supported query kinds map onto the two cost algebras plus derived forms:

* ``distance`` — weighted shortest-path cost (ShortestDistance algebra);
* ``hops`` — unweighted shortest-path length (ShortestDistance over a
  unit-weight view of the graph);
* ``reachability`` — existence of a path (distance search with first-path
  short-circuit);
* ``bottleneck`` — widest-path capacity (BottleneckCapacity algebra).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.stats import QueryStats


class QueryKind(Enum):
    DISTANCE = "distance"
    HOPS = "hops"
    REACHABILITY = "reachability"
    BOTTLENECK = "bottleneck"
    RELIABILITY = "reliability"

    @classmethod
    def parse(cls, value: "str | QueryKind") -> "QueryKind":
        if isinstance(value, cls):
            return value
        for kind in cls:
            if kind.value == value:
                return kind
        raise ValueError(
            f"unknown query kind {value!r}; expected one of {[k.value for k in cls]}"
        )


@dataclass(frozen=True)
class PairwiseQuery:
    """One query in a benchmark workload."""

    kind: QueryKind
    source: int
    target: int

    def __post_init__(self) -> None:
        if self.source == self.target:
            # Legal but degenerate; engines answer it without search.
            pass


@dataclass
class QueryResult:
    """Answer + execution counters for one pairwise query."""

    kind: QueryKind
    source: int
    target: int
    #: the raw cost value (math.inf / -math.inf encode unreachable; for
    #: reachability queries this is 1.0 / 0.0)
    value: float
    stats: QueryStats
    #: epoch of the graph state this answer reflects
    epoch: Optional[int] = None
    #: an optimal witness path (vertex list), when the query asked for one
    path: Optional[List[int]] = None

    @property
    def reachable(self) -> bool:
        """Whether a source→target path exists, for any query kind."""
        if self.kind is QueryKind.REACHABILITY:
            return bool(self.value)
        if self.kind is QueryKind.BOTTLENECK:
            return self.value != -math.inf
        if self.kind is QueryKind.RELIABILITY:
            return self.value != 0.0
        return self.value != math.inf

    @property
    def distance(self) -> float:
        """Alias for :attr:`value` on distance/hop queries."""
        if self.kind not in (QueryKind.DISTANCE, QueryKind.HOPS):
            raise AttributeError(f"{self.kind.value} query has no distance")
        return self.value

    @property
    def hops(self) -> int:
        if self.kind is not QueryKind.HOPS:
            raise AttributeError(f"{self.kind.value} query has no hop count")
        if self.value == math.inf:
            raise ValueError("target unreachable; no hop count")
        return int(self.value)

    @property
    def capacity(self) -> float:
        if self.kind is not QueryKind.BOTTLENECK:
            raise AttributeError(f"{self.kind.value} query has no capacity")
        return self.value

    @property
    def probability(self) -> float:
        if self.kind is not QueryKind.RELIABILITY:
            raise AttributeError(f"{self.kind.value} query has no probability")
        return self.value

    def __repr__(self) -> str:
        return (
            f"QueryResult({self.kind.value}, {self.source}->{self.target}, "
            f"value={self.value}, act={self.stats.activations})"
        )


@dataclass
class ManyQueryResult:
    """Answer + combined execution counters for one one-to-many query.

    The batched sibling of :class:`QueryResult`: one source, a value per
    target, and a single :class:`QueryStats` record covering the whole
    shared search — so batched queries are as observable as pairwise ones
    (the combined counters are what the amortization experiments measure).
    """

    kind: QueryKind
    source: int
    #: best cost per target (``math.inf`` encodes unreachable)
    values: Dict[int, float] = field(default_factory=dict)
    stats: QueryStats = field(default_factory=QueryStats)
    #: epoch of the graph state this answer reflects
    epoch: Optional[int] = None

    def __getitem__(self, target: int) -> float:
        return self.values[target]

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, target: int) -> bool:
        return target in self.values

    @property
    def reachable_count(self) -> int:
        """How many targets have a finite answer."""
        return sum(1 for v in self.values.values() if v != math.inf)

    def __repr__(self) -> str:
        return (
            f"ManyQueryResult({self.kind.value}, {self.source}->"
            f"{len(self.values)} targets, act={self.stats.activations})"
        )
