"""Index diagnostics: how tight are the bounds an index produces?

Bound tightness is *the* determinant of SGraph's pruning power, so the
library ships the measurement tools: :func:`bound_gap_profile` samples
query pairs and reports the lower/upper bound gap distribution (optionally
against ground truth), and :func:`index_coverage` measures how much of the
pair space the index can bound at all.  The E11 ablation bench is built on
these.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.bounds import QueryBounds
from repro.core.hub_index import HubIndex
from repro.core.semiring import ShortestDistance
from repro.errors import ConfigError


@dataclass
class BoundGap:
    """Bounds for one sampled pair (distance algebra)."""

    source: int
    target: int
    lower: float
    upper: float
    true_cost: Optional[float] = None

    @property
    def ratio(self) -> float:
        """upper/lower gap ratio; 1.0 means the pair closes from the index."""
        if self.lower == math.inf:  # proof of unreachability: exact
            return 1.0
        if self.upper == math.inf:
            return math.inf
        if self.lower <= 0:
            return math.inf
        return self.upper / self.lower

    @property
    def is_exact(self) -> bool:
        return self.ratio == 1.0


@dataclass
class BoundGapReport:
    """Aggregate over a pair sample."""

    gaps: List[BoundGap] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.gaps)

    @property
    def exact_fraction(self) -> float:
        if not self.gaps:
            return 0.0
        return sum(1 for g in self.gaps if g.is_exact) / len(self.gaps)

    def closable_fraction(self, tolerance: float) -> float:
        """Fraction of pairs answerable from the index at the tolerance."""
        if not self.gaps:
            return 0.0
        limit = 1.0 + tolerance
        return sum(1 for g in self.gaps if g.ratio <= limit) / len(self.gaps)

    def ratio_percentile(self, q: float) -> float:
        if not self.gaps:
            return 0.0
        ratios = sorted(g.ratio for g in self.gaps)
        idx = min(len(ratios) - 1, int(round(q * (len(ratios) - 1))))
        return ratios[idx]

    @property
    def mean_ub_slack(self) -> float:
        """Mean (upper / truth) over pairs with known finite truth."""
        vals = [
            g.upper / g.true_cost
            for g in self.gaps
            if g.true_cost not in (None, 0.0, math.inf)
            and g.upper != math.inf
        ]
        return sum(vals) / len(vals) if vals else 0.0

    def as_row(self) -> dict:
        return {
            "pairs": self.total,
            "exact%": round(100 * self.exact_fraction, 1),
            "close@10%": round(100 * self.closable_fraction(0.10), 1),
            "close@2x": round(100 * self.closable_fraction(1.0), 1),
            "gap_p50": round(self.ratio_percentile(0.5), 2),
            "gap_p90": round(self.ratio_percentile(0.9), 2),
        }


def bound_gap_profile(
    index: HubIndex,
    pairs: Sequence[Tuple[int, int]],
    with_truth: bool = False,
) -> BoundGapReport:
    """Measure bound gaps for the given pairs.

    ``with_truth`` additionally computes exact distances (Dijkstra per
    pair) for upper-bound slack analysis.
    """
    if not isinstance(index.semiring, ShortestDistance):
        raise ConfigError("bound diagnostics are defined for the distance algebra")
    report = BoundGapReport()
    graph = index.graph
    for source, target in pairs:
        bounds = QueryBounds(index, source, target)
        true_cost = None
        if with_truth:
            from repro.baselines.dijkstra import dijkstra_distance

            true_cost, _stats = dijkstra_distance(graph, source, target)
        report.gaps.append(
            BoundGap(
                source=source,
                target=target,
                lower=bounds.lower_bound(),
                upper=bounds.upper_bound,
                true_cost=true_cost,
            )
        )
    return report


def index_coverage(index: HubIndex, sample_pairs: Sequence[Tuple[int, int]]) -> float:
    """Fraction of sampled pairs for which the index yields a finite upper
    bound (i.e. some hub connects them)."""
    if not sample_pairs:
        return 0.0
    covered = 0
    unreachable = index.semiring.unreachable
    for source, target in sample_pairs:
        if QueryBounds(index, source, target).upper_bound != unreachable:
            covered += 1
    return covered / len(sample_pairs)
