"""Path-cost algebra shared by the index, the engines, and the maintainers.

SGraph's pruning idea is not specific to shortest distances: it applies to
any *monotone* pairwise path query — one where extending a path never makes
it better, so best-first settling is correct and a triangle-style inequality
relates hub costs to query costs.  We capture the three query families the
pairwise literature uses:

* :class:`ShortestDistance` — minimize the sum of weights;
* :class:`BottleneckCapacity` — maximize the minimum weight (widest path);
* :class:`ReliabilityProduct` — maximize the product of probabilities
  (most reliable path; weights must be in (0, 1]).

A :class:`PathSemiring` fixes five things: the cost of the empty path
(``source_value``), how a path extends over an edge (``extend``), which of
two costs is better (``is_better``), the cost meaning "no path"
(``unreachable``), and a mapping to a min-heap priority (``priority``) under
which best-first settling is sound.  Dijkstra, the incremental maintainer,
and the hub index are all written once against this interface.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class PathSemiring(ABC):
    """Cost algebra for monotone best-path problems."""

    #: short name used in configs and benchmark tables
    name: str = "abstract"

    @property
    @abstractmethod
    def source_value(self) -> float:
        """Cost of the empty path (distance 0, capacity +inf)."""

    @property
    @abstractmethod
    def unreachable(self) -> float:
        """Cost representing "no path exists"."""

    @abstractmethod
    def extend(self, path_cost: float, edge_weight: float) -> float:
        """Cost of a path extended by one edge."""

    @abstractmethod
    def is_better(self, a: float, b: float) -> bool:
        """True when cost ``a`` is strictly preferable to cost ``b``."""

    @abstractmethod
    def priority(self, cost: float) -> float:
        """Min-heap priority such that better costs settle first."""

    @abstractmethod
    def concat(self, a: float, b: float) -> float:
        """Cost of two paths joined end to end.

        Used both to seed the incumbent (an s→h→t witness path) and for
        bidirectional meeting candidates.
        """

    @abstractmethod
    def residual_from_hub(self, cost_hub_to_v: float, cost_hub_to_t: float) -> float:
        """Optimistic bound on cost(v, t) from a hub's *outgoing* costs.

        "Optimistic" means the true cost(v, t) can be no better than the
        returned value; returning :attr:`source_value` is the trivial
        (information-free) bound, returning :attr:`unreachable` proves there
        is no v→t path at all.
        """

    @abstractmethod
    def residual_to_hub(self, cost_v_to_hub: float, cost_t_to_hub: float) -> float:
        """Optimistic bound on cost(v, t) from a hub's *incoming* costs."""

    @abstractmethod
    def tighter_residual(self, a: float, b: float) -> float:
        """Combine two optimistic bounds, keeping the more restrictive one."""

    # -- derived helpers ------------------------------------------------------

    def best(self, a: float, b: float) -> float:
        return a if self.is_better(a, b) else b

    def is_reachable(self, cost: float) -> bool:
        return cost != self.unreachable

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ShortestDistance(PathSemiring):
    """Minimize total weight.  The paper's headline query."""

    name = "distance"

    @property
    def source_value(self) -> float:
        return 0.0

    @property
    def unreachable(self) -> float:
        return math.inf

    def extend(self, path_cost: float, edge_weight: float) -> float:
        return path_cost + edge_weight

    def is_better(self, a: float, b: float) -> bool:
        return a < b

    def priority(self, cost: float) -> float:
        return cost

    def concat(self, a: float, b: float) -> float:
        return a + b

    def residual_from_hub(self, cost_hub_to_v: float, cost_hub_to_t: float) -> float:
        # d(h, t) <= d(h, v) + d(v, t)  =>  d(v, t) >= d(h, t) - d(h, v)
        if cost_hub_to_v == math.inf:
            return 0.0  # hub knows nothing about v
        if cost_hub_to_t == math.inf:
            return math.inf  # h reaches v but not t: no v→t path can exist
        return max(cost_hub_to_t - cost_hub_to_v, 0.0)

    def residual_to_hub(self, cost_v_to_hub: float, cost_t_to_hub: float) -> float:
        # d(v, h) <= d(v, t) + d(t, h)  =>  d(v, t) >= d(v, h) - d(t, h)
        if cost_t_to_hub == math.inf:
            return 0.0  # inequality degenerates, no information
        if cost_v_to_hub == math.inf:
            return math.inf  # t reaches h but v does not: v cannot reach t
        return max(cost_v_to_hub - cost_t_to_hub, 0.0)

    def tighter_residual(self, a: float, b: float) -> float:
        return a if a > b else b


class BottleneckCapacity(PathSemiring):
    """Maximize the minimum edge weight along the path (widest path)."""

    name = "capacity"

    @property
    def source_value(self) -> float:
        return math.inf

    @property
    def unreachable(self) -> float:
        return -math.inf

    def extend(self, path_cost: float, edge_weight: float) -> float:
        return min(path_cost, edge_weight)

    def is_better(self, a: float, b: float) -> bool:
        return a > b

    def priority(self, cost: float) -> float:
        return -cost

    def concat(self, a: float, b: float) -> float:
        return min(a, b)

    def residual_from_hub(self, cost_hub_to_v: float, cost_hub_to_t: float) -> float:
        # cap(h, t) >= min(cap(h, v), cap(v, t))
        if cost_hub_to_v == -math.inf:
            return math.inf  # hub knows nothing about v
        if cost_hub_to_t == -math.inf:
            return -math.inf  # h reaches v but not t: v cannot reach t
        if cost_hub_to_v > cost_hub_to_t:
            # The min must have been limited by cap(v, t).
            return cost_hub_to_t
        return math.inf

    def residual_to_hub(self, cost_v_to_hub: float, cost_t_to_hub: float) -> float:
        # cap(v, h) >= min(cap(v, t), cap(t, h))
        if cost_t_to_hub == -math.inf:
            return math.inf  # no information
        if cost_v_to_hub == -math.inf:
            return -math.inf  # t reaches h but v does not: v cannot reach t
        if cost_t_to_hub > cost_v_to_hub:
            return cost_v_to_hub
        return math.inf

    def tighter_residual(self, a: float, b: float) -> float:
        return a if a < b else b


class ReliabilityProduct(PathSemiring):
    """Maximize the product of edge success probabilities.

    The "most reliable path" query: every edge weight is a probability in
    (0, 1], a path's reliability is the product along it, and the best path
    maximizes it.  Extension is non-improving (multiplying by ≤ 1), so
    best-first settling is sound.  Edge weights **must** lie in (0, 1] —
    :class:`repro.SGraph` validates this when the ``reliability`` family is
    configured; using the algebra directly leaves the check to the caller.

    Weight-1 edges make cost plateaus possible, so (like the bottleneck
    algebra) deletion repair falls back to a lazy rebuild in the
    incremental maintainer.
    """

    name = "reliability"

    @property
    def source_value(self) -> float:
        return 1.0

    @property
    def unreachable(self) -> float:
        return 0.0

    def extend(self, path_cost: float, edge_weight: float) -> float:
        return path_cost * edge_weight

    def is_better(self, a: float, b: float) -> bool:
        return a > b

    def priority(self, cost: float) -> float:
        return -cost

    def concat(self, a: float, b: float) -> float:
        return a * b

    def residual_from_hub(self, cost_hub_to_v: float, cost_hub_to_t: float) -> float:
        # R(h, t) >= R(h, v) * R(v, t)  =>  R(v, t) <= R(h, t) / R(h, v)
        if cost_hub_to_v == 0.0:
            return 1.0  # hub knows nothing about v
        if cost_hub_to_t == 0.0:
            return 0.0  # h reaches v but not t: v cannot reach t
        return min(cost_hub_to_t / cost_hub_to_v, 1.0)

    def residual_to_hub(self, cost_v_to_hub: float, cost_t_to_hub: float) -> float:
        # R(v, h) >= R(v, t) * R(t, h)  =>  R(v, t) <= R(v, h) / R(t, h)
        if cost_t_to_hub == 0.0:
            return 1.0  # no information
        if cost_v_to_hub == 0.0:
            return 0.0  # t reaches h but v does not: v cannot reach t
        return min(cost_v_to_hub / cost_t_to_hub, 1.0)

    def tighter_residual(self, a: float, b: float) -> float:
        return a if a < b else b


#: module-level singletons — the algebras are stateless
SHORTEST_DISTANCE = ShortestDistance()
BOTTLENECK_CAPACITY = BottleneckCapacity()
RELIABILITY_PRODUCT = ReliabilityProduct()
