"""Configuration auto-tuning.

Hub count and placement are the two knobs that decide SGraph's pruning
power (E7/E11), and the right setting is topology-dependent: degree hubs on
skewed graphs, spread-out hubs on flat ones, with diminishing returns in k
against linear maintenance cost.  :func:`auto_tune` turns that folklore
into a measurement: it builds candidate indexes, profiles their bound
tightness on sampled query pairs, and picks the cheapest configuration
whose median bound-gap ratio is within a slack factor of the best seen.

The returned :class:`TuningResult` keeps the full candidate table so the
decision is auditable (and printable by ``repro tune``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.config import SGraphConfig
from repro.core.diagnostics import bound_gap_profile
from repro.core.hub_index import HubIndex
from repro.errors import ConfigError
from repro.graph.stats import sample_vertex_pairs


@dataclass(frozen=True)
class Candidate:
    """One evaluated (strategy, k) configuration."""

    strategy: str
    num_hubs: int
    exact_fraction: float
    gap_p50: float
    gap_p90: float

    def as_row(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "k": self.num_hubs,
            "exact%": round(100 * self.exact_fraction, 1),
            "gap_p50": round(self.gap_p50, 2),
            "gap_p90": round(self.gap_p90, 2),
        }


@dataclass
class TuningResult:
    """Chosen configuration plus the full audit trail."""

    config: SGraphConfig
    candidates: List[Candidate] = field(default_factory=list)

    @property
    def chosen(self) -> Candidate:
        for candidate in self.candidates:
            if (candidate.strategy == self.config.hub_strategy
                    and candidate.num_hubs == self.config.num_hubs):
                return candidate
        raise ConfigError("tuning result lost its chosen candidate")

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for candidate in self.candidates:
            row = candidate.as_row()
            row["chosen"] = (
                "*" if candidate.strategy == self.config.hub_strategy
                and candidate.num_hubs == self.config.num_hubs else ""
            )
            rows.append(row)
        return rows


def auto_tune(
    graph,
    hub_budgets: Sequence[int] = (4, 8, 16, 32),
    strategies: Sequence[str] = ("degree", "far-apart", "path-cover"),
    num_pairs: int = 32,
    seed: int = 0,
    slack: float = 1.10,
    queries: Tuple[str, ...] = ("distance",),
) -> TuningResult:
    """Pick hub strategy and count for ``graph`` by measured bound tightness.

    Every (strategy, k) candidate is profiled on the same sampled pairs;
    the winner is the candidate with the *fewest hubs* among those whose
    median gap ratio is within ``slack`` of the overall best — fewer hubs
    mean proportionally cheaper maintenance, the trade E6/E7 quantify.
    """
    if not hub_budgets:
        raise ConfigError("hub_budgets must not be empty")
    if slack < 1.0:
        raise ConfigError("slack must be >= 1.0")
    max_hubs = graph.num_vertices
    pairs = sample_vertex_pairs(graph, num_pairs, seed=seed + 1)
    candidates: List[Candidate] = []
    for strategy in strategies:
        for k in hub_budgets:
            if k > max_hubs:
                continue
            index = HubIndex.build(graph, k, strategy=strategy, seed=seed)
            report = bound_gap_profile(index, pairs)
            candidates.append(
                Candidate(
                    strategy=strategy,
                    num_hubs=k,
                    exact_fraction=report.exact_fraction,
                    gap_p50=report.ratio_percentile(0.5),
                    gap_p90=report.ratio_percentile(0.9),
                )
            )
    if not candidates:
        raise ConfigError("no feasible candidate (hub budgets exceed |V|?)")
    best_gap = min(candidate.gap_p50 for candidate in candidates)
    admissible = [
        candidate for candidate in candidates
        if candidate.gap_p50 <= best_gap * slack
    ]
    # Fewest hubs wins; ties break toward the tighter gap, then by the
    # strategy order the caller supplied (earlier = preferred).
    order = {strategy: i for i, strategy in enumerate(strategies)}
    chosen = min(
        admissible,
        key=lambda c: (c.num_hubs, c.gap_p50, order[c.strategy]),
    )
    config = SGraphConfig(
        num_hubs=chosen.num_hubs,
        hub_strategy=chosen.strategy,
        queries=queries,
        seed=seed,
    )
    return TuningResult(config=config, candidates=candidates)
