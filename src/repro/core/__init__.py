"""SGraph's core contribution: hub index, bounds, and the pruned engine."""

from repro.core.bounds import QueryBounds
from repro.core.config import SGraphConfig
from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.core.hub_selection import STRATEGIES, select_hubs
from repro.core.pairwise import PairwiseQuery, QueryKind, QueryResult
from repro.core.pruning import PruningPolicy
from repro.core.semiring import (
    BOTTLENECK_CAPACITY,
    RELIABILITY_PRODUCT,
    SHORTEST_DISTANCE,
    BottleneckCapacity,
    PathSemiring,
    ReliabilityProduct,
    ShortestDistance,
)
from repro.core.stats import QueryStats, StatsAggregate

__all__ = [
    "QueryBounds",
    "SGraphConfig",
    "PairwiseEngine",
    "HubIndex",
    "STRATEGIES",
    "select_hubs",
    "PairwiseQuery",
    "QueryKind",
    "QueryResult",
    "PruningPolicy",
    "PathSemiring",
    "ShortestDistance",
    "BottleneckCapacity",
    "ReliabilityProduct",
    "SHORTEST_DISTANCE",
    "BOTTLENECK_CAPACITY",
    "RELIABILITY_PRODUCT",
    "QueryStats",
    "StatsAggregate",
]
