"""Epoch-guarded query result cache.

Serving workloads re-ask hot pairs (dashboards, popular profiles) far more
often than the graph changes between asks.  Because every mutation advances
the graph epoch, a result tagged with its epoch is valid exactly while the
epoch is unchanged — an invalidation rule that is both trivial and airtight
(no dependency tracking, no staleness window).

:class:`QueryCache` is a small LRU keyed by ``(kind, source, target)``
whose entries self-invalidate when the epoch moves.  The facade consults it
for the value-returning query kinds when constructed with
``SGraphConfig(cache_size > 0)``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple

from repro.errors import ConfigError


class QueryCache:
    """LRU of query answers, each pinned to the epoch it was computed at."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError("cache capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, Tuple[int, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.stale_puts = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, epoch: int) -> Optional[object]:
        """The cached value for ``key`` if it was computed at ``epoch``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        cached_epoch, value = entry
        if cached_epoch != epoch:
            # Stale: the graph moved on.  Drop it rather than keep paying
            # the lookup for an entry that can never hit again.
            del self._entries[key]
            self.stale += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, epoch: int, value: object) -> None:
        entry = self._entries.get(key)
        if entry is not None and entry[0] > epoch:
            # A late writer (e.g. a slow query that straddled a mutation)
            # must not clobber a fresher answer: overwriting would resurrect
            # a stale value for the newer epoch's lookup window.
            self.stale_puts += 1
            return
        self._entries[key] = (epoch, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def stats_row(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "stale_puts": self.stale_puts,
            "hit%": round(100.0 * self.hits / total, 1) if total else 0.0,
        }
