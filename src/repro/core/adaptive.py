"""Per-query adaptive strategy selection.

E3's honest result: lower-bound pruning wins when the bounds are tight
(skewed graphs, spread hubs) but on loose-bound topologies the per-vertex
bound probes can cost more than they save, letting plain bidirectional
search win on wall-clock.  The fix is not a better constant — it is *not
probing when the probe won't pay*.

:class:`AdaptiveEngine` computes the query's own bound gap (two table
lookups per hub, already needed for the incumbent seed) and dispatches:

* gap closed → answer from the index, zero traversal;
* gap ratio ≤ ``gap_threshold`` → the pruned engine (bounds are tight
  enough that probes prune hard);
* otherwise → plain bidirectional search seeded with the witness upper
  bound but skipping per-vertex residual probes (``UPPER_ONLY``).

The threshold default comes from the E11 measurement: median gap ratios
below ~2.5 mark the regime where pruning wins.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.core.bounds import QueryBounds
from repro.core.engine import PairwiseEngine
from repro.core.hub_index import HubIndex
from repro.core.pruning import PruningPolicy
from repro.core.semiring import ShortestDistance
from repro.core.stats import QueryStats
from repro.errors import ConfigError, QueryError


class AdaptiveEngine:
    """Distance engine that picks pruned vs plain search per query."""

    def __init__(
        self,
        graph,
        index: HubIndex,
        gap_threshold: float = 2.5,
    ) -> None:
        if not isinstance(index.semiring, ShortestDistance):
            raise ConfigError(
                "AdaptiveEngine is defined for the distance algebra"
            )
        if gap_threshold < 1.0:
            raise ConfigError("gap_threshold must be >= 1.0")
        self._graph = graph
        self._index = index
        self._threshold = gap_threshold
        self._pruned = PairwiseEngine(
            graph, index=index, policy=PruningPolicy.UPPER_AND_LOWER
        )
        self._plain = PairwiseEngine(
            graph, index=index, policy=PruningPolicy.UPPER_ONLY
        )
        #: dispatch counters, for diagnostics and the E15 table
        self.answered_from_index = 0
        self.dispatched_pruned = 0
        self.dispatched_plain = 0

    @property
    def gap_threshold(self) -> float:
        return self._threshold

    def best_cost(self, source: int, target: int) -> Tuple[float, QueryStats]:
        """Exact distance with per-query strategy selection."""
        graph = self._graph
        for v in (source, target):
            if not graph.has_vertex(v):
                raise QueryError(f"query endpoint {v} is not in the graph")
        if source == target:
            stats = QueryStats()
            stats.answered_by_index = True
            return 0.0, stats
        bounds = QueryBounds(self._index, source, target)
        lower = bounds.lower_bound()
        upper = bounds.upper_bound
        if lower == math.inf:
            self.answered_from_index += 1
            stats = QueryStats()
            stats.answered_by_index = True
            return math.inf, stats
        if upper != math.inf and lower == upper:
            self.answered_from_index += 1
            stats = QueryStats()
            stats.answered_by_index = True
            return upper, stats
        ratio = math.inf if lower <= 0 or upper == math.inf else upper / lower
        if ratio <= self._threshold:
            self.dispatched_pruned += 1
            return self._pruned.best_cost(source, target)
        self.dispatched_plain += 1
        return self._plain.best_cost(source, target)

    def dispatch_counts(self) -> dict:
        return {
            "index": self.answered_from_index,
            "pruned": self.dispatched_pruned,
            "plain": self.dispatched_plain,
        }
