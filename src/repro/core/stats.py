"""Per-query execution counters.

The paper's central evaluation metric is not wall-clock time but *vertex
activations* — how much of the graph a query touches.  Every engine in this
library (SGraph and all baselines) fills in a :class:`QueryStats` so the
activation-fraction experiment (E2) compares engines on identical terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class QueryStats:
    """Counters accumulated while answering one pairwise query."""

    #: vertices settled (popped and expanded) across both search directions
    activations: int = 0
    #: heap insertions + decrease-keys
    pushes: int = 0
    #: edge relaxations attempted
    relaxations: int = 0
    #: vertices discarded because ``g(v) + lower_bound(v) >= best`` (SGraph)
    pruned_by_lower_bound: int = 0
    #: vertices discarded because ``g(v) >= best`` (upper-bound-only systems)
    pruned_by_upper_bound: int = 0
    #: queries answered purely from the hub index without any traversal
    answered_by_index: bool = False
    #: wall-clock seconds for the query (filled by the harness)
    elapsed: float = 0.0
    #: searches that reused an already-allocated workspace (dense plane only)
    workspace_hits: int = 0
    #: workspace sparse-resets performed on behalf of this query
    workspace_resets: int = 0
    #: touched entries restored by those sparse resets (the O(touched) cost)
    touched_reset: int = 0

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one (harness use)."""
        self.activations += other.activations
        self.pushes += other.pushes
        self.relaxations += other.relaxations
        self.pruned_by_lower_bound += other.pruned_by_lower_bound
        self.pruned_by_upper_bound += other.pruned_by_upper_bound
        self.elapsed += other.elapsed
        self.workspace_hits += other.workspace_hits
        self.workspace_resets += other.workspace_resets
        self.touched_reset += other.touched_reset

    def activation_fraction(self, num_vertices: int) -> float:
        """Fraction of the graph this query activated."""
        if num_vertices <= 0:
            return 0.0
        return self.activations / num_vertices

    def as_row(self) -> Dict[str, object]:
        return {
            "act": self.activations,
            "push": self.pushes,
            "relax": self.relaxations,
            "lb_pruned": self.pruned_by_lower_bound,
            "ub_pruned": self.pruned_by_upper_bound,
            "from_index": self.answered_by_index,
            "ws_hits": self.workspace_hits,
            "ws_resets": self.workspace_resets,
            "ws_touched": self.touched_reset,
        }


@dataclass
class StatsAggregate:
    """Mean/percentile rollup over many queries, built by the harness."""

    activations: List[int] = field(default_factory=list)
    elapsed: List[float] = field(default_factory=list)
    answered_by_index: int = 0
    total: int = 0

    def add(self, stats: QueryStats) -> None:
        self.activations.append(stats.activations)
        self.elapsed.append(stats.elapsed)
        if stats.answered_by_index:
            self.answered_by_index += 1
        self.total += 1

    @staticmethod
    def _percentile(values: List[float], q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return float(ordered[idx])

    @property
    def mean_activations(self) -> float:
        return sum(self.activations) / len(self.activations) if self.activations else 0.0

    @property
    def mean_elapsed(self) -> float:
        return sum(self.elapsed) / len(self.elapsed) if self.elapsed else 0.0

    def p(self, q: float) -> float:
        """Latency percentile, q in [0, 1]."""
        return self._percentile(self.elapsed, q)

    def mean_activation_fraction(self, num_vertices: int) -> float:
        if num_vertices <= 0:
            return 0.0
        return self.mean_activations / num_vertices
