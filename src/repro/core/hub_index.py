"""The hub index: per-hub best-path cost tables, maintained incrementally.

This is SGraph's data structure.  For each of ``k`` hub vertices the index
keeps the best-path cost from the hub to every vertex (and, on directed
graphs, from every vertex to the hub).  Those two tables per hub are exactly
what the triangle inequality needs to produce

* an **upper bound** on any query ``cost(s, t)`` — the witness path
  ``s → h → t``; and
* a per-vertex **lower bound** on the remaining cost ``cost(v, t)`` — the
  novel pruning signal the paper introduces.

Tables are :class:`~repro.streaming.incremental_sssp.IncrementalBestPath`
maintainers over the *live* graph, so the index follows edge churn at a cost
proportional to the affected region instead of a full rebuild.
"""

from __future__ import annotations

import math
import sys
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.hub_selection import select_hubs
from repro.core.semiring import SHORTEST_DISTANCE, PathSemiring
from repro.errors import ConfigError, IndexStateError
from repro.graph.deltas import TOMBSTONE, LayeredMapping, derive_mapping
from repro.streaming.incremental_sssp import IncrementalBestPath

#: per-hub frozen cost tables, keyed by hub vertex
FrozenTables = Dict[int, Mapping]

#: capacity of the per-epoch LRU of extracted hub columns (entries are two
#: k-length lists each, so even at capacity the cache stays a few megabytes)
HUB_COLUMN_CACHE = 4096

#: capacity of the per-epoch LRU of residual lower-bound rows (entries are
#: |V|-length float lists — megabytes each on large planes — so the cap is
#: deliberately small; it only needs to cover the recurring target set of a
#: steady one-to-many workload)
RESIDUAL_ROW_CACHE = 32


class HubIndex:
    """Triangle-inequality bound index over ``k`` hubs.

    Construct with :meth:`build` (which also selects hubs) or directly with an
    explicit hub list.  The index holds a reference to the live graph;
    callers must route every graph mutation through
    :meth:`notify_edge_inserted` / :meth:`notify_edge_deleted` *after*
    mutating the graph (the :class:`repro.SGraph` facade does this).
    """

    def __init__(
        self,
        graph,
        hubs: Sequence[int],
        semiring: PathSemiring = SHORTEST_DISTANCE,
    ) -> None:
        if not hubs:
            raise ConfigError("hub index needs at least one hub")
        seen = set()
        for h in hubs:
            if h in seen:
                raise ConfigError(f"duplicate hub {h}")
            seen.add(h)
            if not graph.has_vertex(h):
                raise IndexStateError(f"hub {h} not in graph")
        self._graph = graph
        self._hubs = list(hubs)
        self._semiring = semiring
        self._forward: Dict[int, IncrementalBestPath] = {}
        self._backward: Dict[int, IncrementalBestPath] = {}
        for h in self._hubs:
            fwd = IncrementalBestPath(graph, h, semiring, direction="forward")
            self._forward[h] = fwd
            if graph.directed:
                self._backward[h] = IncrementalBestPath(
                    graph, h, semiring, direction="backward"
                )
            else:
                self._backward[h] = fwd
        #: vertices settled by the most recent notify call (maintenance metric)
        self.settled_last_update = 0
        # Baseline for delta-derived freezes: the tables handed out by the
        # previous freeze() call (immutable; shared with published views).
        self._frozen_fwd: FrozenTables = {}
        self._frozen_bwd: FrozenTables = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph,
        num_hubs: int = 16,
        strategy: str = "degree",
        seed: int = 0,
        semiring: PathSemiring = SHORTEST_DISTANCE,
    ) -> "HubIndex":
        """Select hubs with the named strategy and build the index."""
        hubs = select_hubs(graph, num_hubs, strategy=strategy, seed=seed)
        return cls(graph, hubs, semiring=semiring)

    @classmethod
    def from_tables(
        cls,
        graph,
        hubs: Sequence[int],
        semiring: PathSemiring,
        forward_tables: Dict[int, Mapping],
        backward_tables: Optional[Dict[int, Mapping]] = None,
        copy: bool = True,
    ) -> "HubIndex":
        """Reconstruct an index from persisted cost tables (no rebuild).

        ``backward_tables`` is required for directed graphs and ignored for
        undirected ones (where backward aliases forward).  ``copy=False``
        adopts the mappings by reference — the frozen-publish path, where
        tables are structurally shared across versions and the index is
        never notified of updates.
        """
        index = cls.__new__(cls)
        index._graph = graph
        index._hubs = list(hubs)
        index._semiring = semiring
        index._forward = {}
        index._backward = {}
        index.settled_last_update = 0
        index._frozen_fwd = {}
        index._frozen_bwd = {}
        for h in index._hubs:
            fwd = IncrementalBestPath.from_cost_table(
                graph, h, semiring, "forward", forward_tables[h], copy=copy
            )
            index._forward[h] = fwd
            if graph.directed:
                if backward_tables is None:
                    raise IndexStateError(
                        "directed index restore needs backward tables"
                    )
                index._backward[h] = IncrementalBestPath.from_cost_table(
                    graph, h, semiring, "backward", backward_tables[h],
                    copy=copy,
                )
            else:
                index._backward[h] = fwd
        return index

    # -- introspection --------------------------------------------------------------

    @property
    def graph(self):
        return self._graph

    @property
    def hubs(self) -> List[int]:
        return list(self._hubs)

    @property
    def num_hubs(self) -> int:
        return len(self._hubs)

    @property
    def semiring(self) -> PathSemiring:
        return self._semiring

    def __repr__(self) -> str:
        return (
            f"HubIndex(k={self.num_hubs}, semiring={self._semiring.name}, "
            f"entries={self.size_entries()})"
        )

    def cost_from_hub(self, hub: int, vertex: int) -> float:
        """Best cost ``hub → vertex`` (unreachable value if no path)."""
        return self._tree(self._forward, hub).cost(vertex)

    def cost_to_hub(self, hub: int, vertex: int) -> float:
        """Best cost ``vertex → hub``."""
        return self._tree(self._backward, hub).cost(vertex)

    def _tree(
        self, table: Dict[int, IncrementalBestPath], hub: int
    ) -> IncrementalBestPath:
        try:
            return table[hub]
        except KeyError:
            raise IndexStateError(f"{hub} is not a hub of this index") from None

    def forward_tree(self, hub: int) -> IncrementalBestPath:
        return self._tree(self._forward, hub)

    def backward_tree(self, hub: int) -> IncrementalBestPath:
        return self._tree(self._backward, hub)

    # -- maintenance --------------------------------------------------------------

    def notify_edge_inserted(self, src: int, dst: int, weight: float) -> None:
        """Repair all hub trees after edge ``src → dst`` was added to the graph."""
        settled = 0
        for h in self._hubs:
            fwd = self._forward[h]
            fwd.on_edge_inserted(src, dst, weight)
            settled += fwd.settled_last_op
            bwd = self._backward[h]
            if bwd is not fwd:
                bwd.on_edge_inserted(src, dst, weight)
                settled += bwd.settled_last_op
        self.settled_last_update = settled

    def notify_edge_deleted(self, src: int, dst: int, old_weight: float) -> None:
        """Repair all hub trees after edge ``src → dst`` was removed."""
        settled = 0
        for h in self._hubs:
            fwd = self._forward[h]
            fwd.on_edge_deleted(src, dst, old_weight)
            settled += fwd.settled_last_op
            bwd = self._backward[h]
            if bwd is not fwd:
                bwd.on_edge_deleted(src, dst, old_weight)
                settled += bwd.settled_last_op
        self.settled_last_update = settled

    def refresh(self) -> None:
        """Force any lazily-deferred rebuilds to run now."""
        for h in self._hubs:
            self._forward[h].ensure_fresh()
            bwd = self._backward[h]
            if bwd is not self._forward[h]:
                bwd.ensure_fresh()

    # -- freezing (the publish path) ---------------------------------------------

    def freeze(self) -> Tuple[FrozenTables, FrozenTables]:
        """Immutable per-hub cost tables for publishing a version.

        Drains each maintainer's change journal and derives the new frozen
        table from the previous freeze's table plus those changes, so the
        cost is O(vertices whose cost changed since the last freeze) — an
        unchanged tree hands back the *same* mapping object.  Only the first
        freeze (or one after a wholesale rebuild) pays a full table copy.

        Returns ``(forward, backward)``; ``backward`` is empty for
        undirected graphs, where the two directions alias.
        """
        fwd: FrozenTables = {}
        bwd: FrozenTables = {}
        for h in self._hubs:
            fwd[h] = self._freeze_tree(self._forward[h],
                                       self._frozen_fwd.get(h))
            bwd_tree = self._backward[h]
            if bwd_tree is not self._forward[h]:
                bwd[h] = self._freeze_tree(bwd_tree, self._frozen_bwd.get(h))
        self._frozen_fwd = fwd
        self._frozen_bwd = bwd
        return fwd, bwd

    @staticmethod
    def _freeze_tree(
        tree: IncrementalBestPath, prev: Optional[Mapping]
    ) -> Mapping:
        full, changes = tree.drain_changes()
        if full or prev is None:
            return dict(tree.raw_cost_table())
        if not changes:
            return prev
        return derive_mapping(
            prev,
            {v: (TOMBSTONE if new is None else new) for v, _old, new in changes},
        )

    def rebuild(self) -> None:
        """Full rebuild of every hub tree (the non-incremental baseline).

        For the distance algebra over a snapshot-able graph this goes
        through a shared CSR materialization — one O(E) array build paid
        once, then numpy-backed Dijkstra per hub — which is the strongest
        honest rebuild baseline for the E6 comparison.  Other algebras (and
        graph views without ``snapshot``) fall back to per-tree dict
        Dijkstra.
        """
        from repro.core.semiring import ShortestDistance

        snapshot_fn = getattr(self._graph, "snapshot", None)
        if isinstance(self._semiring, ShortestDistance) and snapshot_fn is not None:
            self._rebuild_via_csr(snapshot_fn())
            return
        for h in self._hubs:
            self._forward[h].rebuild()
            bwd = self._backward[h]
            if bwd is not self._forward[h]:
                bwd.rebuild()

    def _rebuild_via_csr(self, snapshot) -> None:
        import math

        csr = snapshot.to_csr()
        ids = csr.vertex_ids()

        def to_table(dist) -> Dict[int, float]:
            return {
                ids[i]: float(dist[i])
                for i in range(len(ids))
                if dist[i] != math.inf
            }

        for h in self._hubs:
            fwd_tree = self._forward[h]
            fwd_tree.adopt_table(to_table(csr.sssp(h)))
            bwd_tree = self._backward[h]
            if bwd_tree is not fwd_tree:
                bwd_tree.adopt_table(to_table(csr.sssp(h, backward=True)))

    # -- accounting -------------------------------------------------------------------

    def size_entries(self) -> int:
        """Total stored (hub, vertex) cost entries."""
        total = 0
        for h in self._hubs:
            total += self._forward[h].num_reachable
            bwd = self._backward[h]
            if bwd is not self._forward[h]:
                total += bwd.num_reachable
        return total

    def size_bytes(self) -> int:
        """Rough resident size of the cost tables (E10's memory metric)."""
        total = 0
        for h in self._hubs:
            total += sys.getsizeof(self._forward[h].raw_cost_table())
            bwd = self._backward[h]
            if bwd is not self._forward[h]:
                total += sys.getsizeof(bwd.raw_cost_table())
        # Keys and float values are shared small objects in CPython only
        # sometimes; charge 16 bytes per entry as a uniform estimate.
        return total + 16 * self.size_entries()


# -- the dense serving plane -------------------------------------------------


def _full_row(mapping: Mapping, dense: Dict[int, int], n: int) -> np.ndarray:
    """Materialize one hub cost table as a dense float64 row (inf = absent)."""
    row = np.full(n, math.inf, dtype=np.float64)
    dget = dense.get
    for v, c in mapping.items():
        i = dget(v)
        if i is not None:
            row[i] = c
    return row


def _derive_row(
    new_map: Mapping,
    prev_map: Optional[Mapping],
    prev_row: Optional[np.ndarray],
    dense: Dict[int, int],
) -> Optional[np.ndarray]:
    """Derive a dense row from the previous epoch's row in O(overlay).

    Works whenever both mappings are :class:`LayeredMapping` layers over the
    *identical* base object (the invariant `derive_mapping` maintains until
    it compacts): the two versions then differ in at most the union of their
    overlay keys, so copying the previous row and re-reading just those keys
    reproduces a full rebuild exactly.  Returns None when the precondition
    does not hold and the caller must pay the O(|V|) `_full_row`.
    """
    if prev_map is None or prev_row is None:
        return None
    if new_map is prev_map:
        return prev_row
    if not isinstance(new_map, LayeredMapping):
        return None
    base = new_map.base
    prev_base = prev_map.base if isinstance(prev_map, LayeredMapping) else prev_map
    if prev_base is not base:
        return None
    keys = list(new_map.overlay_keys())
    if isinstance(prev_map, LayeredMapping):
        keys.extend(prev_map.overlay_keys())
    if not keys:
        return prev_row
    row = prev_row.copy()
    inf = math.inf
    get = new_map.get
    dget = dense.get
    for v in keys:
        i = dget(v)
        if i is not None:
            row[i] = get(v, inf)
    return row


class DenseHubTables:
    """Frozen hub cost tables as numpy rows over dense vertex ids.

    One float64 row of length ``|V|`` per hub and direction (``inf`` marks
    unreachable), stored per hub so rows can be *shared by reference* across
    epochs: :meth:`derive` copies an old row and patches only the overlay
    keys when the underlying :class:`LayeredMapping` freeze chain allows it,
    mirroring the O(Δ) dict-table publish.  Bound evaluation additionally
    keeps lazily stacked ``(k, |V|)`` matrices so ``UB``/residual math is a
    handful of vectorized ops instead of ``k`` dict probes.

    Only meaningful for the min-plus (shortest distance / hops) algebra —
    the residual formulas baked into the bound methods assume it.
    """

    __slots__ = (
        "hubs",
        "fwd_rows",
        "bwd_rows",
        "directed",
        "_ids",
        "_fwd_refs",
        "_bwd_refs",
        "_F",
        "_B",
        "_Fl",
        "_Bl",
        "_cols",
        "column_hits",
        "column_misses",
        "_res_rows",
        "row_hits",
        "row_misses",
    )

    def __init__(
        self,
        hubs: List[int],
        fwd_rows: List[np.ndarray],
        bwd_rows: List[np.ndarray],
        directed: bool,
        ids: List[int],
        fwd_refs: Dict[int, Mapping],
        bwd_refs: Dict[int, Mapping],
    ) -> None:
        self.hubs = hubs
        self.fwd_rows = fwd_rows
        self.bwd_rows = bwd_rows
        self.directed = directed
        self._ids = ids
        # The frozen mappings each row was materialized from — the baseline
        # the next epoch's derive() diffs against.
        self._fwd_refs = fwd_refs
        self._bwd_refs = bwd_refs
        self._F: Optional[np.ndarray] = None
        self._B: Optional[np.ndarray] = None
        self._Fl: Optional[List[list]] = None
        self._Bl: Optional[List[list]] = None
        self._cols: "OrderedDict[int, Tuple[list, list]]" = OrderedDict()
        self.column_hits = 0
        self.column_misses = 0
        self._res_rows: "OrderedDict[int, list]" = OrderedDict()
        self.row_hits = 0
        self.row_misses = 0

    @classmethod
    def derive(
        cls,
        csr,
        hubs: Sequence[int],
        fwd_tables: Dict[int, Mapping],
        bwd_tables: Dict[int, Mapping],
        prev: Optional["DenseHubTables"] = None,
    ) -> "DenseHubTables":
        """Dense rows for one freeze, reusing ``prev``'s rows where possible.

        ``fwd_tables``/``bwd_tables`` are :meth:`HubIndex.freeze` output
        (``bwd_tables`` empty for undirected graphs, where backward aliases
        forward).  ``prev`` must cover the identical id space (checked by
        object identity on the CSR's ``ids`` list) and hub list to be
        usable; otherwise every row is built fresh in O(|V|).
        """
        hubs = list(hubs)
        dense = csr.dense_map
        n = csr.num_vertices
        directed = csr.directed
        if directed and not bwd_tables:
            raise IndexStateError("directed dense tables need backward tables")
        compatible = (
            prev is not None
            and prev._ids is csr.ids
            and prev.hubs == hubs
            and prev.directed == directed
        )
        fwd_rows: List[np.ndarray] = []
        for pos, h in enumerate(hubs):
            mapping = fwd_tables[h]
            row = None
            if compatible:
                row = _derive_row(
                    mapping, prev._fwd_refs.get(h), prev.fwd_rows[pos], dense
                )
            if row is None:
                row = _full_row(mapping, dense, n)
            fwd_rows.append(row)
        if not directed:
            bwd_rows = fwd_rows
            bwd_refs: Dict[int, Mapping] = {}
        else:
            bwd_rows = []
            for pos, h in enumerate(hubs):
                mapping = bwd_tables[h]
                row = None
                if compatible:
                    row = _derive_row(
                        mapping, prev._bwd_refs.get(h), prev.bwd_rows[pos], dense
                    )
                if row is None:
                    row = _full_row(mapping, dense, n)
                bwd_rows.append(row)
            bwd_refs = dict(bwd_tables)
        return cls(
            hubs=hubs,
            fwd_rows=fwd_rows,
            bwd_rows=bwd_rows,
            directed=directed,
            ids=csr.ids,
            fwd_refs=dict(fwd_tables),
            bwd_refs=bwd_refs,
        )

    @classmethod
    def from_matrices(
        cls,
        hubs: Sequence[int],
        F: np.ndarray,
        B: np.ndarray,
        ids: List[int],
        directed: bool,
    ) -> "DenseHubTables":
        """Adopt prebuilt stacked ``(k, |V|)`` cost matrices by reference.

        The shared-memory attach path: the per-hub rows become views into
        ``F``/``B`` and the stacked matrices are pre-seeded, so neither
        construction nor the first vectorized bound pays a copy.  Pass the
        same array for ``B`` and ``F`` on undirected tables (backward then
        aliases forward throughout).
        """
        fwd_rows = [F[j] for j in range(F.shape[0])]
        if B is F:
            bwd_rows = fwd_rows
        else:
            bwd_rows = [B[j] for j in range(B.shape[0])]
        tables = cls(
            hubs=list(hubs),
            fwd_rows=fwd_rows,
            bwd_rows=bwd_rows,
            directed=directed,
            ids=ids,
            fwd_refs={},
            bwd_refs={},
        )
        tables._F = F
        tables._B = F if bwd_rows is fwd_rows else B
        return tables

    @property
    def num_hubs(self) -> int:
        return len(self.hubs)

    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    @property
    def nbytes(self) -> int:
        """Array payload bytes of the per-hub rows."""
        total = sum(int(row.nbytes) for row in self.fwd_rows)
        if self.bwd_rows is not self.fwd_rows:
            total += sum(int(row.nbytes) for row in self.bwd_rows)
        return total

    def __repr__(self) -> str:
        return (
            f"DenseHubTables(k={self.num_hubs}, |V|={self.num_vertices}, "
            f"directed={self.directed})"
        )

    def _stacked(self) -> Tuple[np.ndarray, np.ndarray]:
        """Lazily stacked ``(k, |V|)`` forward/backward cost matrices.

        ``F[j, v]`` = cost hub_j → v, ``B[j, v]`` = cost v → hub_j (dense
        ids).  Stacking copies, so it runs once per tables object and only
        when a query actually needs vectorized bounds.
        """
        if self._F is None:
            self._F = np.vstack(self.fwd_rows)
            if self.bwd_rows is self.fwd_rows:
                self._B = self._F
            else:
                self._B = np.vstack(self.bwd_rows)
        return self._F, self._B

    def rows_as_lists(self) -> Tuple[List[list], List[list]]:
        """Cached per-hub rows as plain Python lists, ``(forward, backward)``.

        The search hot loop probes individual ``row[dense_id]`` entries with
        short-circuit (most pruned vertices are decided by the first hub);
        Python-list indexing beats numpy scalar indexing several-fold there.
        Built once per tables object — O(k·|V|) amortized over every query
        this freeze serves — then shared.  Backward aliases forward for
        undirected tables.
        """
        if self._Fl is None:
            self._Fl = [row.tolist() for row in self.fwd_rows]
            if self.bwd_rows is self.fwd_rows:
                self._Bl = self._Fl
            else:
                self._Bl = [row.tolist() for row in self.bwd_rows]
        return self._Fl, self._Bl

    def columns_for(self, v: int) -> Tuple[list, list]:
        """The per-hub ``(forward, backward)`` cost columns at dense id ``v``.

        ``forward[j]`` = cost hub_j → v, ``backward[j]`` = cost v → hub_j —
        the two k-length scalar columns the dense pairwise search references
        for each query endpoint.  Extracting them is O(k) per call, which a
        serving workload repeats endlessly for hot endpoints, so the columns
        are kept in a small LRU keyed by dense id.  Tables are immutable for
        the life of an epoch, so entries can never go stale; the cache dies
        with the tables object on epoch handoff.
        """
        cache = self._cols
        entry = cache.get(v)
        if entry is not None:
            cache.move_to_end(v)
            self.column_hits += 1
            return entry
        Fl, Bl = self.rows_as_lists()
        entry = ([row[v] for row in Fl], [row[v] for row in Bl])
        cache[v] = entry
        self.column_misses += 1
        if len(cache) > HUB_COLUMN_CACHE:
            cache.popitem(last=False)
        return entry

    def residual_list_for(self, t: int) -> list:
        """The residual lower-bound row to ``t``, cached, as a plain list.

        ``result[v]`` bounds ``d(v, t)`` from below — the row the
        one-to-many search probes once per settled vertex per live target.
        Materializing it is O(|V|·k) (a numpy pass plus ``tolist``), which
        dwarfs a pruned search, so rows are kept in a small LRU keyed by
        target dense id.  Callers must treat the returned list as
        read-only — it is shared across queries for the life of the epoch.
        """
        cache = self._res_rows
        row = cache.get(t)
        if row is not None:
            cache.move_to_end(t)
            self.row_hits += 1
            return row
        row = self.residual_rows_to_target(t).tolist()
        cache[t] = row
        self.row_misses += 1
        if len(cache) > RESIDUAL_ROW_CACHE:
            cache.popitem(last=False)
        return row

    # -- vectorized bound math (min-plus algebra) ----------------------------

    def upper_bound(self, s: int, t: int) -> float:
        """``min over hubs of d(s,h) + d(h,t)`` — dense ids in, cost out."""
        F, B = self._stacked()
        return float((B[:, s] + F[:, t]).min())

    def residual_pair(self, s: int, t: int) -> float:
        """Tightest per-hub lower bound on ``d(s, t)`` (dense ids)."""
        F, B = self._stacked()
        inf = math.inf
        fs, ft = F[:, s], F[:, t]
        bs, bt = B[:, s], B[:, t]
        with np.errstate(invalid="ignore"):
            from_hub = np.where(
                fs == inf, 0.0, np.where(ft == inf, inf, np.maximum(ft - fs, 0.0))
            )
            to_hub = np.where(
                bt == inf, 0.0, np.where(bs == inf, inf, np.maximum(bs - bt, 0.0))
            )
        return max(0.0, float(np.maximum(from_hub, to_hub).max()))

    def residual_rows_to_target(self, t: int) -> np.ndarray:
        """Row of lower bounds on ``d(v, t)`` for every dense id ``v``.

        The vectorized twin of ``QueryBounds.residual_forward`` — one numpy
        pass replaces ``|V| * k`` scalar dict probes.
        """
        F, B = self._stacked()
        inf = math.inf
        ft = F[:, t : t + 1]
        bt = B[:, t : t + 1]
        with np.errstate(invalid="ignore"):
            from_hub = np.where(
                F == inf, 0.0, np.where(ft == inf, inf, np.maximum(ft - F, 0.0))
            )
            to_hub = np.where(
                bt == inf, 0.0, np.where(B == inf, inf, np.maximum(B - bt, 0.0))
            )
        res = np.maximum(from_hub.max(axis=0), to_hub.max(axis=0))
        return np.maximum(res, 0.0)

    def upper_bounds_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Witness bounds ``min_h d(s,h) + d(h,t)`` for a whole target set.

        One vectorized ``(k, m)`` pass replaces ``m`` per-target scans —
        the batched twin of :meth:`upper_bound`, bit-identical per column
        (min over the same IEEE float64 sums, merely evaluated together).
        Dense ids in, a length-``m`` float64 array out.
        """
        F, B = self._stacked()
        cols = np.asarray(targets, dtype=np.intp)
        return (B[:, s][:, None] + F[:, cols]).min(axis=0)

    def residual_pairs_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Per-target lower bounds on ``d(s, t)`` for a whole target set.

        The batched twin of :meth:`residual_pair`: identical per-hub
        residual formulas, evaluated over the ``(k, m)`` target columns in
        one pass.  Dense ids in, a length-``m`` float64 array out.
        """
        F, B = self._stacked()
        inf = math.inf
        cols = np.asarray(targets, dtype=np.intp)
        fs = F[:, s][:, None]
        bs = B[:, s][:, None]
        ft = F[:, cols]
        bt = B[:, cols]
        with np.errstate(invalid="ignore"):
            from_hub = np.where(
                fs == inf, 0.0, np.where(ft == inf, inf, np.maximum(ft - fs, 0.0))
            )
            to_hub = np.where(
                bt == inf, 0.0, np.where(bs == inf, inf, np.maximum(bs - bt, 0.0))
            )
        res = np.maximum(from_hub, to_hub).max(axis=0)
        return np.maximum(res, 0.0)

    def residual_rows_to_targets(self, targets: Sequence[int]) -> np.ndarray:
        """``(m, |V|)`` matrix of lower bounds on ``d(v, t)`` per target.

        The batched twin of :meth:`residual_rows_to_target` — identical
        per-hub residual formulas, accumulated hub by hub with ``(m, |V|)``
        broadcasts so peak memory stays one row-set rather than a
        ``(k, m, |V|)`` cube.  Max over hubs is order-independent, so each
        output row is bit-identical to the per-target method's.
        """
        F, B = self._stacked()
        inf = math.inf
        cols = np.asarray(targets, dtype=np.intp)
        out = np.zeros((len(cols), F.shape[1]))
        if B is F:
            # Undirected: max(from_hub, to_hub) collapses to |d(h,t)-d(h,v)|
            # exactly (IEEE negation is exact; one-sided inf -> inf; both
            # inf -> inf-inf = nan -> no evidence, i.e. 0).
            with np.errstate(invalid="ignore"):
                for h in range(F.shape[0]):
                    fv = F[h]
                    d = np.abs(fv[cols][:, None] - fv)
                    d[np.isnan(d)] = 0.0
                    np.maximum(out, d, out=out)
            return out
        with np.errstate(invalid="ignore"):
            for h in range(F.shape[0]):
                fv = F[h]
                bv = B[h]
                ft = fv[cols][:, None]
                bt = bv[cols][:, None]
                from_hub = np.where(
                    fv == inf, 0.0,
                    np.where(ft == inf, inf, np.maximum(ft - fv, 0.0)),
                )
                to_hub = np.where(
                    bt == inf, 0.0,
                    np.where(bv == inf, inf, np.maximum(bv - bt, 0.0)),
                )
                np.maximum(out, from_hub, out=out)
                np.maximum(out, to_hub, out=out)
        return out

    def residual_rows_from_source(self, s: int) -> np.ndarray:
        """Row of lower bounds on ``d(s, v)`` for every dense id ``v``."""
        F, B = self._stacked()
        inf = math.inf
        fs = F[:, s : s + 1]
        bs = B[:, s : s + 1]
        with np.errstate(invalid="ignore"):
            from_hub = np.where(
                fs == inf, 0.0, np.where(F == inf, inf, np.maximum(F - fs, 0.0))
            )
            to_hub = np.where(
                B == inf, 0.0, np.where(bs == inf, inf, np.maximum(bs - B, 0.0))
            )
        res = np.maximum(from_hub.max(axis=0), to_hub.max(axis=0))
        return np.maximum(res, 0.0)


class DensePlane:
    """One epoch's complete dense serving state: CSR adjacency + hub rows.

    Built lazily (the first query against a published view triggers it, not
    the publish itself) and derived from the previous epoch's plane where
    the id space and freeze chain allow — see :meth:`build`.
    """

    __slots__ = ("csr", "tables")

    def __init__(self, csr, tables: DenseHubTables) -> None:
        self.csr = csr
        self.tables = tables

    @classmethod
    def build(
        cls,
        snapshot,
        hubs: Sequence[int],
        fwd_tables: Dict[int, Mapping],
        bwd_tables: Dict[int, Mapping],
        unit_weights: bool = False,
        prev: Optional["DensePlane"] = None,
    ) -> "DensePlane":
        """Dense plane for one published freeze.

        ``unit_weights=True`` serves the hop metric: the CSR is the shared
        unit-weight variant of the snapshot's CSR (same id space, fresh
        weight arrays).  ``prev`` chains planes across epochs so both the
        CSR id mapping and the per-hub rows derive in O(Δ).
        """
        reuse = prev.csr if prev is not None else None
        csr = snapshot.to_csr(reuse=reuse)
        if unit_weights:
            csr = csr.with_unit_weights()
        prev_tables = prev.tables if prev is not None else None
        tables = DenseHubTables.derive(
            csr, hubs, fwd_tables, bwd_tables, prev=prev_tables
        )
        return cls(csr, tables)

    @property
    def nbytes(self) -> int:
        """Array payload bytes (CSR + hub rows + the 8-byte/vertex id map).

        What a shared-memory export of this plane must carry — the
        attach-latency experiment (E21) plots against this.
        """
        return self.csr.nbytes + self.tables.nbytes + 8 * self.csr.num_vertices

    def __repr__(self) -> str:
        return f"DensePlane({self.csr!r}, {self.tables!r})"
