"""The hub index: per-hub best-path cost tables, maintained incrementally.

This is SGraph's data structure.  For each of ``k`` hub vertices the index
keeps the best-path cost from the hub to every vertex (and, on directed
graphs, from every vertex to the hub).  Those two tables per hub are exactly
what the triangle inequality needs to produce

* an **upper bound** on any query ``cost(s, t)`` — the witness path
  ``s → h → t``; and
* a per-vertex **lower bound** on the remaining cost ``cost(v, t)`` — the
  novel pruning signal the paper introduces.

Tables are :class:`~repro.streaming.incremental_sssp.IncrementalBestPath`
maintainers over the *live* graph, so the index follows edge churn at a cost
proportional to the affected region instead of a full rebuild.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.hub_selection import select_hubs
from repro.core.semiring import SHORTEST_DISTANCE, PathSemiring
from repro.errors import ConfigError, IndexStateError
from repro.graph.deltas import TOMBSTONE, derive_mapping
from repro.streaming.incremental_sssp import IncrementalBestPath

#: per-hub frozen cost tables, keyed by hub vertex
FrozenTables = Dict[int, Mapping]


class HubIndex:
    """Triangle-inequality bound index over ``k`` hubs.

    Construct with :meth:`build` (which also selects hubs) or directly with an
    explicit hub list.  The index holds a reference to the live graph;
    callers must route every graph mutation through
    :meth:`notify_edge_inserted` / :meth:`notify_edge_deleted` *after*
    mutating the graph (the :class:`repro.SGraph` facade does this).
    """

    def __init__(
        self,
        graph,
        hubs: Sequence[int],
        semiring: PathSemiring = SHORTEST_DISTANCE,
    ) -> None:
        if not hubs:
            raise ConfigError("hub index needs at least one hub")
        seen = set()
        for h in hubs:
            if h in seen:
                raise ConfigError(f"duplicate hub {h}")
            seen.add(h)
            if not graph.has_vertex(h):
                raise IndexStateError(f"hub {h} not in graph")
        self._graph = graph
        self._hubs = list(hubs)
        self._semiring = semiring
        self._forward: Dict[int, IncrementalBestPath] = {}
        self._backward: Dict[int, IncrementalBestPath] = {}
        for h in self._hubs:
            fwd = IncrementalBestPath(graph, h, semiring, direction="forward")
            self._forward[h] = fwd
            if graph.directed:
                self._backward[h] = IncrementalBestPath(
                    graph, h, semiring, direction="backward"
                )
            else:
                self._backward[h] = fwd
        #: vertices settled by the most recent notify call (maintenance metric)
        self.settled_last_update = 0
        # Baseline for delta-derived freezes: the tables handed out by the
        # previous freeze() call (immutable; shared with published views).
        self._frozen_fwd: FrozenTables = {}
        self._frozen_bwd: FrozenTables = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph,
        num_hubs: int = 16,
        strategy: str = "degree",
        seed: int = 0,
        semiring: PathSemiring = SHORTEST_DISTANCE,
    ) -> "HubIndex":
        """Select hubs with the named strategy and build the index."""
        hubs = select_hubs(graph, num_hubs, strategy=strategy, seed=seed)
        return cls(graph, hubs, semiring=semiring)

    @classmethod
    def from_tables(
        cls,
        graph,
        hubs: Sequence[int],
        semiring: PathSemiring,
        forward_tables: Dict[int, Mapping],
        backward_tables: Optional[Dict[int, Mapping]] = None,
        copy: bool = True,
    ) -> "HubIndex":
        """Reconstruct an index from persisted cost tables (no rebuild).

        ``backward_tables`` is required for directed graphs and ignored for
        undirected ones (where backward aliases forward).  ``copy=False``
        adopts the mappings by reference — the frozen-publish path, where
        tables are structurally shared across versions and the index is
        never notified of updates.
        """
        index = cls.__new__(cls)
        index._graph = graph
        index._hubs = list(hubs)
        index._semiring = semiring
        index._forward = {}
        index._backward = {}
        index.settled_last_update = 0
        index._frozen_fwd = {}
        index._frozen_bwd = {}
        for h in index._hubs:
            fwd = IncrementalBestPath.from_cost_table(
                graph, h, semiring, "forward", forward_tables[h], copy=copy
            )
            index._forward[h] = fwd
            if graph.directed:
                if backward_tables is None:
                    raise IndexStateError(
                        "directed index restore needs backward tables"
                    )
                index._backward[h] = IncrementalBestPath.from_cost_table(
                    graph, h, semiring, "backward", backward_tables[h],
                    copy=copy,
                )
            else:
                index._backward[h] = fwd
        return index

    # -- introspection --------------------------------------------------------------

    @property
    def graph(self):
        return self._graph

    @property
    def hubs(self) -> List[int]:
        return list(self._hubs)

    @property
    def num_hubs(self) -> int:
        return len(self._hubs)

    @property
    def semiring(self) -> PathSemiring:
        return self._semiring

    def __repr__(self) -> str:
        return (
            f"HubIndex(k={self.num_hubs}, semiring={self._semiring.name}, "
            f"entries={self.size_entries()})"
        )

    def cost_from_hub(self, hub: int, vertex: int) -> float:
        """Best cost ``hub → vertex`` (unreachable value if no path)."""
        return self._tree(self._forward, hub).cost(vertex)

    def cost_to_hub(self, hub: int, vertex: int) -> float:
        """Best cost ``vertex → hub``."""
        return self._tree(self._backward, hub).cost(vertex)

    def _tree(
        self, table: Dict[int, IncrementalBestPath], hub: int
    ) -> IncrementalBestPath:
        try:
            return table[hub]
        except KeyError:
            raise IndexStateError(f"{hub} is not a hub of this index") from None

    def forward_tree(self, hub: int) -> IncrementalBestPath:
        return self._tree(self._forward, hub)

    def backward_tree(self, hub: int) -> IncrementalBestPath:
        return self._tree(self._backward, hub)

    # -- maintenance --------------------------------------------------------------

    def notify_edge_inserted(self, src: int, dst: int, weight: float) -> None:
        """Repair all hub trees after edge ``src → dst`` was added to the graph."""
        settled = 0
        for h in self._hubs:
            fwd = self._forward[h]
            fwd.on_edge_inserted(src, dst, weight)
            settled += fwd.settled_last_op
            bwd = self._backward[h]
            if bwd is not fwd:
                bwd.on_edge_inserted(src, dst, weight)
                settled += bwd.settled_last_op
        self.settled_last_update = settled

    def notify_edge_deleted(self, src: int, dst: int, old_weight: float) -> None:
        """Repair all hub trees after edge ``src → dst`` was removed."""
        settled = 0
        for h in self._hubs:
            fwd = self._forward[h]
            fwd.on_edge_deleted(src, dst, old_weight)
            settled += fwd.settled_last_op
            bwd = self._backward[h]
            if bwd is not fwd:
                bwd.on_edge_deleted(src, dst, old_weight)
                settled += bwd.settled_last_op
        self.settled_last_update = settled

    def refresh(self) -> None:
        """Force any lazily-deferred rebuilds to run now."""
        for h in self._hubs:
            self._forward[h].ensure_fresh()
            bwd = self._backward[h]
            if bwd is not self._forward[h]:
                bwd.ensure_fresh()

    # -- freezing (the publish path) ---------------------------------------------

    def freeze(self) -> Tuple[FrozenTables, FrozenTables]:
        """Immutable per-hub cost tables for publishing a version.

        Drains each maintainer's change journal and derives the new frozen
        table from the previous freeze's table plus those changes, so the
        cost is O(vertices whose cost changed since the last freeze) — an
        unchanged tree hands back the *same* mapping object.  Only the first
        freeze (or one after a wholesale rebuild) pays a full table copy.

        Returns ``(forward, backward)``; ``backward`` is empty for
        undirected graphs, where the two directions alias.
        """
        fwd: FrozenTables = {}
        bwd: FrozenTables = {}
        for h in self._hubs:
            fwd[h] = self._freeze_tree(self._forward[h],
                                       self._frozen_fwd.get(h))
            bwd_tree = self._backward[h]
            if bwd_tree is not self._forward[h]:
                bwd[h] = self._freeze_tree(bwd_tree, self._frozen_bwd.get(h))
        self._frozen_fwd = fwd
        self._frozen_bwd = bwd
        return fwd, bwd

    @staticmethod
    def _freeze_tree(
        tree: IncrementalBestPath, prev: Optional[Mapping]
    ) -> Mapping:
        full, changes = tree.drain_changes()
        if full or prev is None:
            return dict(tree.raw_cost_table())
        if not changes:
            return prev
        return derive_mapping(
            prev,
            {v: (TOMBSTONE if new is None else new) for v, _old, new in changes},
        )

    def rebuild(self) -> None:
        """Full rebuild of every hub tree (the non-incremental baseline).

        For the distance algebra over a snapshot-able graph this goes
        through a shared CSR materialization — one O(E) array build paid
        once, then numpy-backed Dijkstra per hub — which is the strongest
        honest rebuild baseline for the E6 comparison.  Other algebras (and
        graph views without ``snapshot``) fall back to per-tree dict
        Dijkstra.
        """
        from repro.core.semiring import ShortestDistance

        snapshot_fn = getattr(self._graph, "snapshot", None)
        if isinstance(self._semiring, ShortestDistance) and snapshot_fn is not None:
            self._rebuild_via_csr(snapshot_fn())
            return
        for h in self._hubs:
            self._forward[h].rebuild()
            bwd = self._backward[h]
            if bwd is not self._forward[h]:
                bwd.rebuild()

    def _rebuild_via_csr(self, snapshot) -> None:
        import math

        csr = snapshot.to_csr()
        ids = csr.vertex_ids()

        def to_table(dist) -> Dict[int, float]:
            return {
                ids[i]: float(dist[i])
                for i in range(len(ids))
                if dist[i] != math.inf
            }

        for h in self._hubs:
            fwd_tree = self._forward[h]
            fwd_tree.adopt_table(to_table(csr.sssp(h)))
            bwd_tree = self._backward[h]
            if bwd_tree is not fwd_tree:
                bwd_tree.adopt_table(to_table(csr.sssp(h, backward=True)))

    # -- accounting -------------------------------------------------------------------

    def size_entries(self) -> int:
        """Total stored (hub, vertex) cost entries."""
        total = 0
        for h in self._hubs:
            total += self._forward[h].num_reachable
            bwd = self._backward[h]
            if bwd is not self._forward[h]:
                total += bwd.num_reachable
        return total

    def size_bytes(self) -> int:
        """Rough resident size of the cost tables (E10's memory metric)."""
        total = 0
        for h in self._hubs:
            total += sys.getsizeof(self._forward[h].raw_cost_table())
            bwd = self._backward[h]
            if bwd is not self._forward[h]:
                total += sys.getsizeof(bwd.raw_cost_table())
        # Keys and float values are shared small objects in CPython only
        # sometimes; charge 16 bytes per entry as a uniform estimate.
        return total + 16 * self.size_entries()
