"""The pruned bidirectional pairwise query engine.

One search routine serves every pruning policy the evaluation compares:

* ``NONE`` — plain bidirectional best-first search (meet-in-the-middle
  termination only); the index-free baseline.
* ``UPPER_ONLY`` — the search is seeded with the hub-index witness bound
  ``cost(s→h→t)`` and discards frontier vertices whose own cost already
  cannot beat it.  This models the "existing upper-bound-only" systems the
  paper measures at roughly 50% activation savings.
* ``UPPER_AND_LOWER`` — SGraph: additionally, every popped vertex ``v`` is
  tested against ``concat(g(v), residual(v))`` where ``residual(v)`` is the
  index's optimistic bound on the *remaining* cost.  Vertices that provably
  cannot improve the incumbent are discarded, and queries whose lower and
  upper bounds already coincide are answered with zero traversal.

The routine is generic over :class:`~repro.core.semiring.PathSemiring`, so
the same code answers shortest-distance and bottleneck queries.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bounds import DenseManyBounds, DenseQueryBounds, QueryBounds
from repro.core.hub_index import DensePlane, HubIndex
from repro.core.paths import hub_witness_path, stitch_bidirectional
from repro.core.pruning import PruningPolicy
from repro.core.semiring import SHORTEST_DISTANCE, PathSemiring, ShortestDistance
from repro.core.stats import QueryStats
from repro.core.workspace import SearchWorkspace
from repro.errors import ConfigError, QueryError
from repro.utils.pqueue import IndexedHeap


class PairwiseEngine:
    """Answers pairwise best-cost queries over one graph (live or snapshot).

    Parameters
    ----------
    graph:
        Anything implementing the traversal protocol (``out_items`` /
        ``in_items`` / ``has_vertex``).
    index:
        A :class:`HubIndex` over the *same* graph, required for the two
        index-using policies.
    policy:
        The pruning policy; accepts the enum or its string value.
    semiring:
        Cost algebra; defaults to the index's algebra when an index is given.
    dense:
        An optional :class:`DensePlane` (CSR adjacency + numpy hub tables)
        over the same graph.  When present, :meth:`best_cost`,
        :meth:`feasible` and :meth:`within_budget` run the flat-array search
        path instead of the dict path; answers are identical, only faster.
        Min-plus (distance/hops) algebra only.
    dense_factory:
        Zero-argument callable producing the :class:`DensePlane` on demand.
        The publish path uses this to keep publishing O(Δ): the plane is
        built (and cached) at the *first dense query*, not at construction.
    workspace:
        An optional :class:`SearchWorkspace` to adopt.  Long-lived owners
        (the SGraph facade, serving workers) pass the same workspace into
        each epoch's fresh engine so the O(V) search state survives epoch
        handoff; when omitted the engine allocates its own at the first
        dense query.
    reuse_workspace:
        When False every dense query runs in a freshly allocated
        workspace — the pre-workspace cold path, kept for benchmarking the
        reuse win (E24) and for bit-identity reference runs.
    """

    def __init__(
        self,
        graph,
        index: Optional[HubIndex] = None,
        policy: "PruningPolicy | str" = PruningPolicy.UPPER_AND_LOWER,
        semiring: Optional[PathSemiring] = None,
        dense: Optional[DensePlane] = None,
        dense_factory: Optional[Callable[[], DensePlane]] = None,
        workspace: Optional[SearchWorkspace] = None,
        reuse_workspace: bool = True,
    ) -> None:
        self._graph = graph
        self._policy = PruningPolicy.parse(policy)
        if (self._policy.uses_index and index is None
                and dense is None and dense_factory is None):
            # A dense plane carries its own hub tables, so index-using
            # policies can run index-free over it (the shm worker path);
            # only the all-dict configuration strictly needs the index.
            raise ConfigError(f"policy {self._policy.value} requires a hub index")
        if index is not None and semiring is not None and index.semiring is not semiring:
            raise ConfigError(
                "explicit semiring conflicts with the index's semiring"
            )
        if index is not None and index.graph is not graph:
            # A mismatched pair silently returns wrong answers (bounds from
            # one graph pruning a search over another), so it is an error.
            raise ConfigError(
                "hub index was built over a different graph object"
            )
        self._index = index
        if semiring is not None:
            self._semiring = semiring
        elif index is not None:
            self._semiring = index.semiring
        else:
            self._semiring = SHORTEST_DISTANCE
        if dense is not None and dense_factory is not None:
            raise ConfigError("pass dense or dense_factory, not both")
        if (dense is not None or dense_factory is not None) and not isinstance(
            self._semiring, ShortestDistance
        ):
            raise ConfigError(
                "the dense serving plane only supports the distance algebra"
            )
        self._dense = dense
        self._dense_factory = dense_factory
        self._ws = workspace
        self._reuse_workspace = reuse_workspace

    def _workspace_for(self, num_vertices: int) -> SearchWorkspace:
        """The workspace one dense search should run in.

        Steady state returns the engine's bound workspace (allocating it on
        first use).  A fresh throwaway is handed out when reuse is disabled
        (cold-reference mode) or, defensively, if the bound workspace is
        somehow still claimed — dense verbs never nest today, but a stale
        ``in_use`` flag must degrade to a slow query, not a wrong one.
        """
        if not self._reuse_workspace:
            return SearchWorkspace(num_vertices)
        ws = self._ws
        if ws is None:
            ws = self._ws = SearchWorkspace(num_vertices)
        elif ws.in_use:
            return SearchWorkspace(num_vertices)
        return ws

    @property
    def workspace(self) -> Optional[SearchWorkspace]:
        """The engine's bound workspace (None until the first dense query)."""
        return self._ws

    def workspace_stats(self) -> Dict[str, int]:
        """Lifetime reuse counters of the bound workspace (zeros if unbound)."""
        ws = self._ws
        if ws is None:
            return {
                "workspace_vertices": 0,
                "workspace_allocs": 0,
                "workspace_hits": 0,
                "workspace_resets": 0,
                "touched_reset": 0,
            }
        return ws.stats_row()

    def _dense_ready(self) -> Optional[DensePlane]:
        """The dense plane, forcing the lazy factory exactly once."""
        if self._dense is None and self._dense_factory is not None:
            factory = self._dense_factory
            self._dense_factory = None
            self._dense = factory()
        return self._dense

    @property
    def policy(self) -> PruningPolicy:
        return self._policy

    @property
    def semiring(self) -> PathSemiring:
        return self._semiring

    @property
    def index(self) -> Optional[HubIndex]:
        return self._index

    @property
    def dense_plane(self) -> Optional[DensePlane]:
        """The dense plane serving this engine (forces the lazy build)."""
        return self._dense_ready()

    # -- public query surface ---------------------------------------------------

    def best_cost(
        self, source: int, target: int, tolerance: float = 0.0
    ) -> Tuple[float, QueryStats]:
        """Best path cost from source to target, with counters.

        ``tolerance`` enables bounded-error approximation (distance algebra
        only): the returned value is the cost of a real path and is at most
        ``(1 + tolerance)`` times the optimum.  A nonzero tolerance lets the
        bound gap close earlier — often answering straight from the index —
        which trades a sliver of accuracy for another large latency factor.
        """
        if self._dense_ready() is not None:
            return self._search_dense(source, target, stop_at_feasible=False,
                                      tolerance=tolerance)
        return self._search(source, target, stop_at_feasible=False,
                            tolerance=tolerance)

    def feasible(self, source: int, target: int) -> Tuple[bool, QueryStats]:
        """Whether any source→target path exists (reachability)."""
        if self._dense_ready() is not None:
            value, stats = self._search_dense(source, target,
                                              stop_at_feasible=True)
            return value != math.inf, stats
        value, stats = self._search(source, target, stop_at_feasible=True)
        return self._semiring.is_reachable(value), stats

    def within_budget(
        self, source: int, target: int, budget: float
    ) -> Tuple[bool, QueryStats]:
        """Whether the best cost is at least as good as ``budget``.

        The budget-threshold query ("is t within distance 10 of s?", "is
        there a path of capacity ≥ 5?") is where the bound pair shines: a
        witness within budget answers *yes* and a residual beyond it answers
        *no*, both without traversal.  Only indecisive pairs fall back to a
        full search.
        """
        sr = self._semiring
        stats = QueryStats()
        graph = self._graph
        for v in (source, target):
            if not graph.has_vertex(v):
                raise QueryError(f"query endpoint {v} is not in the graph")
        if source == target:
            stats.answered_by_index = True
            return not sr.is_better(budget, sr.source_value), stats
        plane = self._dense_ready()
        if self._policy.uses_index:
            if plane is not None:
                csr = plane.csr
                bounds = DenseQueryBounds(
                    plane.tables, csr.dense_id(source), csr.dense_id(target)
                )
            else:
                assert self._index is not None
                bounds = QueryBounds(self._index, source, target)
            upper = bounds.upper_bound
            if upper != sr.unreachable and not sr.is_better(budget, upper):
                # The witness already meets the budget.
                stats.answered_by_index = True
                return True, stats
            if self._policy.uses_lower_bounds:
                lower = bounds.lower_bound()
                if sr.is_better(budget, lower):
                    # Even the optimistic bound misses the budget.
                    stats.answered_by_index = True
                    return False, stats
        if plane is not None:
            value, search_stats = self._search_dense(source, target,
                                                     stop_at_feasible=False)
        else:
            value, search_stats = self._search(source, target,
                                               stop_at_feasible=False)
        stats.merge(search_stats)
        stats.answered_by_index = search_stats.answered_by_index
        return sr.is_reachable(value) and not sr.is_better(budget, value), stats

    def best_path(
        self, source: int, target: int
    ) -> Tuple[float, Optional[list], QueryStats]:
        """Exact best cost plus a witness path (None when unreachable).

        Path mode differs from :meth:`best_cost` in two ways: pruning is
        *strict* (tied vertices survive, so at least one optimal path
        remains discoverable), and when the hub witness itself is optimal
        the path is materialized by descending the hub trees instead of
        searching.  Under the bottleneck algebra the witness shortcut is
        skipped (cost plateaus make tree descent ambiguous) and the search
        always produces the path.

        When a dense plane serves this engine the search runs on flat
        parent arrays in dense-id space (see :meth:`_path_search_dense`);
        ids translate back only when the final path is stitched.  The
        witness-shortcut fallback still descends the dict hub trees, so a
        dense path engine under an index-using policy needs its index.
        """
        if self._dense_ready() is not None:
            if self._policy.uses_index and self._index is None:
                raise ConfigError(
                    "path queries under an index-using policy need the hub "
                    "index for witness reconstruction"
                )
            return self._path_search_dense(source, target)
        return self._path_search(source, target)

    def expand(
        self,
        source: int,
        max_results: Optional[int],
        radius: Optional[float],
    ) -> list:
        """Truncated Dijkstra from ``source`` (the nearest/within verbs).

        Returns ``(vertex, distance)`` pairs in non-decreasing distance
        order, source excluded.  Over a dense plane the search runs in the
        engine's reusable workspace (O(touched) setup); without one it
        falls back to the dict-plane reference expansion.
        """
        plane = self._dense_ready()
        if plane is None:
            return expand_from_graph(self._graph, source, max_results, radius)
        if not self._graph.has_vertex(source):
            raise QueryError(f"query endpoint {source} is not in the graph")
        ws = self._workspace_for(plane.csr.num_vertices)
        return expand_from_csr(
            plane.csr, source, max_results, radius, workspace=ws
        )

    def one_to_many(
        self, source: int, targets: Sequence[int]
    ) -> Tuple[Dict[int, float], QueryStats]:
        """Best costs from ``source`` to every target, in one pass.

        Amortizes work across targets three ways: targets whose index bounds
        already coincide are answered with zero traversal; the rest share a
        single forward search; and each target *finalizes early* — as soon as
        the search frontier can no longer beat that target's hub witness,
        the witness is the answer.  Returns a dict (unreachable targets map
        to the algebra's unreachable value) and one combined stats record.

        When a dense plane serves this engine the whole routine runs on
        flat arrays (see :meth:`_one_to_many_dense`); answers and stats are
        identical, only faster.
        """
        if self._dense_ready() is not None:
            return self._one_to_many_dense(source, targets)
        graph = self._graph
        sr = self._semiring
        stats = QueryStats()
        if not graph.has_vertex(source):
            raise QueryError(f"query endpoint {source} is not in the graph")
        results: Dict[int, float] = {}
        incumbents: Dict[int, float] = {}
        target_bounds: Dict[int, QueryBounds] = {}
        unreachable = sr.unreachable
        for t in targets:
            if not graph.has_vertex(t):
                raise QueryError(f"query endpoint {t} is not in the graph")
            if t in results or t in incumbents:
                continue
            if t == source:
                results[t] = sr.source_value
                continue
            witness = unreachable
            if self._policy.uses_index:
                assert self._index is not None
                bounds = QueryBounds(self._index, source, t)
                witness = bounds.upper_bound
                if self._policy.uses_lower_bounds:
                    lower = bounds.lower_bound()
                    if lower == unreachable:
                        results[t] = unreachable
                        continue
                    if witness != unreachable and lower == witness:
                        results[t] = witness
                        continue
                    target_bounds[t] = bounds
            incumbents[t] = witness
        if not incumbents:
            stats.answered_by_index = True
            return results, stats

        remaining = set(incumbents)
        use_lb = self._policy.uses_lower_bounds
        labels = {source: sr.source_value}
        settled: set = set()
        heap = IndexedHeap()
        heap.push(source, sr.priority(sr.source_value))
        while heap and remaining:
            v, _priority = heap.pop()
            cost_v = labels[v]
            settled.add(v)
            # Finalize targets the frontier can no longer improve on.
            finished = [
                t for t in remaining
                if not sr.is_better(cost_v, incumbents[t])
            ]
            for t in finished:
                results[t] = incumbents[t]
                remaining.discard(t)
            if not remaining:
                break
            if v in remaining:
                results[v] = cost_v
                remaining.discard(v)
                if not remaining:
                    break
            if use_lb:
                # Expand only vertices that can still improve on *some*
                # remaining target's incumbent — the one-to-many form of the
                # lower-bound prune.
                useful = False
                for t in remaining:
                    if not target_bounds[t].prunable_forward(
                        v, cost_v, incumbents[t]
                    ):
                        useful = True
                        break
                if not useful:
                    stats.pruned_by_lower_bound += 1
                    continue
            stats.activations += 1
            for u, w in graph.out_items(v):
                stats.relaxations += 1
                if u in settled:
                    continue
                candidate = sr.extend(cost_v, w)
                current = labels.get(u)
                if current is None or sr.is_better(candidate, current):
                    labels[u] = candidate
                    heap.push(u, sr.priority(candidate))
                    stats.pushes += 1
                    # A better label for a live target tightens its incumbent.
                    if u in remaining and sr.is_better(candidate, incumbents[u]):
                        incumbents[u] = candidate
        for t in remaining:
            results[t] = incumbents[t]
        return results, stats

    def _one_to_many_dense(
        self, source: int, targets: Sequence[int]
    ) -> Tuple[Dict[int, float], QueryStats]:
        """Flat-array mirror of :meth:`one_to_many` over the dense plane.

        Same amortization, same answers, same stats.  The per-target dict
        bookkeeping of the reference path becomes dense-id arrays: one
        shared ``g``-label list, a ``slot`` array mapping dense ids to
        active-target positions (swap-removed as targets finalize), and
        per-hub bound math batched over the whole target set by
        :class:`DenseManyBounds` — index-closable targets drop out before
        the search starts, and the finalize-early / lower-bound prune
        checks scan flat incumbent and residual lists instead of probing
        dicts per target.  Min-plus algebra only.
        """
        plane = self._dense
        csr = plane.csr
        graph = self._graph
        stats = QueryStats()
        if not graph.has_vertex(source):
            raise QueryError(f"query endpoint {source} is not in the graph")
        inf = math.inf
        results: Dict[int, float] = {}
        seen: set = set()
        uniq: List[int] = []
        for t in targets:
            if not graph.has_vertex(t):
                raise QueryError(f"query endpoint {t} is not in the graph")
            if t in seen:
                continue
            seen.add(t)
            if t == source:
                results[t] = 0.0
                continue
            uniq.append(t)

        s = csr.dense_id(source)
        use_lb = self._policy.uses_lower_bounds
        act_t: List[int] = []        # dense ids of targets the search carries
        act_inc: List[float] = []    # their incumbents (hub witness seeds)
        bounds: Optional[DenseManyBounds] = None
        if uniq:
            t_dense = [csr.dense_id(t) for t in uniq]
            if self._policy.uses_index:
                bounds = DenseManyBounds(plane.tables, s, t_dense)
                ubs = bounds.upper_bounds()
                if use_lb:
                    lbs = bounds.lower_bounds()
                    for i, t in enumerate(uniq):
                        ub = ubs[i]
                        lb = lbs[i]
                        if lb == inf:
                            # The index proves there is no path at all.
                            results[t] = inf
                        elif ub != inf and lb == ub:
                            # Bounds coincide: the witness is the answer.
                            results[t] = ub
                        else:
                            act_t.append(t_dense[i])
                            act_inc.append(ub)
                else:
                    act_t = t_dense
                    act_inc = list(ubs)
            else:
                act_t = t_dense
                act_inc = [inf] * len(t_dense)
        if not act_t:
            stats.answered_by_index = True
            return results, stats
        act_res: List[list] = (
            bounds.residual_lists(act_t) if use_lb else []
        )

        # Snapshot the active target ids before the search swap-removes
        # them: the slot map is the one workspace array not covered by the
        # heap journal, so it is reset from this list in `finally`.
        slot_ids = list(act_t)
        ws = self._workspace_for(csr.num_vertices)
        stats.workspace_hits = 1 if ws.acquire(csr.num_vertices) else 0
        try:
            g = ws.g_f
            g[s] = 0.0
            settled = ws.settled_f
            # Dense id -> position in the active lists (-1 when not active);
            # the array form of the dict path's `remaining` membership test.
            slot = ws.ensure_slot()
            for i, td in enumerate(act_t):
                slot[td] = i
            ids = csr.ids
            indptr, indices, weights = csr.out_lists()
            heap = ws.heap_f
            heap.push(s, 0.0)
            m = len(act_t)
            while heap and m:
                v, _priority = heap.pop()
                cost_v = g[v]
                settled[v] = 1
                # Finalize targets the frontier can no longer improve on
                # (swap-removal keeps the active lists packed; the answer
                # set is order-independent, so removal order does not
                # matter).
                i = 0
                while i < m:
                    if cost_v >= act_inc[i]:
                        td = act_t[i]
                        results[ids[td]] = act_inc[i]
                        slot[td] = -1
                        m -= 1
                        if i != m:
                            act_t[i] = act_t[m]
                            act_inc[i] = act_inc[m]
                            if use_lb:
                                act_res[i] = act_res[m]
                            slot[act_t[i]] = i
                        act_t.pop()
                        act_inc.pop()
                        if use_lb:
                            act_res.pop()
                    else:
                        i += 1
                if not m:
                    break
                i = slot[v]
                if i >= 0:
                    results[ids[v]] = cost_v
                    slot[v] = -1
                    m -= 1
                    if i != m:
                        act_t[i] = act_t[m]
                        act_inc[i] = act_inc[m]
                        if use_lb:
                            act_res[i] = act_res[m]
                        slot[act_t[i]] = i
                    act_t.pop()
                    act_inc.pop()
                    if use_lb:
                        act_res.pop()
                    if not m:
                        break
                if use_lb:
                    # Expand only vertices that can still improve on *some*
                    # remaining target's incumbent.  `residual >= inc - g(v)`
                    # is the dict path's full prunable_forward decision: the
                    # clamped residual covers `need <= 0` and `inf` marks a
                    # proof of unreachability (inf >= inf prunes too).
                    useful = False
                    for i in range(m):
                        if act_res[i][v] < act_inc[i] - cost_v:
                            useful = True
                            break
                    if not useful:
                        stats.pruned_by_lower_bound += 1
                        continue
                stats.activations += 1
                for k in range(indptr[v], indptr[v + 1]):
                    u = indices[k]
                    stats.relaxations += 1
                    if settled[u]:
                        continue
                    candidate = cost_v + weights[k]
                    if candidate < g[u]:
                        g[u] = candidate
                        heap.push(u, candidate)
                        stats.pushes += 1
                        # A better label for a live target tightens its
                        # incumbent.
                        j = slot[u]
                        if j >= 0 and candidate < act_inc[j]:
                            act_inc[j] = candidate
            for i in range(m):
                results[ids[act_t[i]]] = act_inc[i]
            return results, stats
        finally:
            slot = ws.slot
            if slot is not None:
                for td in slot_ids:
                    slot[td] = -1
            stats.workspace_resets = 1
            stats.touched_reset = ws.release()

    # -- path-mode search ---------------------------------------------------------

    def _path_search(
        self, source: int, target: int
    ) -> Tuple[float, Optional[list], QueryStats]:
        graph = self._graph
        sr = self._semiring
        stats = QueryStats()
        for v in (source, target):
            if not graph.has_vertex(v):
                raise QueryError(f"query endpoint {v} is not in the graph")
        if source == target:
            stats.answered_by_index = True
            return sr.source_value, [source], stats

        unreachable = sr.unreachable
        is_distance = isinstance(sr, ShortestDistance)
        bounds: Optional[QueryBounds] = None
        incumbent = unreachable
        if self._policy.uses_index:
            assert self._index is not None
            bounds = QueryBounds(self._index, source, target)
            if self._policy.uses_lower_bounds and bounds.lower_bound() == unreachable:
                stats.answered_by_index = True
                return unreachable, None, stats
            if is_distance:
                # Seed the incumbent with the hub witness; if the search
                # never beats it, the witness path itself is reconstructed.
                incumbent = bounds.upper_bound

        labels_f = {source: sr.source_value}
        labels_b = {target: sr.source_value}
        parents_f: dict = {source: None}
        parents_b: dict = {target: None}
        settled_f: set = set()
        settled_b: set = set()
        heap_f = IndexedHeap()
        heap_b = IndexedHeap()
        heap_f.push(source, sr.priority(sr.source_value))
        heap_b.push(target, sr.priority(sr.source_value))
        use_ub = self._policy.uses_index
        use_lb = self._policy.uses_lower_bounds
        best_meet = None
        best_meet_cost = unreachable

        while heap_f and heap_b:
            if incumbent != unreachable:
                key_f, _ = heap_f.peek()
                key_b, _ = heap_b.peek()
                frontier = sr.concat(labels_f[key_f], labels_b[key_b])
                if sr.is_better(incumbent, frontier):
                    break
            forward = len(heap_f) <= len(heap_b)
            if forward:
                heap, labels, other_labels, settled, parents = (
                    heap_f, labels_f, labels_b, settled_f, parents_f,
                )
            else:
                heap, labels, other_labels, settled, parents = (
                    heap_b, labels_b, labels_f, settled_b, parents_b,
                )

            v, _priority = heap.pop()
            cost_v = labels[v]
            settled.add(v)

            other = other_labels.get(v)
            if other is not None:
                candidate = sr.concat(cost_v, other)
                # Accept ties so an optimal meet is recorded even when the
                # incumbent was seeded by an equally-good hub witness.
                if candidate == incumbent or sr.is_better(candidate, incumbent):
                    incumbent = candidate
                    best_meet = v
                    best_meet_cost = candidate

            # Strict pruning only: tied vertices may carry the optimal path.
            if use_ub and incumbent != unreachable and sr.is_better(
                incumbent, cost_v
            ):
                stats.pruned_by_upper_bound += 1
                continue
            if use_lb:
                assert bounds is not None
                prunable = (
                    bounds.prunable_forward(v, cost_v, incumbent, strict=True)
                    if forward
                    else bounds.prunable_backward(v, cost_v, incumbent,
                                                  strict=True)
                )
                if prunable:
                    stats.pruned_by_lower_bound += 1
                    continue

            stats.activations += 1
            neighbors = graph.out_items(v) if forward else graph.in_items(v)
            for u, w in neighbors:
                stats.relaxations += 1
                if u in settled:
                    continue
                candidate = sr.extend(cost_v, w)
                current = labels.get(u)
                if current is None or sr.is_better(candidate, current):
                    labels[u] = candidate
                    parents[u] = v
                    heap.push(u, sr.priority(candidate))
                    stats.pushes += 1

        if incumbent == unreachable:
            return unreachable, None, stats
        if best_meet is not None and best_meet_cost == incumbent:
            path = stitch_bidirectional(best_meet, parents_f, parents_b)
            return incumbent, path, stats
        # The hub witness remained unbeaten: materialize it from the index.
        assert self._index is not None
        path = hub_witness_path(self._index, graph, source, target)
        stats.answered_by_index = True
        return incumbent, path, stats

    def _path_search_dense(
        self, source: int, target: int
    ) -> Tuple[float, Optional[list], QueryStats]:
        """Flat-array mirror of :meth:`_path_search` over the dense plane.

        Same strict-pruning decisions, same answers, same stats — but the
        search state (``g`` labels, parents, settled marks) lives in flat
        lists indexed by dense id, and the parent chains are stitched in
        dense-id space with a single id translation at the end.  Min-plus
        algebra only.
        """
        plane = self._dense
        csr = plane.csr
        graph = self._graph
        stats = QueryStats()
        for v in (source, target):
            if not graph.has_vertex(v):
                raise QueryError(f"query endpoint {v} is not in the graph")
        if source == target:
            stats.answered_by_index = True
            return 0.0, [source], stats

        inf = math.inf
        s = csr.dense_id(source)
        t = csr.dense_id(target)
        bounds: Optional[DenseQueryBounds] = None
        incumbent = inf
        if self._policy.uses_index:
            bounds = DenseQueryBounds(plane.tables, s, t)
            if self._policy.uses_lower_bounds and bounds.lower_bound() == inf:
                stats.answered_by_index = True
                return inf, None, stats
            # Seed the incumbent with the hub witness; if the search never
            # beats it, the witness path itself is reconstructed.
            incumbent = bounds.upper_bound

        ws = self._workspace_for(csr.num_vertices)
        stats.workspace_hits = 1 if ws.acquire(csr.num_vertices) else 0
        ws.ensure_parents()
        try:
            g_f = ws.g_f
            g_b = ws.g_b
            g_f[s] = 0.0
            g_b[t] = 0.0
            parent_f = ws.parent_f
            parent_b = ws.parent_b
            settled_f = ws.settled_f
            settled_b = ws.settled_b
            heap_f = ws.heap_f
            heap_b = ws.heap_b
            heap_f.push(s, 0.0)
            heap_b.push(t, 0.0)
            indptr_f, indices_f, weights_f = csr.out_lists()
            indptr_b, indices_b, weights_b = csr.in_lists()
            use_ub = self._policy.uses_index
            use_lb = self._policy.uses_lower_bounds
            best_meet = -1
            best_meet_cost = inf

            while heap_f and heap_b:
                if incumbent != inf:
                    key_f, _pf = heap_f.peek()
                    key_b, _pb = heap_b.peek()
                    if g_f[key_f] + g_b[key_b] > incumbent:
                        break
                forward = len(heap_f) <= len(heap_b)
                if forward:
                    heap, g, g_other, settled, parent = (
                        heap_f, g_f, g_b, settled_f, parent_f,
                    )
                    indptr, indices, weights = indptr_f, indices_f, weights_f
                else:
                    heap, g, g_other, settled, parent = (
                        heap_b, g_b, g_f, settled_b, parent_b,
                    )
                    indptr, indices, weights = indptr_b, indices_b, weights_b

                v, _priority = heap.pop()
                cost_v = g[v]
                settled[v] = 1

                other = g_other[v]
                if other != inf:
                    candidate = cost_v + other
                    # Accept ties so an optimal meet is recorded even when
                    # the incumbent was seeded by an equally-good hub
                    # witness.
                    if candidate <= incumbent:
                        incumbent = candidate
                        best_meet = v
                        best_meet_cost = candidate

                # Strict pruning only: tied vertices may carry the optimal
                # path.
                if use_ub and incumbent != inf and incumbent < cost_v:
                    stats.pruned_by_upper_bound += 1
                    continue
                if use_lb:
                    prunable = (
                        bounds.prunable_forward(v, cost_v, incumbent,
                                                strict=True)
                        if forward
                        else bounds.prunable_backward(v, cost_v, incumbent,
                                                      strict=True)
                    )
                    if prunable:
                        stats.pruned_by_lower_bound += 1
                        continue

                stats.activations += 1
                for k in range(indptr[v], indptr[v + 1]):
                    u = indices[k]
                    stats.relaxations += 1
                    if settled[u]:
                        continue
                    candidate = cost_v + weights[k]
                    if candidate < g[u]:
                        g[u] = candidate
                        parent[u] = v
                        heap.push(u, candidate)
                        stats.pushes += 1

            if incumbent == inf:
                return inf, None, stats
            if best_meet >= 0 and best_meet_cost == incumbent:
                # Stitch both parent chains in dense-id space; translate to
                # caller ids only here, once per path vertex.
                ids = csr.ids
                path: List[int] = []
                node = best_meet
                while node != -1:
                    path.append(ids[node])
                    node = parent_f[node]
                path.reverse()
                node = parent_b[best_meet]
                while node != -1:
                    path.append(ids[node])
                    node = parent_b[node]
                return incumbent, path, stats
            # The hub witness remained unbeaten: materialize it from the
            # index.
            assert self._index is not None
            path = hub_witness_path(self._index, graph, source, target)
            stats.answered_by_index = True
            return incumbent, path, stats
        finally:
            stats.workspace_resets = 1
            stats.touched_reset = ws.release()

    # -- the search -------------------------------------------------------------

    def _search(
        self,
        source: int,
        target: int,
        stop_at_feasible: bool,
        tolerance: float = 0.0,
    ) -> Tuple[float, QueryStats]:
        graph = self._graph
        sr = self._semiring
        stats = QueryStats()
        if tolerance < 0:
            raise ConfigError("tolerance must be non-negative")
        if tolerance > 0 and not isinstance(sr, ShortestDistance):
            raise ConfigError(
                "approximate queries are only defined for the distance algebra"
            )
        scale = 1.0 + tolerance
        for v in (source, target):
            if not graph.has_vertex(v):
                raise QueryError(f"query endpoint {v} is not in the graph")
        if source == target:
            stats.answered_by_index = True
            return sr.source_value, stats

        unreachable = sr.unreachable
        bounds: Optional[QueryBounds] = None
        incumbent = unreachable
        if self._policy.uses_index:
            assert self._index is not None
            bounds = QueryBounds(self._index, source, target)
            incumbent = bounds.upper_bound
            if self._policy.uses_lower_bounds:
                lower = bounds.lower_bound()
                if lower == unreachable:
                    # The index proves there is no path at all.
                    stats.answered_by_index = True
                    return unreachable, stats
                if incumbent != unreachable:
                    # Bounds (approximately) coincide: the witness path is
                    # optimal, or within the requested tolerance of it.  For
                    # non-additive algebras only exact coincidence applies.
                    if isinstance(sr, ShortestDistance):
                        closed = lower * scale >= incumbent
                    else:
                        closed = lower == incumbent
                    if closed:
                        stats.answered_by_index = True
                        return incumbent, stats
            if stop_at_feasible and incumbent != unreachable:
                # Any finite witness answers a reachability query.
                stats.answered_by_index = True
                return incumbent, stats

        labels_f = {source: sr.source_value}
        labels_b = {target: sr.source_value}
        settled_f: set = set()
        settled_b: set = set()
        heap_f = IndexedHeap()
        heap_b = IndexedHeap()
        heap_f.push(source, sr.priority(sr.source_value))
        heap_b.push(target, sr.priority(sr.source_value))
        use_ub = self._policy.uses_index
        use_lb = self._policy.uses_lower_bounds
        # With a tolerance, prune/terminate against incumbent/(1+tol): any
        # path forgone then costs at least that much, so the returned
        # incumbent is within the requested factor of the optimum.
        threshold = incumbent if scale == 1.0 else incumbent / scale

        while heap_f and heap_b:
            if incumbent != unreachable:
                key_f, _ = heap_f.peek()
                key_b, _ = heap_b.peek()
                frontier = sr.concat(labels_f[key_f], labels_b[key_b])
                if not sr.is_better(frontier, threshold):
                    break
            forward = len(heap_f) <= len(heap_b)
            if forward:
                heap, labels, other_labels, settled = (
                    heap_f, labels_f, labels_b, settled_f,
                )
            else:
                heap, labels, other_labels, settled = (
                    heap_b, labels_b, labels_f, settled_b,
                )

            v, _priority = heap.pop()
            cost_v = labels[v]
            settled.add(v)

            # Meeting the other search's label yields a real s→t path.
            other = other_labels.get(v)
            if other is not None:
                candidate = sr.concat(cost_v, other)
                if sr.is_better(candidate, incumbent):
                    incumbent = candidate
                    threshold = incumbent if scale == 1.0 else incumbent / scale
                    if stop_at_feasible:
                        break

            if use_ub and incumbent != unreachable and not sr.is_better(
                cost_v, threshold
            ):
                stats.pruned_by_upper_bound += 1
                continue
            if use_lb:
                assert bounds is not None
                prunable = (
                    bounds.prunable_forward(v, cost_v, threshold)
                    if forward
                    else bounds.prunable_backward(v, cost_v, threshold)
                )
                if prunable:
                    stats.pruned_by_lower_bound += 1
                    continue

            stats.activations += 1
            neighbors = graph.out_items(v) if forward else graph.in_items(v)
            for u, w in neighbors:
                stats.relaxations += 1
                if u in settled:
                    continue
                candidate = sr.extend(cost_v, w)
                current = labels.get(u)
                if current is None or sr.is_better(candidate, current):
                    labels[u] = candidate
                    heap.push(u, sr.priority(candidate))
                    stats.pushes += 1

        return incumbent, stats

    # -- the dense search ---------------------------------------------------------

    def _search_dense(
        self,
        source: int,
        target: int,
        stop_at_feasible: bool,
        tolerance: float = 0.0,
    ) -> Tuple[float, QueryStats]:
        """Flat-array mirror of :meth:`_search` over the dense plane.

        Same decisions, same answers, same stats — but search state lives in
        flat lists indexed by dense id (``g`` labels, settled bytemaps,
        residual rows) and adjacency is walked through the CSR's cached list
        views, eliminating the per-step dict hashing of the reference path.
        Min-plus algebra only, which lets the semiring calls inline to
        ``+`` / ``<`` / ``min``.
        """
        plane = self._dense
        csr = plane.csr
        graph = self._graph
        stats = QueryStats()
        if tolerance < 0:
            raise ConfigError("tolerance must be non-negative")
        scale = 1.0 + tolerance
        for v in (source, target):
            if not graph.has_vertex(v):
                raise QueryError(f"query endpoint {v} is not in the graph")
        if source == target:
            stats.answered_by_index = True
            return 0.0, stats

        inf = math.inf
        s = csr.dense_id(source)
        t = csr.dense_id(target)
        bounds: Optional[DenseQueryBounds] = None
        incumbent = inf
        if self._policy.uses_index:
            bounds = DenseQueryBounds(plane.tables, s, t)
            incumbent = bounds.upper_bound
            if self._policy.uses_lower_bounds:
                lower = bounds.lower_bound()
                if lower == inf:
                    # The index proves there is no path at all.
                    stats.answered_by_index = True
                    return inf, stats
                if incumbent != inf and lower * scale >= incumbent:
                    stats.answered_by_index = True
                    return incumbent, stats
            if stop_at_feasible and incumbent != inf:
                # Any finite witness answers a reachability query.
                stats.answered_by_index = True
                return incumbent, stats

        # Validation and index early-outs are all behind us: claim the
        # workspace last, release it in `finally`, and the state can never
        # be claimed for a query that raises before searching nor leak from
        # one that raises mid-search.
        ws = self._workspace_for(csr.num_vertices)
        stats.workspace_hits = 1 if ws.acquire(csr.num_vertices) else 0
        try:
            g_f = ws.g_f
            g_b = ws.g_b
            g_f[s] = 0.0
            g_b[t] = 0.0
            settled_f = ws.settled_f
            settled_b = ws.settled_b
            heap_f = ws.heap_f
            heap_b = ws.heap_b
            heap_f.push(s, 0.0)
            heap_b.push(t, 0.0)
            indptr_f, indices_f, weights_f = csr.out_lists()
            indptr_b, indices_b, weights_b = csr.in_lists()
            use_ub = self._policy.uses_index
            use_lb = self._policy.uses_lower_bounds
            if use_lb:
                # Per-hub rows as flat lists plus the four per-endpoint
                # scalar columns the prune tests reference.  Probes
                # short-circuit on the first deciding hub, exactly like the
                # dict path — O(1) for the overwhelmingly common pruned
                # vertex.  Columns come from the tables' per-epoch LRU.
                rows_f, rows_b = plane.tables.rows_as_lists()
                hub_range = range(len(rows_f))
                fwd_t, bwd_t = plane.tables.columns_for(t)  # d(h,t) / d(t,h)
                fwd_s, bwd_s = plane.tables.columns_for(s)  # d(h,s) / d(s,h)
            # With a tolerance, prune/terminate against incumbent/(1+tol):
            # any path forgone then costs at least that much, so the
            # returned incumbent is within the requested factor of the
            # optimum.
            threshold = incumbent if scale == 1.0 else incumbent / scale

            while heap_f and heap_b:
                if incumbent != inf:
                    key_f, _pf = heap_f.peek()
                    key_b, _pb = heap_b.peek()
                    if g_f[key_f] + g_b[key_b] >= threshold:
                        break
                forward = len(heap_f) <= len(heap_b)
                if forward:
                    heap, g, g_other, settled = heap_f, g_f, g_b, settled_f
                    indptr, indices, weights = indptr_f, indices_f, weights_f
                else:
                    heap, g, g_other, settled = heap_b, g_b, g_f, settled_b
                    indptr, indices, weights = indptr_b, indices_b, weights_b

                v, _priority = heap.pop()
                cost_v = g[v]
                settled[v] = 1

                # Meeting the other search's label yields a real s→t path.
                other = g_other[v]
                if other != inf:
                    candidate = cost_v + other
                    if candidate < incumbent:
                        incumbent = candidate
                        threshold = (
                            incumbent if scale == 1.0 else incumbent / scale
                        )
                        if stop_at_feasible:
                            break

                if use_ub and incumbent != inf and not cost_v < threshold:
                    stats.pruned_by_upper_bound += 1
                    continue
                if use_lb:
                    need = threshold - cost_v
                    if need <= 0:
                        stats.pruned_by_lower_bound += 1
                        continue
                    if need != need:  # nan: both sides infinite
                        need = inf
                    # The dense-id transliteration of the dict path's
                    # QueryBounds._prunable_distance, per-hub short-circuit
                    # included: prune as soon as one hub's bound on the
                    # remaining distance reaches `need` (or proves the pair
                    # unreachable).
                    prunable = False
                    if forward:
                        for j in hub_range:
                            hv = rows_f[j][v]                  # d(h, v)
                            if hv != inf:
                                ht = fwd_t[j]                  # d(h, t)
                                if ht == inf or ht - hv >= need:
                                    prunable = True
                                    break
                            th = bwd_t[j]                      # d(t, h)
                            if th != inf:
                                vh = rows_b[j][v]              # d(v, h)
                                if vh == inf or vh - th >= need:
                                    prunable = True
                                    break
                    else:
                        # Bound on d(source, v): roles (source, v) as (v, t).
                        for j in hub_range:
                            hv = fwd_s[j]                      # d(h, s)
                            if hv != inf:
                                ht = rows_f[j][v]              # d(h, v)
                                if ht == inf or ht - hv >= need:
                                    prunable = True
                                    break
                            th = rows_b[j][v]                  # d(v, h)
                            if th != inf:
                                vh = bwd_s[j]                  # d(s, h)
                                if vh == inf or vh - th >= need:
                                    prunable = True
                                    break
                    if prunable:
                        stats.pruned_by_lower_bound += 1
                        continue

                stats.activations += 1
                for k in range(indptr[v], indptr[v + 1]):
                    u = indices[k]
                    stats.relaxations += 1
                    if settled[u]:
                        continue
                    candidate = cost_v + weights[k]
                    if candidate < g[u]:
                        g[u] = candidate
                        heap.push(u, candidate)
                        stats.pushes += 1

            return incumbent, stats
        finally:
            stats.workspace_resets = 1
            stats.touched_reset = ws.release()


# -- neighborhood expansion (nearest / within) --------------------------------
#
# Truncated forward Dijkstra in its two serving representations.  Both
# return (vertex, distance) pairs in non-decreasing distance order and are
# interchangeable except for tie-breaking among equidistant vertices (heap
# order differs between caller-id and dense-id keying).


def expand_from_graph(
    graph,
    source: int,
    max_results: Optional[int],
    radius: Optional[float],
) -> list:
    """Dict-plane truncated Dijkstra from ``source`` (the reference path).

    Stops after ``max_results`` results (``nearest``) or once the frontier
    passes ``radius`` (``within``); the source itself is excluded.
    """
    if not graph.has_vertex(source):
        raise QueryError(f"query endpoint {source} is not in the graph")
    heap = IndexedHeap()
    heap.push(source, 0.0)
    labels = {source: 0.0}
    settled: set = set()
    results: list = []
    while heap:
        v, dist = heap.pop()
        settled.add(v)
        if radius is not None and dist > radius:
            break
        if v != source:
            results.append((v, dist))
            if max_results is not None and len(results) >= max_results:
                break
        for u, w in graph.out_items(v):
            if u in settled:
                continue
            cand = dist + w
            if cand < labels.get(u, math.inf):
                labels[u] = cand
                heap.push(u, cand)
    return results


def expand_from_csr(
    csr,
    source: int,
    max_results: Optional[int],
    radius: Optional[float],
    workspace: Optional[SearchWorkspace] = None,
) -> list:
    """Dense-plane twin of :func:`expand_from_graph` over CSR arrays.

    Search state lives in flat lists indexed by dense id; results are
    translated back to caller-visible vertex ids on append.  ``source`` is
    a caller-visible id and must already be validated against the graph
    the CSR was built from.  Pass a :class:`SearchWorkspace` to run with
    reused (sparse-reset) state; without one the call allocates fresh O(V)
    state as before.
    """
    s = csr.dense_id(source)
    ids = csr.ids
    indptr, indices, weights = csr.out_lists()
    if workspace is not None:
        workspace.acquire(csr.num_vertices)
        try:
            heap = workspace.heap_f
            heap.push(s, 0.0)
            return _expand_csr_loop(
                workspace.g_f, workspace.settled_f, heap,
                s, ids, indptr, indices, weights, max_results, radius,
            )
        finally:
            workspace.release()
    n = csr.num_vertices
    g = [math.inf] * n
    settled = bytearray(n)
    heap = IndexedHeap()
    heap.push(s, 0.0)
    return _expand_csr_loop(
        g, settled, heap, s, ids, indptr, indices, weights,
        max_results, radius,
    )


def _expand_csr_loop(
    g, settled, heap, s, ids, indptr, indices, weights,
    max_results: Optional[int], radius: Optional[float],
) -> list:
    """The truncated-Dijkstra loop shared by both state regimes."""
    g[s] = 0.0
    results: list = []
    while heap:
        v, dist = heap.pop()
        settled[v] = 1
        if radius is not None and dist > radius:
            break
        if v != s:
            results.append((ids[v], dist))
            if max_results is not None and len(results) >= max_results:
                break
        for k in range(indptr[v], indptr[v + 1]):
            u = indices[k]
            if settled[u]:
                continue
            cand = dist + weights[k]
            if cand < g[u]:
                g[u] = cand
                heap.push(u, cand)
    return results
