"""Epoch-scoped search workspaces: per-query setup in O(touched), not O(V).

Every dense-plane verb needs the same per-search state — distance labels,
settled bytemaps, parent arrays, two indexed heaps — and before this module
existed each call rebuilt all of it from scratch: ``[inf] * n`` twice, two
``bytearray(n)``, fresh heaps.  For the index-pruned queries that dominate
real workloads (settled after touching a few dozen vertices) that O(V)
setup *was* the query.

:class:`SearchWorkspace` keeps one copy of that state alive across queries
and restores it by **sparse reset**: every array write in the search loops
is paired with a ``heap.push`` of the same dense id (seeds included), so
the heap's insertion journal is a complete record of the touched entries.
``release()`` walks the journal and resets only those — the search loop
text stays byte-for-byte identical, and steady-state per-query cost is
proportional to work done, not graph size.

The contract is acquire → search → release, with release in a ``finally``
so an exception mid-search can never leak a dirty workspace into the next
query.  A workspace is bound to one plane epoch (engine or serving worker);
rebinding onto a same-sized plane is free, resizing reallocates once.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.utils.pqueue import IndexedHeap

_INF = math.inf


class JournaledHeap(IndexedHeap):
    """An :class:`IndexedHeap` that records each key's *first* insertion.

    ``journal`` lists every key pushed since the last :meth:`clear`, exactly
    once, regardless of later decrease-keys, pops, or removals.  Because the
    search loops only ever write a label / settled mark / parent entry for a
    key they also push (or for the seed, which is pushed too), the journal
    enumerates precisely the workspace entries that need resetting.

    Heap semantics are identical to the parent class; ``push`` is re-inlined
    here so journaling costs one ``list.append`` on first insertion and
    nothing on the decrease-key path.
    """

    __slots__ = ("journal",)

    def __init__(self) -> None:
        super().__init__()
        self.journal: List[int] = []

    def push(self, key: int, priority: float) -> bool:
        heap = self._heap
        pos = self._pos
        idx = pos.get(key)
        if idx is None:
            self.journal.append(key)
            heap.append((priority, key))
            pos[key] = len(heap) - 1
            self._sift_up(len(heap) - 1)
            return True
        if priority < heap[idx][0]:
            heap[idx] = (priority, key)
            self._sift_up(idx)
            return True
        return False

    def clear(self) -> None:
        super().clear()
        self.journal.clear()


class SearchWorkspace:
    """Reusable per-search state for every dense-plane verb.

    Owns two of everything (forward / backward direction): distance label
    lists ``g_f`` / ``g_b``, settled bytemaps, lazily-allocated parent
    arrays (path search only), plus the ``slot`` active-target map used by
    the batched one-to-many verb and two :class:`JournaledHeap` instances
    whose backing storage is retained across queries.

    Lifecycle::

        ws = engine-or-worker workspace          # one per plane epoch
        reused = ws.acquire(csr.num_vertices)    # O(1) warm, O(V) on resize
        try:
            ... run the search on ws.g_f / ws.settled_f / ws.heap_f ...
        finally:
            touched = ws.release()               # sparse reset, O(touched)

    Counters (``allocations`` / ``hits`` / ``resets`` / ``touched_reset``)
    accumulate over the workspace's lifetime and surface through
    ``QueryStats`` and serving ``stats_row()`` so steady-state reuse is
    observable: a healthy serving worker shows ``allocations`` frozen at its
    epoch-rebind count while ``hits``/``resets`` track request throughput.
    """

    __slots__ = (
        "num_vertices",
        "g_f", "g_b",
        "settled_f", "settled_b",
        "parent_f", "parent_b",
        "slot",
        "heap_f", "heap_b",
        "allocations", "hits", "resets", "touched_reset",
        "in_use", "_fresh",
    )

    def __init__(self, num_vertices: int = 0) -> None:
        self.allocations = 0
        self.hits = 0
        self.resets = 0
        self.touched_reset = 0
        self.in_use = False
        self.heap_f = JournaledHeap()
        self.heap_b = JournaledHeap()
        self._allocate(num_vertices)

    # -- storage ------------------------------------------------------------

    def _allocate(self, n: int) -> None:
        """(Re)build the O(V) state for an ``n``-vertex plane."""
        self.num_vertices = n
        self.g_f = [_INF] * n
        self.g_b = [_INF] * n
        self.settled_f = bytearray(n)
        self.settled_b = bytearray(n)
        # Parent arrays and the one-to-many slot map are allocated on first
        # use so pairwise-only workloads never pay for them.
        self.parent_f: Optional[List[int]] = None
        self.parent_b: Optional[List[int]] = None
        self.slot: Optional[List[int]] = None
        self.heap_f.clear()
        self.heap_b.clear()
        if n:
            # The empty shell built by `SearchWorkspace()` before a plane is
            # known costs nothing and is not a real allocation.
            self.allocations += 1
        self._fresh = True

    def ensure_parents(self) -> None:
        """Allocate the parent arrays (path search) if absent."""
        if self.parent_f is None:
            self.parent_f = [-1] * self.num_vertices
            self.parent_b = [-1] * self.num_vertices

    def ensure_slot(self) -> List[int]:
        """Allocate the dense-id → active-target slot map if absent."""
        if self.slot is None:
            self.slot = [-1] * self.num_vertices
        return self.slot

    # -- lifecycle ----------------------------------------------------------

    def acquire(self, num_vertices: int) -> bool:
        """Claim the workspace for one search over ``num_vertices`` ids.

        Returns True when the existing O(V) state was reused (the sparse-
        reset fast path) and False when it had to be (re)built — either the
        first search after construction or a plane-size change on epoch
        rebind.
        """
        if num_vertices != self.num_vertices:
            self._allocate(num_vertices)
        reused = not self._fresh
        self._fresh = False
        if reused:
            self.hits += 1
        self.in_use = True
        return reused

    def release(self) -> int:
        """Sparse-reset everything the last search touched.

        Walks both heap journals, restoring ``g[v] = inf``, the settled
        mark, and (when allocated) the parent entry for each touched id,
        then clears the heaps in place — backing list/dict capacity is
        retained.  Returns the number of touched entries reset.  Always
        call from a ``finally`` so a raising search cannot leak state.
        """
        touched = 0
        for heap, g, settled, parent in (
            (self.heap_f, self.g_f, self.settled_f, self.parent_f),
            (self.heap_b, self.g_b, self.settled_b, self.parent_b),
        ):
            journal = heap.journal
            if journal:
                touched += len(journal)
                if parent is None:
                    for v in journal:
                        g[v] = _INF
                        settled[v] = 0
                else:
                    for v in journal:
                        g[v] = _INF
                        settled[v] = 0
                        parent[v] = -1
            heap.clear()
        self.resets += 1
        self.touched_reset += touched
        self.in_use = False
        return touched

    # -- observability ------------------------------------------------------

    def stats_row(self) -> Dict[str, int]:
        """Lifetime reuse counters, in ``stats_row()`` column form."""
        return {
            "workspace_vertices": self.num_vertices,
            "workspace_allocs": self.allocations,
            "workspace_hits": self.hits,
            "workspace_resets": self.resets,
            "touched_reset": self.touched_reset,
        }

    def is_clean(self) -> bool:
        """O(V) audit that no search state leaked (test use only)."""
        if self.heap_f or self.heap_b:
            return False
        if self.heap_f.journal or self.heap_b.journal:
            return False
        if any(x != _INF for x in self.g_f) or any(x != _INF for x in self.g_b):
            return False
        if any(self.settled_f) or any(self.settled_b):
            return False
        for parent in (self.parent_f, self.parent_b):
            if parent is not None and any(p != -1 for p in parent):
                return False
        if self.slot is not None and any(i != -1 for i in self.slot):
            return False
        return True
