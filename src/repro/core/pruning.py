"""Pruning policies — the axis the paper's key experiment sweeps.

* ``NONE`` — no index: bidirectional best-first search with meet-in-the-
  middle termination only.  Models index-free pairwise engines.
* ``UPPER_ONLY`` — the index supplies an initial upper bound on the query
  answer, so any frontier vertex whose own cost is already no better than
  the bound is discarded.  This is the paper's characterization of existing
  systems (Tripoline-style), which it measures as pruning only about half
  of the activations.
* ``UPPER_AND_LOWER`` — SGraph: in addition to the upper bound, the index
  yields a *per-vertex lower bound on the remaining cost to the target*;
  any vertex that provably cannot beat the current best is discarded.  The
  abstract reports < 1% of vertices activated under this policy.
"""

from __future__ import annotations

from enum import Enum


class PruningPolicy(Enum):
    NONE = "none"
    UPPER_ONLY = "upper-only"
    UPPER_AND_LOWER = "upper+lower"

    @property
    def uses_index(self) -> bool:
        return self is not PruningPolicy.NONE

    @property
    def uses_lower_bounds(self) -> bool:
        return self is PruningPolicy.UPPER_AND_LOWER

    @classmethod
    def parse(cls, value: "str | PruningPolicy") -> "PruningPolicy":
        """Accept a policy instance or its string value."""
        if isinstance(value, cls):
            return value
        for policy in cls:
            if policy.value == value:
                return policy
        raise ValueError(
            f"unknown pruning policy {value!r}; "
            f"expected one of {[p.value for p in cls]}"
        )
