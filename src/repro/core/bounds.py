"""Per-query bound evaluation from the hub index.

A :class:`QueryBounds` is built once per pairwise query (s, t).  It snapshots
the hub cost tables into flat per-hub rows so that the two hot operations —

* :meth:`QueryBounds.residual_forward` — optimistic bound on ``cost(v, t)``
  for a vertex the forward search is about to expand, and
* :meth:`QueryBounds.residual_backward` — optimistic bound on ``cost(s, v)``
  for the backward search —

are tight loops of dictionary lookups, no attribute traffic.

Semantics recap (see :mod:`repro.core.semiring`): an "optimistic bound" B on
a cost means the true cost can be *no better* than B.  For shortest distance
that is a classical lower bound; for bottleneck capacity it is an upper
bound.  ``residual == semiring.unreachable`` is a proof that no path exists.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import math

from repro.core.hub_index import DenseHubTables, HubIndex
from repro.core.semiring import PathSemiring, ShortestDistance


class QueryBounds:
    """Bound evaluators specialized to one (source, target) pair."""

    __slots__ = ("_semiring", "_rows", "_is_distance", "upper_bound",
                 "source", "target")

    def __init__(self, index: HubIndex, source: int, target: int) -> None:
        sr: PathSemiring = index.semiring
        self._semiring = sr
        self._is_distance = isinstance(sr, ShortestDistance)
        unreachable = sr.unreachable
        rows: List[Tuple[dict, float, dict, float]] = []
        upper = unreachable
        for h in index.hubs:
            fwd_tree = index.forward_tree(h)
            bwd_tree = index.backward_tree(h)
            fwd_tree.ensure_fresh()
            bwd_tree.ensure_fresh()
            fwd = fwd_tree.raw_cost_table()  # cost(h → ·)
            bwd = bwd_tree.raw_cost_table()  # cost(· → h)
            fwd_t = fwd.get(target, unreachable)
            bwd_t = bwd.get(target, unreachable)
            rows.append((fwd, fwd_t, bwd, bwd_t))
            to_hub = bwd.get(source, unreachable)
            if to_hub != unreachable and fwd_t != unreachable:
                witness = sr.concat(to_hub, fwd_t)
                if sr.is_better(witness, upper):
                    upper = witness
        self._rows = rows
        self.source = source
        self.target = target
        #: best witness-path cost s → h → t; the incumbent seed
        self.upper_bound = upper

    # -- bound evaluation -------------------------------------------------------

    def residual_forward(self, vertex: int) -> float:
        """Optimistic bound on ``cost(vertex, target)``."""
        sr = self._semiring
        unreachable = sr.unreachable
        best = sr.source_value  # the trivial, information-free bound
        for fwd, fwd_t, bwd, bwd_t in self._rows:
            r = sr.residual_from_hub(fwd.get(vertex, unreachable), fwd_t)
            best = sr.tighter_residual(best, r)
            if best == unreachable:
                return best
            r = sr.residual_to_hub(bwd.get(vertex, unreachable), bwd_t)
            best = sr.tighter_residual(best, r)
            if best == unreachable:
                return best
        return best

    def residual_backward(self, vertex: int) -> float:
        """Optimistic bound on ``cost(source, vertex)``."""
        sr = self._semiring
        unreachable = sr.unreachable
        best = sr.source_value
        source = self.source
        for fwd, _fwd_t, bwd, _bwd_t in self._rows:
            # Same inequalities with (source, vertex) in the (v, t) roles.
            r = sr.residual_from_hub(fwd.get(source, unreachable),
                                     fwd.get(vertex, unreachable))
            best = sr.tighter_residual(best, r)
            if best == unreachable:
                return best
            r = sr.residual_to_hub(bwd.get(source, unreachable),
                                   bwd.get(vertex, unreachable))
            best = sr.tighter_residual(best, r)
            if best == unreachable:
                return best
        return best

    # -- pruning tests (the per-activation hot path) -----------------------------

    def prunable_forward(
        self, vertex: int, cost: float, incumbent: float, strict: bool = False
    ) -> bool:
        """True when a forward-search vertex with settled ``cost`` provably
        cannot improve on ``incumbent``.

        Equivalent to ``not is_better(concat(cost, residual_forward(v)),
        incumbent)`` but short-circuits on the first hub whose bound already
        decides the test — the difference between O(k) and O(1) hub probes
        for the overwhelmingly common pruned vertex.

        With ``strict=True`` the test only prunes vertices that are provably
        *worse* than the incumbent (ties survive).  Path-mode searches need
        this so that at least one optimal path remains discoverable.
        """
        if self._is_distance:
            return self._prunable_distance(vertex, incumbent - cost,
                                           forward=True, strict=strict)
        sr = self._semiring
        optimistic = sr.concat(cost, self.residual_forward(vertex))
        if strict:
            return sr.is_better(incumbent, optimistic)
        return not sr.is_better(optimistic, incumbent)

    def prunable_backward(
        self, vertex: int, cost: float, incumbent: float, strict: bool = False
    ) -> bool:
        """Backward-search twin of :meth:`prunable_forward`."""
        if self._is_distance:
            return self._prunable_distance(vertex, incumbent - cost,
                                           forward=False, strict=strict)
        sr = self._semiring
        optimistic = sr.concat(cost, self.residual_backward(vertex))
        if strict:
            return sr.is_better(incumbent, optimistic)
        return not sr.is_better(optimistic, incumbent)

    def _prunable_distance(
        self, vertex: int, need: float, forward: bool, strict: bool = False
    ) -> bool:
        """Distance fast path: prune iff some hub's bound reaches ``need``.

        ``need = incumbent - g(v)``: the remaining distance must be strictly
        below it (non-strict mode) or strictly above it (strict mode, ties
        survive) for the vertex to matter.  ``need`` may be ``inf`` (no
        incumbent yet) or ``nan`` (incumbent and cost both infinite — treat
        as: prune only on a proof of unreachability).
        """
        if strict:
            if need < 0:
                return True
        elif need <= 0:
            return True
        if math.isnan(need):
            need = math.inf
        inf = math.inf
        if forward:
            source = None
        else:
            source = self.source
        for fwd, fwd_t, bwd, bwd_t in self._rows:
            if forward:
                hv = fwd.get(vertex, inf)   # d(h, v)
                ht = fwd_t                  # d(h, t)
                vh = bwd.get(vertex, inf)   # d(v, h)
                th = bwd_t                  # d(t, h)
            else:
                # Bound on d(source, v): roles (source, v) as (v, t).
                hv = fwd.get(source, inf)
                ht = fwd.get(vertex, inf)
                vh = bwd.get(source, inf)
                th = bwd.get(vertex, inf)
            # residual_from_hub: d(v,t) >= d(h,t) - d(h,v); unreachability
            # proof when h reaches v but not t.
            if hv != inf and (
                ht == inf or (ht - hv > need if strict else ht - hv >= need)
            ):
                return True
            # residual_to_hub: d(v,t) >= d(v,h) - d(t,h); unreachability
            # proof when t reaches h but v does not.
            if th != inf and (
                vh == inf or (vh - th > need if strict else vh - th >= need)
            ):
                return True
        return False

    def lower_bound(self) -> float:
        """Optimistic bound on the whole query ``cost(source, target)``.

        When this equals :attr:`upper_bound`, the query is answered purely
        from the index — the mechanism behind SGraph's near-zero activation
        counts.
        """
        return self.residual_forward(self.source)

    def proves_unreachable(self) -> bool:
        """True when the index alone proves no source→target path exists."""
        return self.lower_bound() == self._semiring.unreachable

    def is_exact(self) -> bool:
        """True when lower and upper bound coincide (query needs no search)."""
        lb = self.lower_bound()
        ub = self.upper_bound
        if lb == self._semiring.unreachable:
            return True
        return ub != self._semiring.unreachable and lb == ub


class DenseQueryBounds:
    """Vectorized bound evaluators over :class:`DenseHubTables`.

    The dense-plane twin of :class:`QueryBounds`, operating entirely in
    *dense-id* space and specialized to the min-plus algebra.  Per-query
    scalars (``UB``, ``LB``) are a handful of numpy ops over the stacked
    ``(k, |V|)`` tables; the per-vertex residuals the search loop probes are
    materialized once per direction as plain Python lists — O(k·|V|) in one
    vectorized pass, then O(1) per activation, replacing the dict path's
    O(k) probes per activation.

    Every decision (prune or keep, bound values) is bit-identical to
    :class:`QueryBounds` over the same frozen tables: the arithmetic is the
    same IEEE float64 chain of subtractions and max/min, merely reordered
    across hubs — and max/min over a fixed value set is order-independent.
    """

    __slots__ = ("_tables", "source", "target", "upper_bound",
                 "_lower", "_res_f", "_res_b")

    def __init__(self, tables: DenseHubTables, source: int, target: int) -> None:
        self._tables = tables
        self.source = source
        self.target = target
        #: best witness-path cost s → h → t; the incumbent seed
        self.upper_bound = tables.upper_bound(source, target)
        self._lower: Optional[float] = None
        self._res_f: Optional[list] = None
        self._res_b: Optional[list] = None

    def lower_bound(self) -> float:
        """Optimistic bound on the whole query ``d(source, target)``."""
        if self._lower is None:
            self._lower = self._tables.residual_pair(self.source, self.target)
        return self._lower

    def residual_forward_list(self) -> list:
        """Lower bounds on ``d(v, target)`` indexed by dense id."""
        if self._res_f is None:
            self._res_f = self._tables.residual_rows_to_target(
                self.target
            ).tolist()
        return self._res_f

    def residual_backward_list(self) -> list:
        """Lower bounds on ``d(source, v)`` indexed by dense id."""
        if self._res_b is None:
            self._res_b = self._tables.residual_rows_from_source(
                self.source
            ).tolist()
        return self._res_b

    # -- pruning tests (engine fallback path; the hot loop inlines these) ----

    def prunable_forward(
        self, vertex: int, cost: float, incumbent: float, strict: bool = False
    ) -> bool:
        """Dense-id twin of :meth:`QueryBounds.prunable_forward`."""
        return self._prunable(
            self.residual_forward_list(), vertex, incumbent - cost, strict
        )

    def prunable_backward(
        self, vertex: int, cost: float, incumbent: float, strict: bool = False
    ) -> bool:
        """Dense-id twin of :meth:`QueryBounds.prunable_backward`."""
        return self._prunable(
            self.residual_backward_list(), vertex, incumbent - cost, strict
        )

    @staticmethod
    def _prunable(res: list, vertex: int, need: float, strict: bool) -> bool:
        if strict:
            if need < 0:
                return True
        elif need <= 0:
            return True
        if math.isnan(need):
            need = math.inf
        r = res[vertex]
        if r == math.inf:
            # A proof of unreachability prunes regardless of strictness
            # (matches the dict path, where ``inf > inf`` never arises
            # because the unreachability branch short-circuits first).
            return True
        return r > need if strict else r >= need

    def proves_unreachable(self) -> bool:
        """True when the index alone proves no source→target path exists."""
        return self.lower_bound() == math.inf

    def is_exact(self) -> bool:
        """True when lower and upper bound coincide (query needs no search)."""
        lb = self.lower_bound()
        ub = self.upper_bound
        if lb == math.inf:
            return True
        return ub != math.inf and lb == ub


class DenseManyBounds:
    """Batched bound evaluators: one source against a whole target set.

    The one-to-many twin of :class:`DenseQueryBounds`.  Where the dict path
    builds one :class:`QueryBounds` per target — ``k`` dict-table probes
    each — this object computes every target's witness upper bound and
    residual lower bound in a single vectorized ``(k, m)`` pass over the
    stacked hub matrices.  Per-target residual rows (the per-vertex prune
    signal the shared search probes) are materialized on demand as plain
    Python lists, one O(k·|V|) vectorized pass per *surviving* target —
    index-closed targets never pay for one.

    All values are bit-identical to the per-target :class:`QueryBounds`
    arithmetic: the same IEEE float64 subtraction/max/min chains, evaluated
    across targets at once.  Dense-id space, min-plus algebra only.
    """

    __slots__ = ("_tables", "source", "targets", "_upper", "_lower")

    def __init__(
        self, tables: DenseHubTables, source: int, targets: Sequence[int]
    ) -> None:
        self._tables = tables
        self.source = source
        self.targets = list(targets)
        self._upper: Optional[list] = None
        self._lower: Optional[list] = None

    def upper_bounds(self) -> list:
        """Witness-path bound ``min_h d(s,h)+d(h,t)`` per target, in order."""
        if self._upper is None:
            self._upper = self._tables.upper_bounds_many(
                self.source, self.targets
            ).tolist()
        return self._upper

    def lower_bounds(self) -> list:
        """Residual lower bound on ``d(s, t)`` per target, in order."""
        if self._lower is None:
            self._lower = self._tables.residual_pairs_many(
                self.source, self.targets
            ).tolist()
        return self._lower

    def residual_list(self, target: int) -> list:
        """Lower bounds on ``d(v, target)`` indexed by dense id ``v``.

        The per-target row the shared search's lower-bound prune probes;
        ``residual >= incumbent - g(v)`` is exactly the dict path's
        ``QueryBounds.prunable_forward`` decision (residuals are clamped
        non-negative and ``inf`` marks a proof of unreachability, so the
        single comparison also covers the ``need <= 0`` and unreachable
        short-circuits).  Served from the tables' per-epoch row LRU (see
        :meth:`DenseHubTables.residual_list_for`); the returned list is
        shared and must not be mutated.
        """
        return self._tables.residual_list_for(target)

    def residual_lists(self, targets: Sequence[int]) -> List[list]:
        """One :meth:`residual_list` row per target.

        Each row comes from the tables' per-epoch LRU, so a steady
        workload re-querying the same target set pays the O(|V|·k)
        materialization once per target per epoch instead of once per
        call.  Rows are bit-identical to an uncached
        :meth:`DenseHubTables.residual_rows_to_target` pass (see that
        method); the returned outer list is fresh per call — the search
        swap-removes from it — but the rows themselves are shared and
        read-only.
        """
        return [self._tables.residual_list_for(t) for t in targets]
