"""Engine configuration object for the facade and the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.hub_selection import STRATEGIES
from repro.core.pruning import PruningPolicy
from repro.errors import ConfigError


@dataclass(frozen=True)
class SGraphConfig:
    """Tunable knobs of an :class:`repro.SGraph` instance.

    Attributes
    ----------
    num_hubs:
        Hub count k; more hubs mean tighter bounds but a larger index and
        higher per-update maintenance cost (E7 sweeps this).
    hub_strategy:
        One of :data:`repro.core.hub_selection.STRATEGIES`.
    policy:
        Pruning policy; the default is the paper's full technique.
    queries:
        Which query families to index: any subset of ``("distance", "hops",
        "capacity", "reliability")``.  Each family costs one index; the
        reliability family additionally requires every edge weight to be a
        probability in (0, 1].
    seed:
        Seed for randomized hub strategies.
    cache_size:
        When > 0, the facade keeps an epoch-guarded LRU of this many query
        answers (hot pairs re-asked between updates hit it; any mutation
        invalidates implicitly by advancing the epoch).  0 disables caching.
    backend:
        Which serving plane answers pairwise queries for the distance/hops
        families.  ``"dict"`` traverses the live dict-of-dict adjacency and
        probes dict hub tables everywhere (the differential-testing
        reference).  ``"dense"`` additionally serves the live facade from
        flat arrays over dense vertex ids (CSR adjacency + numpy hub
        tables), rebuilt lazily per epoch at the first query after a
        mutation.  ``"auto"`` (the default) serves published
        :class:`~repro.streaming.versioning.FrozenView` versions dense —
        where the plane is derived delta-proportionally across publishes —
        and crosses the *live* facade over to the dense plane only when the
        workload is query-heavy: at least ``AUTO_DENSE_QUERY_RATIO`` queries
        per update interval (EMA) or that many queries in a row since the
        last mutation (see :meth:`repro.SGraph.serving_backend`).  Under
        heavy churn auto therefore skips the per-epoch dense rebuild
        entirely.
    auto_probe:
        When True (and ``backend="auto"``), the facade replaces the
        compiled-in ``AUTO_DENSE_QUERY_RATIO`` crossover constant with a
        measured one: at the first publish it runs a one-shot timed probe —
        a cold dense-plane build plus a few sample queries on each plane —
        and sets the ratio to (build cost) / (per-query dict−dense gap),
        clamped to a sane range.  Machines where the dense rebuild is cheap
        relative to its per-query win cross over sooner; machines where it
        is expensive, later.  The constant remains the fallback whenever
        the probe cannot run (empty graph, no distance family).
    """

    num_hubs: int = 16
    hub_strategy: str = "degree"
    policy: PruningPolicy = PruningPolicy.UPPER_AND_LOWER
    queries: Tuple[str, ...] = ("distance",)
    seed: int = 0
    cache_size: int = 0
    backend: str = "auto"
    auto_probe: bool = False

    def __post_init__(self) -> None:
        if self.num_hubs < 1:
            raise ConfigError("num_hubs must be >= 1")
        if self.hub_strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown hub strategy {self.hub_strategy!r}; "
                f"known: {', '.join(STRATEGIES)}"
            )
        object.__setattr__(self, "policy", PruningPolicy.parse(self.policy))
        known = {"distance", "hops", "capacity", "reliability"}
        bad = set(self.queries) - known
        if bad:
            raise ConfigError(f"unknown query families: {sorted(bad)}")
        if not self.queries:
            raise ConfigError("at least one query family must be indexed")
        if self.cache_size < 0:
            raise ConfigError("cache_size must be >= 0")
        if self.backend not in ("auto", "dense", "dict"):
            raise ConfigError(
                f"unknown backend {self.backend!r}; "
                "known: auto, dense, dict"
            )
