"""Hub (landmark) selection strategies.

Bound tightness — and therefore pruning power — depends heavily on *which*
vertices serve as hubs.  On skewed graphs, shortest paths concentrate through
high-degree vertices, so degree-ranked hubs give near-exact bounds for most
pairs; on flat topologies spread-out hubs do better.  E7 sweeps these
strategies.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Dict, List

from repro.errors import ConfigError


def select_by_degree(graph, count: int) -> List[int]:
    """Top-``count`` vertices by total degree (ties broken by vertex id).

    The default strategy: on power-law graphs the hubs of the degree
    distribution are also the hubs of the shortest-path structure.
    """
    _check_count(graph, count)
    return sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))[:count]


def select_random(graph, count: int, seed: int = 0) -> List[int]:
    """Uniform random hubs — the ablation control."""
    _check_count(graph, count)
    rng = random.Random(seed)
    return sorted(rng.sample(list(graph.vertices()), count))


def select_far_apart(graph, count: int, seed: int = 0) -> List[int]:
    """Greedy farthest-point (2-approx k-center) hub spreading.

    Start from the highest-degree vertex, then repeatedly pick the vertex at
    the largest hop distance from the chosen set.  Good on large-diameter
    graphs (road networks) where degree-ranked hubs cluster in one region.
    """
    _check_count(graph, count)
    first = max(graph.vertices(), key=lambda v: (graph.degree(v), -v))
    hubs = [first]
    hop_to_set: Dict[int, int] = _bfs_hops_multi(graph, hubs)
    rng = random.Random(seed)
    while len(hubs) < count:
        best_v = None
        best_hops = -1
        for v in graph.vertices():
            if v in hubs:
                continue
            hops = hop_to_set.get(v)
            # Unreached vertices are infinitely far: prefer them, randomized
            # so one component does not monopolize the hub budget.
            if hops is None:
                hops = graph.num_vertices + rng.randrange(graph.num_vertices)
            if hops > best_hops:
                best_hops = hops
                best_v = v
        assert best_v is not None
        hubs.append(best_v)
        _bfs_hops_update(graph, best_v, hop_to_set)
    return hubs


def select_path_cover(
    graph, count: int, seed: int = 0, sample_pairs: int = 48
) -> List[int]:
    """Hubs chosen by shortest-path coverage sampling.

    Samples random vertex pairs, traces one shortest (hop) path per pair,
    and greedily picks the vertices lying on the most *uncovered* sampled
    paths — the classic landmark-selection heuristic for tight triangle-
    inequality bounds.  Falls back to degree order for any remaining slots
    (e.g. when few sampled paths exist).
    """
    _check_count(graph, count)
    rng = random.Random(seed)
    vertices = list(graph.vertices())
    paths: List[List[int]] = []
    for _ in range(sample_pairs):
        s = rng.choice(vertices)
        t = rng.choice(vertices)
        if s == t:
            continue
        path = _bfs_path(graph, s, t)
        if path and len(path) > 2:
            paths.append(path[1:-1])  # endpoints make poor general hubs
    hubs: List[int] = []
    uncovered = list(range(len(paths)))
    while len(hubs) < count and uncovered:
        frequency: Dict[int, int] = {}
        for idx in uncovered:
            for v in paths[idx]:
                if v not in hubs:
                    frequency[v] = frequency.get(v, 0) + 1
        if not frequency:
            break
        best = max(frequency.items(), key=lambda kv: (kv[1], graph.degree(kv[0]), -_order_key(kv[0])))[0]
        hubs.append(best)
        uncovered = [idx for idx in uncovered if best not in paths[idx]]
    if len(hubs) < count:
        for v in sorted(vertices, key=lambda u: (-graph.degree(u), _order_key(u))):
            if v not in hubs:
                hubs.append(v)
            if len(hubs) == count:
                break
    return hubs


def _order_key(vertex) -> int:
    """Stable tie-break usable for arbitrary hashable vertex ids."""
    return hash(vertex)


def _bfs_path(graph, source: int, target: int) -> List[int]:
    """One shortest hop path source→target, or [] if unreachable."""
    if source == target:
        return [source]
    parents = {source: None}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u, _w in graph.out_items(v):
            if u in parents:
                continue
            parents[u] = v
            if u == target:
                path = [u]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(u)
    return []


def _check_count(graph, count: int) -> None:
    if count < 1:
        raise ConfigError("hub count must be >= 1")
    if count > graph.num_vertices:
        raise ConfigError(
            f"hub count {count} exceeds vertex count {graph.num_vertices}"
        )


def _bfs_hops_multi(graph, sources: List[int]) -> Dict[int, int]:
    hops = {s: 0 for s in sources}
    queue = deque(sources)
    while queue:
        v = queue.popleft()
        for u, _w in graph.out_items(v):
            if u not in hops:
                hops[u] = hops[v] + 1
                queue.append(u)
        for u, _w in graph.in_items(v):
            if u not in hops:
                hops[u] = hops[v] + 1
                queue.append(u)
    return hops


def _bfs_hops_update(graph, source: int, hops: Dict[int, int]) -> None:
    """Lower existing hop labels given a new source (multi-source update)."""
    if hops.get(source, 1) <= 0:
        return
    hops[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        nxt = hops[v] + 1
        for u, _w in graph.out_items(v):
            if hops.get(u, nxt + 1) > nxt:
                hops[u] = nxt
                queue.append(u)
        for u, _w in graph.in_items(v):
            if hops.get(u, nxt + 1) > nxt:
                hops[u] = nxt
                queue.append(u)
    return


#: registry used by configs and the benchmark harness
STRATEGIES: Dict[str, Callable[..., List[int]]] = {
    "degree": select_by_degree,
    "random": select_random,
    "far-apart": select_far_apart,
    "path-cover": select_path_cover,
}


def select_hubs(graph, count: int, strategy: str = "degree", seed: int = 0) -> List[int]:
    """Dispatch to a named strategy from :data:`STRATEGIES`."""
    try:
        fn = STRATEGIES[strategy]
    except KeyError:
        raise ConfigError(
            f"unknown hub strategy {strategy!r}; known: {', '.join(STRATEGIES)}"
        ) from None
    if strategy == "degree":
        return fn(graph, count)
    return fn(graph, count, seed=seed)
