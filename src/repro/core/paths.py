"""Path materialization.

The engines answer *costs*; this module recovers an actual optimal path.
Two mechanisms cooperate:

* **search paths** — the path-mode bidirectional search keeps parent
  pointers on both sides and stitches them at the best meeting vertex;
* **hub witness paths** — when the answer came from the index (the hub
  witness s→h→t was optimal), no parents exist.  The witness is
  reconstructed by *greedy descent over the hub cost tables*: starting from
  the endpoint, repeatedly step to any neighbor whose stored cost plus the
  connecting edge reproduces the current vertex's stored cost.  This works
  because hub trees are exact SSSP tables, and costs strictly decrease along
  the descent (positive weights), so it terminates at the hub.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.hub_index import HubIndex
from repro.core.semiring import PathSemiring
from repro.errors import IndexStateError


def stitch_bidirectional(
    meet: int,
    parents_forward: Dict[int, Optional[int]],
    parents_backward: Dict[int, Optional[int]],
) -> List[int]:
    """Join forward and backward parent chains at the meeting vertex."""
    forward: List[int] = []
    cursor: Optional[int] = meet
    while cursor is not None:
        forward.append(cursor)
        cursor = parents_forward.get(cursor)
    forward.reverse()
    cursor = parents_backward.get(meet)
    while cursor is not None:
        forward.append(cursor)
        cursor = parents_backward.get(cursor)
    return forward


def descend_tree(
    graph,
    tree_costs: Dict[int, float],
    semiring: PathSemiring,
    endpoint: int,
    toward_source: bool,
) -> List[int]:
    """Walk an SSSP cost table from ``endpoint`` back to its tree source.

    ``toward_source=True`` walks a *forward* tree (costs from the source)
    backwards via in-neighbors; ``False`` walks a *backward* tree (costs to
    the source) forwards via out-neighbors.  Returns the vertex list from
    the tree's source to ``endpoint`` (or endpoint→source for backward
    trees, i.e. always in arc direction).
    """
    if endpoint not in tree_costs:
        raise IndexStateError(f"vertex {endpoint} unreachable in hub tree")
    chain = [endpoint]
    seen = {endpoint}
    current = endpoint
    guard = len(tree_costs) + 1
    while tree_costs[current] != semiring.source_value:
        guard -= 1
        if guard <= 0:
            raise IndexStateError("hub tree descent did not terminate")
        neighbors = (
            graph.in_items(current) if toward_source else graph.out_items(current)
        )
        for nbr, weight in neighbors:
            if nbr in seen:
                # Ties (possible under non-additive algebras) could otherwise
                # cycle; skipping revisits keeps the descent acyclic.
                continue
            base = tree_costs.get(nbr)
            if base is None:
                continue
            if semiring.extend(base, weight) == tree_costs[current]:
                chain.append(nbr)
                seen.add(nbr)
                current = nbr
                break
        else:
            raise IndexStateError(
                f"no tree predecessor found for vertex {current}"
            )
    if toward_source:
        chain.reverse()  # source … endpoint, in arc direction
    return chain


def hub_witness_path(
    index: HubIndex, graph, source: int, target: int
) -> List[int]:
    """Materialize the best s→hub→t witness path from the index.

    Picks the hub minimizing (in the semiring's sense) the witness cost,
    then descends both of its trees.  Raises :class:`IndexStateError` when
    no hub connects the pair.
    """
    sr = index.semiring
    best_hub = None
    best_cost = sr.unreachable
    for hub in index.hubs:
        to_hub = index.cost_to_hub(hub, source)
        from_hub = index.cost_from_hub(hub, target)
        if to_hub == sr.unreachable or from_hub == sr.unreachable:
            continue
        witness = sr.concat(to_hub, from_hub)
        if best_hub is None or sr.is_better(witness, best_cost):
            best_hub = hub
            best_cost = witness
    if best_hub is None:
        raise IndexStateError(
            f"no hub witness connects {source} and {target}"
        )
    bwd_tree = index.backward_tree(best_hub)
    fwd_tree = index.forward_tree(best_hub)
    bwd_tree.ensure_fresh()
    fwd_tree.ensure_fresh()
    # source → hub along the backward tree (costs *to* the hub).
    first_leg = descend_tree(
        graph, bwd_tree.raw_cost_table(), sr, source, toward_source=False
    )
    # hub → target along the forward tree.
    second_leg = descend_tree(
        graph, fwd_tree.raw_cost_table(), sr, target, toward_source=True
    )
    return first_leg + second_leg[1:]


def path_cost(graph, semiring: PathSemiring, path: List[int]) -> float:
    """Cost of an explicit path under the semiring (validation helper)."""
    if not path:
        return semiring.unreachable
    cost = semiring.source_value
    for a, b in zip(path, path[1:]):
        cost = semiring.extend(cost, graph.edge_weight(a, b))
    return cost
