"""repro — reproduction of *Achieving Sub-second Pairwise Query over
Evolving Graphs* (SGraph, ASPLOS 2023).

Public API highlights:

* :class:`SGraph` — the facade: an evolving graph with incrementally
  maintained hub indexes answering pairwise distance / hop / reachability /
  bottleneck queries through lower-bound-pruned bidirectional search.
* :class:`SGraphConfig` — hub count, hub selection strategy, pruning policy,
  indexed query families.
* :mod:`repro.graph` — the evolving-graph substrate (storage, snapshots,
  generators, dataset proxies).
* :mod:`repro.streaming` — update streams, ingestion, incremental index
  maintenance, epoch scheduling.
* :mod:`repro.baselines` — the comparison systems (plain/bidirectional
  Dijkstra, upper-bound-only pruning, full recompute, continuous streaming
  maintenance).
"""

from repro.core.config import SGraphConfig
from repro.core.pairwise import (
    ManyQueryResult,
    PairwiseQuery,
    QueryKind,
    QueryResult,
)
from repro.core.pruning import PruningPolicy
from repro.core.stats import QueryStats
from repro.core.tuning import auto_tune
from repro.errors import ReproError
from repro.graph.dynamic_graph import DynamicGraph
from repro.persist import load_sgraph, save_sgraph
from repro.sgraph import SGraph
from repro.streaming.update import EdgeUpdate, UpdateKind
from repro.streaming.versioning import FrozenView, VersionedStore

__version__ = "1.0.0"

__all__ = [
    "SGraph",
    "SGraphConfig",
    "PruningPolicy",
    "PairwiseQuery",
    "QueryKind",
    "QueryResult",
    "ManyQueryResult",
    "QueryStats",
    "DynamicGraph",
    "EdgeUpdate",
    "UpdateKind",
    "ReproError",
    "auto_tune",
    "save_sgraph",
    "load_sgraph",
    "VersionedStore",
    "FrozenView",
    "__version__",
]
