"""Deterministic fault injection for the TCP serving plane.

The serving stack's fault-tolerance story (reconnect/backoff in
:class:`~repro.serving.net.NetClient`, worker respawn in
:class:`~repro.serving.pool.WorkerPool`, graceful degradation in
:class:`~repro.serving.net.NetReader`) is only as trustworthy as the
faults it was tested against.  This module is that test substrate:

* :class:`FaultPolicy` — a seeded, *scripted* schedule of faults.  Each
  proxied connection consumes at most one plan; once the schedule is
  exhausted every later connection passes bytes through untouched, so a
  bounded retry budget is guaranteed to converge.  The policy records
  which faults actually fired (:attr:`FaultPolicy.injected`) so tests can
  assert client retry counters against the schedule exactly.
* :class:`FaultProxy` — an in-process TCP proxy interposed between a
  :class:`~repro.serving.net.NetClient` and its
  :class:`~repro.serving.net.PlaneServer`.  Faults are applied to the
  server→client byte stream (where payload frames travel): connection
  drops, mid-frame truncation, single-byte corruption, and latency
  spikes.
* :class:`Backoff` — exponential backoff with bounded jitter over an
  injectable RNG, shared by the client reconnect path.
* :class:`RespawnBreaker` — a failures-in-window circuit breaker over an
  injectable clock, guarding :class:`~repro.serving.pool.WorkerPool`
  respawn so a crash-looping worker cannot fork-bomb the writer.

Nothing here touches wall-clock state non-deterministically: the seed
fixes every fault offset, and clocks/sleeps are injectable wherever a
test wants to script time.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.errors import ConfigError

#: fault kinds a policy can schedule, in round-robin interleave order
FAULT_KINDS = ("drop", "truncate", "corrupt", "delay")


class FaultSpec(NamedTuple):
    """One scripted fault: what fires, and after how many forwarded bytes.

    ``at_bytes`` counts server→client bytes already forwarded on the
    connection when the fault triggers; ``delay_s`` only matters for
    ``kind="delay"``.
    """

    kind: str
    at_bytes: int
    delay_s: float = 0.0


class FaultPolicy:
    """A seeded, finite schedule of faults consumed one per connection.

    Build either from per-kind counts (interleaved round-robin so a retry
    storm sees a *mix* of failure modes, the adversarial case for a
    retry classifier) or from an explicit ``schedule`` of kind names.
    The byte offsets are drawn once, at construction, from
    ``random.Random(seed)`` — two policies with the same arguments inject
    byte-identical fault streams.
    """

    def __init__(self, seed: int = 0, drops: int = 0, truncations: int = 0,
                 corruptions: int = 0, delays: int = 0,
                 delay_s: float = 0.25,
                 window: Tuple[int, int] = (64, 2048),
                 schedule: Optional[List[str]] = None) -> None:
        if window[0] < 1 or window[1] <= window[0]:
            raise ConfigError("fault window must satisfy 1 <= lo < hi")
        if schedule is None:
            counts = {"drop": drops, "truncate": truncations,
                      "corrupt": corruptions, "delay": delays}
            schedule = []
            while any(counts.values()):
                for kind in FAULT_KINDS:
                    if counts[kind] > 0:
                        counts[kind] -= 1
                        schedule.append(kind)
        for kind in schedule:
            if kind not in FAULT_KINDS:
                raise ConfigError(
                    f"unknown fault kind {kind!r}; known: {FAULT_KINDS}"
                )
        rng = random.Random(seed)
        self._plans = [
            FaultSpec(kind, rng.randrange(*window),
                      delay_s if kind == "delay" else 0.0)
            for kind in schedule
        ]
        self._next = 0
        self._lock = threading.Lock()
        #: faults that actually fired, by kind (a plan whose connection
        #: carried fewer than ``at_bytes`` bytes never fires)
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    @property
    def plans(self) -> List[FaultSpec]:
        """The full scripted schedule (read-only introspection)."""
        return list(self._plans)

    def scheduled(self) -> Dict[str, int]:
        """Planned fault counts by kind (compare against ``injected``)."""
        out = {kind: 0 for kind in FAULT_KINDS}
        for plan in self._plans:
            out[plan.kind] += 1
        return out

    def disruptions(self) -> int:
        """Faults fired that kill the in-flight op (everything but delay)."""
        return sum(n for kind, n in self.injected.items() if kind != "delay")

    def plan_for_connection(self) -> Optional[FaultSpec]:
        """Consume the next plan; None once the schedule is exhausted."""
        with self._lock:
            if self._next >= len(self._plans):
                return None
            plan = self._plans[self._next]
            self._next += 1
            return plan

    def record(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] += 1


class FaultProxy:
    """In-process TCP proxy applying one :class:`FaultPolicy` plan per
    accepted connection.

    Point a reader at :attr:`address` instead of the real server; each
    connection is paired with a fresh upstream connection and two pump
    threads.  Downstream (server→client) bytes pass through the
    connection's fault plan; upstream bytes are forwarded verbatim.
    Closing either side closes both, so the server's disconnect-reap
    path sees exactly what a real network fault produces.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 policy: Optional[FaultPolicy] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._upstream = (upstream_host, upstream_port)
        self._policy = policy
        self._closed = False
        self._lock = threading.Lock()
        self._pairs: List[Tuple[socket.socket, socket.socket]] = []
        self.connections = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-fault-proxy", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        """``host:port`` readers connect to instead of the real server."""
        return f"{self.host}:{self.port}"

    @property
    def policy(self) -> Optional[FaultPolicy]:
        return self._policy

    def stats(self) -> Dict[str, object]:
        """Connections proxied and faults actually injected, by kind."""
        injected = (dict(self._policy.injected) if self._policy
                    else {kind: 0 for kind in FAULT_KINDS})
        return {"connections": self.connections, "injected": injected}

    def close(self) -> None:
        self._closed = True
        # shutdown() wakes the accept thread; close() alone would leave
        # it blocked with the kernel still completing handshakes.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._lock:
            pairs, self._pairs = self._pairs, []
        for pair in pairs:
            _close_pair(pair)

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client_conn, _addr = self._listener.accept()
            except OSError:
                return
            if self._closed:
                client_conn.close()
                return
            try:
                server_conn = socket.create_connection(self._upstream,
                                                       timeout=5.0)
                server_conn.settimeout(None)
            except OSError:
                client_conn.close()
                continue
            for conn in (client_conn, server_conn):
                try:
                    conn.setsockopt(socket.IPPROTO_TCP,
                                    socket.TCP_NODELAY, 1)
                except OSError:  # pragma: no cover
                    pass
            with self._lock:
                self.connections += 1
                self._pairs.append((client_conn, server_conn))
            plan = (self._policy.plan_for_connection()
                    if self._policy else None)
            pair = (client_conn, server_conn)
            threading.Thread(
                target=self._pump_down, args=(server_conn, client_conn,
                                              plan, pair),
                name="repro-fault-down", daemon=True,
            ).start()
            threading.Thread(
                target=self._pump_up, args=(client_conn, server_conn, pair),
                name="repro-fault-up", daemon=True,
            ).start()

    def _pump_up(self, src: socket.socket, dst: socket.socket,
                 pair) -> None:
        # client→server: verbatim copy (faults target the payload-bearing
        # downstream direction; a dropped downstream closes both anyway).
        try:
            while True:
                data = src.recv(1 << 16)
                if not data:
                    break
                dst.sendall(data)
        except OSError:
            pass
        finally:
            _close_pair(pair)

    def _pump_down(self, src: socket.socket, dst: socket.socket,
                   plan: Optional[FaultSpec], pair) -> None:
        forwarded = 0
        fired = False
        try:
            while True:
                data = src.recv(1 << 16)
                if not data:
                    break
                if plan is not None and not fired \
                        and forwarded + len(data) > plan.at_bytes:
                    fired = True
                    idx = plan.at_bytes - forwarded
                    self._policy.record(plan.kind)
                    if plan.kind == "drop":
                        # sever without forwarding this chunk at all
                        return
                    if plan.kind == "truncate":
                        # forward a prefix, then sever mid-frame
                        if idx:
                            dst.sendall(data[:idx])
                        return
                    if plan.kind == "corrupt":
                        mutated = bytearray(data)
                        mutated[idx] ^= 0xFF
                        data = bytes(mutated)
                    elif plan.kind == "delay":
                        time.sleep(plan.delay_s)
                forwarded += len(data)
                dst.sendall(data)
        except OSError:
            pass
        finally:
            _close_pair(pair)


def _close_pair(pair) -> None:
    # shutdown() before close(): the peer pump thread may be blocked in
    # recv() on the other socket, and close() alone neither wakes it nor
    # sends FIN — the connection would linger ESTABLISHED and the proxied
    # client would wait out its full op deadline instead of seeing EOF.
    for conn in pair:
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# Retry/respawn primitives (shared by net.py and pool.py)
# ---------------------------------------------------------------------------


class Backoff:
    """Exponential backoff with bounded jitter over an injectable RNG.

    ``delay(attempt)`` for attempt 0, 1, 2, … returns
    ``min(maximum, initial * factor**attempt)`` scaled by a jitter factor
    uniform in ``[1 - jitter, 1 + jitter]``.  Jitter decorrelates a fleet
    of readers reconnecting to one restarted server (the thundering-herd
    case); determinism comes from seeding ``rng``.
    """

    def __init__(self, initial: float = 0.05, maximum: float = 2.0,
                 factor: float = 2.0, jitter: float = 0.2,
                 rng: Optional[random.Random] = None) -> None:
        if initial <= 0 or maximum < initial:
            raise ConfigError("backoff needs 0 < initial <= maximum")
        if not 0.0 <= jitter < 1.0:
            raise ConfigError("backoff jitter must be in [0, 1)")
        self.initial = initial
        self.maximum = maximum
        self.factor = factor
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()

    def delay(self, attempt: int) -> float:
        base = min(self.maximum, self.initial * (self.factor ** attempt))
        if not self.jitter:
            return base
        return base * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))


class RespawnBreaker:
    """Failures-in-window circuit breaker guarding worker respawn.

    Each observed failure is :meth:`record`\\ ed; :meth:`allow` answers
    whether another respawn may proceed — False once ``max_failures``
    have landed inside the trailing ``window_s`` seconds.  The breaker
    re-closes by itself when failures age out of the window, so a burst
    of crashes degrades the pool only until the storm passes.  The clock
    is injectable for deterministic tests.
    """

    def __init__(self, max_failures: int = 5, window_s: float = 30.0,
                 clock=time.monotonic) -> None:
        if max_failures < 1:
            raise ConfigError("max_failures must be >= 1")
        if window_s <= 0:
            raise ConfigError("window_s must be > 0")
        self.max_failures = max_failures
        self.window_s = window_s
        self._clock = clock
        self._events: List[float] = []
        self._lock = threading.Lock()
        self.trips = 0

    def _prune(self) -> None:
        cutoff = self._clock() - self.window_s
        while self._events and self._events[0] <= cutoff:
            self._events.pop(0)

    def allow(self) -> bool:
        with self._lock:
            self._prune()
            allowed = len(self._events) < self.max_failures
            if not allowed:
                self.trips += 1
            return allowed

    def record(self) -> None:
        with self._lock:
            self._prune()
            self._events.append(self._clock())

    @property
    def open(self) -> bool:
        """Whether the breaker is currently refusing respawns."""
        with self._lock:
            self._prune()
            return len(self._events) >= self.max_failures

    def failures_in_window(self) -> int:
        with self._lock:
            self._prune()
            return len(self._events)
