"""Multiprocess serving over published dense planes.

A published :class:`~repro.streaming.versioning.FrozenView`'s dense plane
is nothing but flat numpy buffers — CSR ``indptr/indices/weights``, the id
map, and the stacked hub cost matrices.  This package ships those buffers
to N reader processes that run the bit-identical ``_search_dense`` hot
path against them while one writer process keeps ingesting and
publishing.  Three layers:

* :mod:`repro.serving.codec` — the byte format: one self-describing blob
  per plane (embedded manifest, 64-byte-aligned buffers), decode cost
  O(buffers) not O(V+E).  Both transports speak it.
* :mod:`repro.serving.registry` — the epoch-handoff protocol: a slot table
  with per-plane refcounts and FREE/LIVE/RETIRED states; the writer
  registers fully materialized planes and bumps a generation counter,
  readers acquire/release by slot and dead readers are reaped.
  :class:`~repro.serving.epoch.EpochBoard` lays the table into shared
  memory; :class:`~repro.serving.registry.LocalRegistry` keeps it behind a
  thread lock for the TCP server.
* :mod:`repro.serving.transport` — where the bytes live:
  :class:`~repro.serving.transport.ShmTransport` encodes each plane into a
  named segment readers map zero-copy
  (:mod:`repro.serving.shm_plane`); :class:`~repro.serving.net.NetTransport`
  announces each publish over length-prefixed TCP and remote readers fetch
  the payload once into a digest-verified local cache
  (fetch-on-publish).

:mod:`repro.serving.pool` ties it together: :class:`WorkerPool` /
:class:`ServeSession` fan requests across reader processes generically
over the transport, surfaced as ``SGraph.serve(workers=N, transport=...)``
and the ``repro serve`` / ``repro attach`` CLI subcommands.

:mod:`repro.serving.faults` is the fault-tolerance substrate: the
deterministic :class:`~repro.serving.faults.FaultPolicy` /
:class:`~repro.serving.faults.FaultProxy` injection harness the retry
paths are tested against, plus the :class:`~repro.serving.faults.Backoff`
and :class:`~repro.serving.faults.RespawnBreaker` primitives the client
reconnect and worker-respawn layers share.
"""

from repro.serving.faults import (
    Backoff,
    FaultPolicy,
    FaultProxy,
    RespawnBreaker,
)
from repro.serving.codec import (
    CHUNK_BYTES,
    PlaneGraph,
    apply_plane_delta,
    decode_plane,
    diff_manifests,
    encode_plane,
    encode_plane_delta,
    materialize_plane,
    plane_digest,
)
from repro.serving.epoch import EpochBoard
from repro.serving.pool import ServeSession, WorkerPool
from repro.serving.registry import EpochRegistry, LocalRegistry
from repro.serving.shm_plane import (
    ShmPlane,
    leaked_segments,
    shm_available,
)
from repro.serving.transport import (
    PlaneTransport,
    ShmTransport,
    make_transport,
)

__all__ = [
    "Backoff",
    "CHUNK_BYTES",
    "EpochBoard",
    "EpochRegistry",
    "FaultPolicy",
    "FaultProxy",
    "LocalRegistry",
    "RespawnBreaker",
    "PlaneGraph",
    "PlaneTransport",
    "ServeSession",
    "ShmPlane",
    "ShmTransport",
    "WorkerPool",
    "apply_plane_delta",
    "decode_plane",
    "diff_manifests",
    "encode_plane",
    "encode_plane_delta",
    "leaked_segments",
    "make_transport",
    "materialize_plane",
    "plane_digest",
    "shm_available",
]
