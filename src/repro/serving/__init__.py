"""Multiprocess serving over shared frozen arrays.

A published :class:`~repro.streaming.versioning.FrozenView`'s dense plane
is nothing but flat numpy buffers — CSR ``indptr/indices/weights``, the id
map, and the stacked hub cost matrices.  This package lays those buffers
into named ``multiprocessing.shared_memory`` segments so N reader processes
can *attach* (map, not copy) the newest published epoch and run the
bit-identical ``_search_dense`` hot path against it, while one writer
process keeps ingesting and publishing:

* :mod:`repro.serving.shm_plane` — plane (de)serialization: one segment per
  epoch, self-describing via an embedded manifest (dtype/shape/offset per
  buffer), attach cost O(buffers) not O(V+E);
* :mod:`repro.serving.epoch` — the handoff protocol: a tiny control segment
  holding a slot table with per-plane refcounts; the writer registers fully
  written segments and bumps a generation counter, readers re-attach by
  name and the last detacher of a retired epoch unlinks it;
* :mod:`repro.serving.pool` — :class:`WorkerPool` / :class:`ServeSession`:
  request fan-out across reader processes, surfaced as
  ``SGraph.serve(workers=N)`` and the ``repro serve`` CLI subcommand.
"""

from repro.serving.epoch import EpochBoard
from repro.serving.pool import ServeSession, WorkerPool
from repro.serving.shm_plane import (
    PlaneGraph,
    ShmPlane,
    leaked_segments,
    shm_available,
)

__all__ = [
    "EpochBoard",
    "PlaneGraph",
    "ServeSession",
    "ShmPlane",
    "WorkerPool",
    "leaked_segments",
    "shm_available",
]
