"""Reader-process fan-out: :class:`WorkerPool` and :class:`ServeSession`.

The writer/readers split the paper's serving story needs: one process owns
the live :class:`~repro.SGraph` and keeps ingesting; N reader processes
acquire the newest published plane through a
:class:`~repro.serving.transport.PlaneTransport` and answer
``distance / distance_many / nearest / within`` requests with the
bit-identical ``_search_dense`` hot path.  Requests and responses travel
over two multiprocessing queues; per-query payloads are a few scalars plus
a :class:`~repro.core.stats.QueryStats` — graphs are never pickled.

Workers poll the registry generation between requests: stale readers
release their lease (returning the refcount, possibly evicting a retired
plane) and acquire the newest one.  A request already being answered
keeps using the plane it started on — in-flight queries finish on their
starting epoch by construction.

The pool is generic over the transport: each worker receives a picklable
:class:`~repro.serving.transport.ReaderSpec` and connects inside its own
process — a shm spec attaches the epoch board and maps segments, a tcp
spec opens a socket and caches fetched planes.  The request loop never
knows which.

:class:`ServeSession` is the writer-side facade tying it together: it owns
a :class:`~repro.streaming.versioning.VersionedStore`, publishes every new
epoch through the transport, and exposes blocking query helpers over the
pool.  ``SGraph.serve(workers=N, transport=..., delta=...)`` constructs
one; ``delta=True`` (TCP only) makes each reader fetch chunk-addressed
O(Δ) deltas against its cached planes instead of full payloads, and
``stats_row()`` reports the delta/full fetch counters and byte totals.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import os
import queue as queue_mod
import time
from multiprocessing.connection import wait as _mp_wait
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigError, QueryError
from repro.serving.transport import PlaneTransport, make_transport

#: queries bundled per pool message — amortizes the ~100µs queue round-trip
#: across enough sub-millisecond searches to keep workers compute-bound.
#: Override per session with ``SGraph.serve(chunk=...)``.
DEFAULT_CHUNK = 32


class Response(NamedTuple):
    """One answered (or failed) request."""

    req_id: int
    worker_id: int
    epoch: Optional[int]
    ok: bool
    payload: object


def _dispatch(engine, plane, verb: str, payload):
    if verb == "distance":
        source, target, tolerance = payload
        return engine.best_cost(source, target, tolerance=tolerance)
    if verb == "distance_batch":
        return [engine.best_cost(s, t) for s, t in payload]
    if verb == "distance_many":
        source, targets = payload
        return engine.one_to_many(source, list(targets))
    if verb in ("nearest", "within"):
        source, arg = payload
        if verb == "nearest":
            return engine.expand(source, arg, None)
        return engine.expand(source, None, arg)
    if verb == "workspace_stats":
        return engine.workspace_stats()
    raise QueryError(f"unknown verb {verb!r}")


def _worker_main(worker_id: int, spec, requests, responses,
                 policy_value: str) -> None:
    """One reader process: acquire newest plane, drain requests forever.

    ``requests`` and ``responses`` are this worker's *private* queues: a
    shared request queue would leave its reader lock held forever if a
    sibling were SIGKILLed mid-``get``, and a shared response queue does
    the symmetric thing — the queue's feeder thread holds its write-lock
    (a cross-process semaphore) around ``send_bytes``, so a SIGKILL
    landing inside that window leaves the lock acquired forever and every
    survivor's feeder parks in ``wacquire()`` with answers it can never
    deliver.  The writer round-robins over the private queues of workers
    it still believes alive and multiplexes their response pipes.
    """
    from repro.core.engine import PairwiseEngine
    from repro.core.workspace import SearchWorkspace
    from repro.serving.codec import PlaneGraph

    client = spec.connect(worker_id)
    held: Dict[str, Optional[tuple]] = {"entry": None}
    # Degradation bookkeeping: when the transport cannot reach the writer
    # (server down, retries exhausted) a worker that already holds a plane
    # keeps answering from it instead of failing the request.
    state = {"stale": False, "stale_serves": 0}
    # One workspace for the worker's whole life: each epoch's fresh engine
    # adopts it, so the request loop re-allocates O(V) search state only
    # when an epoch actually changes the plane's vertex count.
    workspace = SearchWorkspace()

    def detach() -> None:
        entry = held["entry"]
        held["entry"] = None
        if entry is None:
            return
        lease = entry[0]
        # The lease's release path may need every view into the plane
        # dropped first (shm unmaps); clear our references before calling.
        entry = None
        lease.release()

    # Finalizer for exits that skip the normal loop teardown (unhandled
    # signals short of SIGKILL, interpreter shutdown): the refcount must be
    # returned or the writer would wait on a ghost reader.  SIGKILL itself
    # is covered by the writer-side reap (transport.release_reader).
    atexit.register(detach)

    def current() -> Optional[tuple]:
        entry = held["entry"]
        try:
            if (entry is not None
                    and entry[0].generation == client.generation()):
                state["stale"] = False
                return entry
            lease = client.acquire()
        except QueryError:
            # Writer unreachable: serve the held plane, stale but live.
            if entry is not None:
                state["stale"] = True
                state["stale_serves"] += 1
                return entry
            raise
        if lease is None:
            # Writer reachable but bare — a restarted server that has not
            # republished yet.  Keep the held plane in service.
            if entry is not None:
                state["stale"] = True
                state["stale_serves"] += 1
                return entry
            return None
        # Acquire-before-detach: the new lease is pinned before the old
        # plane's views are dropped, so there is never a served gap.
        entry = None
        detach()
        plane = lease.plane
        engine = PairwiseEngine(
            PlaneGraph(plane.csr), policy=policy_value, dense=plane,
            workspace=workspace,
        )
        entry = (lease, engine, plane)
        held["entry"] = entry
        state["stale"] = False
        return entry

    try:
        while True:
            req = requests.get()
            if req is None:
                break
            req_id, verb, payload = req
            try:
                if verb == "client_stats":
                    stats = dict(getattr(client, "transfer", None) or {})
                    stats["stale_serves"] = state["stale_serves"]
                    stats["stale"] = state["stale"]
                    responses.put(Response(
                        req_id, worker_id, None, True, stats,
                    ))
                    continue
                entry = current()
                if entry is None:
                    raise QueryError("no epoch has been published yet")
                result = _dispatch(entry[1], entry[2], verb, payload)
                responses.put(Response(
                    req_id, worker_id, entry[0].epoch, True, result,
                ))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                responses.put(Response(
                    req_id, worker_id, None, False,
                    f"{type(exc).__name__}: {exc}",
                ))
            finally:
                # Keep held["entry"] the only reference to the acquired
                # plane between requests, so detach() can actually release.
                entry = None
    finally:
        detach()
        client.close()


class WorkerPool:
    """N reader processes fed from private request queues.

    Crashed workers can be :meth:`respawn`\\ ed — re-forked from the same
    spec onto whatever epoch is current, with *fresh* request and response
    queues (a SIGKILL mid-``get`` or mid-``put`` can leave a partial
    pickle frame in the old pipe, desyncing any future reader of it).  A
    :class:`~repro.serving.faults.RespawnBreaker` bounds the respawn rate:
    once too many crashes land inside its window the pool degrades to the
    survivors until the storm ages out.
    """

    def __init__(self, ctx, workers: int, spec, policy_value: str,
                 breaker=None) -> None:
        from repro.serving.faults import RespawnBreaker

        if workers < 1:
            raise ConfigError("workers must be >= 1")
        self._ctx = ctx
        self._spec = spec
        self._policy_value = policy_value
        self._breaker = breaker if breaker is not None else RespawnBreaker()
        self._requests = [ctx.Queue() for _ in range(workers)]
        self._responses = [ctx.Queue() for _ in range(workers)]
        self._ids = itertools.count()
        self._rr = itertools.count()  # round-robin cursor over alive workers
        #: completed respawns over the pool's lifetime
        self.respawns = 0
        # per-worker fork count; a request remembers the incarnation it
        # was submitted to so lost requests are detectable after respawn
        self._incarnations = [0] * workers
        # crashes already charged to the breaker: (worker, incarnation)
        self._charged: set = set()
        # req_id -> (worker, incarnation) for unanswered requests
        self._inflight: Dict[int, Tuple[int, int]] = {}
        self._procs = [self._fork(i) for i in range(workers)]
        for proc in self._procs:
            proc.start()

    def _fork(self, worker_id: int):
        suffix = (f"-r{self._incarnations[worker_id]}"
                  if self._incarnations[worker_id] else "")
        return self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self._spec, self._requests[worker_id],
                  self._responses[worker_id], self._policy_value),
            daemon=True,
            name=f"repro-serve-{worker_id}{suffix}",
        )

    @property
    def workers(self) -> int:
        return len(self._procs)

    @property
    def breaker(self):
        """The respawn circuit breaker (stats and tests)."""
        return self._breaker

    def alive(self) -> List[int]:
        return [i for i, p in enumerate(self._procs) if p.is_alive()]

    def dead(self) -> List[int]:
        return [i for i, p in enumerate(self._procs) if not p.is_alive()]

    def respawn(self) -> List[int]:
        """Re-fork dead workers onto the current epoch; returns their ids.

        Each crash is charged to the breaker exactly once; while the
        breaker is open dead workers stay dead (the pool serves from the
        survivors) and are picked up by a later call once the crash burst
        ages out of the window.
        """
        revived: List[int] = []
        for worker_id, proc in enumerate(self._procs):
            if proc.is_alive():
                continue
            crash = (worker_id, self._incarnations[worker_id])
            if crash not in self._charged:
                self._charged.add(crash)
                self._breaker.record()
            if not self._breaker.allow():
                continue
            proc.join(timeout=1)
            self._requests[worker_id] = self._ctx.Queue()
            # The response queue is replaced too: the crash may have left a
            # partial pickle frame in the old pipe, and any complete-but-
            # unread answers in it belong to the dead incarnation anyway
            # (request_lost flags their requests for resubmission).
            self._responses[worker_id] = self._ctx.Queue()
            self._incarnations[worker_id] += 1
            self._procs[worker_id] = self._fork(worker_id)
            self._procs[worker_id].start()
            self.respawns += 1
            revived.append(worker_id)
        return revived

    def submit(self, verb: str, payload) -> int:
        """Enqueue one request on an alive worker; returns its id."""
        alive = self.alive()
        if not alive:
            raise QueryError("all serving workers are dead")
        target = alive[next(self._rr) % len(alive)]
        return self.submit_to(target, verb, payload)

    def submit_to(self, worker_id: int, verb: str, payload) -> int:
        """Enqueue one request on a *specific* worker; returns its id.

        For per-worker introspection verbs (``workspace_stats``) that the
        round-robin cursor cannot target.  The worker must be alive.
        """
        if not self._procs[worker_id].is_alive():
            raise QueryError(f"serving worker {worker_id} is dead")
        req_id = next(self._ids)
        self._inflight[req_id] = (worker_id, self._incarnations[worker_id])
        self._requests[worker_id].put((req_id, verb, payload))
        return req_id

    def request_lost(self, req_id: int) -> bool:
        """Whether an unanswered request can no longer be answered.

        True when the worker it was enqueued on has died or been
        respawned since (a fresh incarnation never sees the old queue).
        """
        meta = self._inflight.get(req_id)
        if meta is None:
            return False  # already answered
        worker_id, incarnation = meta
        return (self._incarnations[worker_id] != incarnation
                or not self._procs[worker_id].is_alive())

    def forget(self, req_id: int) -> None:
        """Drop in-flight bookkeeping for a request being abandoned."""
        self._inflight.pop(req_id, None)

    def gather(self, req_ids: Sequence[int],
               timeout: Optional[float] = None) -> Dict[int, Response]:
        """Collect responses for ``req_ids`` (best effort under a timeout).

        Returns a dict keyed by request id; with a timeout the result may
        be missing entries whose worker died mid-request — callers decide
        whether to resubmit (reads are idempotent) or raise.
        """
        wanted = set(req_ids)
        got: Dict[int, Response] = {}
        deadline = None if timeout is None else time.monotonic() + timeout
        while wanted:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
            # Multiplex the alive workers' private response pipes.  Dead
            # workers are skipped on purpose: their pipe may hold a partial
            # pickle frame (SIGKILL mid-write) that would block a reader
            # forever; respawn discards the queue and request_lost resends.
            live = [(i, self._responses[i])
                    for i, proc in enumerate(self._procs) if proc.is_alive()]
            if not live:
                break
            ready = _mp_wait([q._reader for _i, q in live], timeout=remaining)
            if not ready:
                break
            for worker_id, q in live:
                if q._reader not in ready:
                    continue
                if not self._procs[worker_id].is_alive():
                    continue
                while True:
                    try:
                        resp = q.get_nowait()
                    except (queue_mod.Empty, EOFError, OSError):
                        break
                    self._inflight.pop(resp.req_id, None)
                    if resp.req_id in wanted:
                        wanted.discard(resp.req_id)
                        got[resp.req_id] = resp
        return got

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker (crash-injection hook for tests)."""
        proc = self._procs[worker_id]
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5)

    def close(self, timeout: float = 5.0) -> None:
        for i, proc in enumerate(self._procs):
            if proc.is_alive():
                self._requests[i].put(None)
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
        for q in self._requests + self._responses:
            q.close()
            q.cancel_join_thread()


class ServeSession:
    """Writer-side handle on a running multiprocess serving deployment.

    Owns the version store, the plane transport, and the worker pool.  Use
    as a context manager (or call :meth:`close`); an ``atexit`` hook
    backstops sessions the caller forgot, so no segment or socket outlives
    the writer process.
    """

    def __init__(self, sgraph, workers: int = 2, store=None,
                 capacity: int = 4, name_prefix: Optional[str] = None,
                 transport: str = "shm", chunk: Optional[int] = None,
                 delta: bool = False, respawn: bool = True,
                 respawn_limit: int = 5,
                 respawn_window: float = 30.0,
                 **transport_options) -> None:
        from repro.serving.faults import RespawnBreaker
        from repro.streaming.versioning import VersionedStore

        config = sgraph.config
        if "distance" not in config.queries:
            raise ConfigError(
                "serving needs the 'distance' family in SGraphConfig.queries"
            )
        if config.backend == "dict":
            raise ConfigError(
                "serving shares the dense plane; backend='dict' publishes none"
            )
        if chunk is None:
            chunk = DEFAULT_CHUNK
        if chunk < 1:
            raise ConfigError("chunk must be >= 1")
        if delta:
            if transport != "tcp":
                raise ConfigError(
                    "delta fetches need a byte-moving transport: "
                    "serve(delta=True) requires transport='tcp' "
                    "(shm readers already share the writer's bytes)"
                )
            transport_options["delta"] = True
        self._delta = bool(delta)
        self._sgraph = sgraph
        self._store = store if store is not None else VersionedStore(
            sgraph, capacity=capacity
        )
        self._prefix = name_prefix or (
            f"rp{os.getpid():x}-{os.urandom(3).hex()}-"
        )
        self._chunk = chunk
        self._closed = False
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        self._transport = make_transport(
            transport, self._prefix, workers, ctx, **transport_options
        )
        self._respawn = bool(respawn)
        self._pool = WorkerPool(
            ctx, workers, self._transport.reader_spec(),
            policy_value=config.policy.value,
            breaker=RespawnBreaker(max_failures=respawn_limit,
                                   window_s=respawn_window),
        )
        # replay_latest covers stores whose current epoch was already
        # published before this session subscribed — the callback fires
        # immediately so the readers still get a plane.
        self._unsubscribe = self._store.subscribe(
            self._on_publish, replay_latest=True
        )
        atexit.register(self.close)
        self.publish()

    # -- introspection ------------------------------------------------------

    @property
    def prefix(self) -> str:
        """Name prefix of every resource this session creates."""
        return self._prefix

    @property
    def store(self):
        return self._store

    @property
    def transport(self) -> PlaneTransport:
        return self._transport

    @property
    def board(self):
        """The transport's epoch registry (named for the shm board)."""
        return self._transport.registry

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def chunk(self) -> int:
        """Queries bundled per pool message in batched verbs."""
        return self._chunk

    @property
    def delta(self) -> bool:
        """Whether TCP readers fetch chunk-addressed deltas per epoch."""
        return self._delta

    def stats_row(self) -> Dict[str, object]:
        """One observability row: transport, fan-out, registry state,
        payload movement (delta vs full fetches, actual vs all-full bytes
        — the savings ratio is ``1 - bytes_sent / bytes_full``), and the
        pool's aggregated workspace reuse counters (a healthy steady state
        shows ``workspace_allocs`` frozen at the epoch-rebind count while
        ``workspace_resets`` tracks request throughput)."""
        registry = self._transport.registry
        row = {
            "transport": self._transport.kind,
            "endpoint": self._transport.describe(),
            "workers": self._pool.workers,
            "alive": len(self._pool.alive()),
            "chunk": self._chunk,
            "delta": self._delta,
            "epoch": registry.current_epoch(),
            "generation": registry.generation(),
            "slots_held": len(registry.slots()),
            "delta_fetches": 0,
            "full_fetches": 0,
            "bytes_sent": 0,
            "bytes_full": 0,
            "workspace_allocs": 0,
            "workspace_hits": 0,
            "workspace_resets": 0,
            "touched_reset": 0,
            "respawns": self._pool.respawns,
            "breaker_open": self._pool.breaker.open,
            "breaker_trips": self._pool.breaker.trips,
            "retries": 0,
            "reconnects": 0,
            "server_restarts": 0,
            "peer_closed": 0,
            "corrupt_frames": 0,
            "deadline_exceeded": 0,
            "stale_serves": 0,
        }
        row.update(self._transport.transfer_stats())
        for cs_row in self.client_stats():
            for key in ("retries", "reconnects", "server_restarts",
                        "peer_closed", "corrupt_frames",
                        "deadline_exceeded", "stale_serves"):
                row[key] += cs_row.get(key, 0)
        for ws_row in self.workspace_stats():
            for key in ("workspace_allocs", "workspace_hits",
                        "workspace_resets", "touched_reset"):
                row[key] += ws_row[key]
        return row

    def client_stats(self, timeout: float = 5.0) -> List[Dict[str, object]]:
        """Per-worker transport fault counters and staleness state.

        One row per alive worker: the reader client's ``transfer``
        accounting (retries, reconnects, server restarts observed, frames
        rejected) plus the worker's ``stale``/``stale_serves`` degradation
        markers.  Workers that cannot answer are skipped.
        """
        rows: List[Dict[str, object]] = []
        for worker_id in self._pool.alive():
            try:
                req_id = self._pool.submit_to(worker_id, "client_stats",
                                              None)
            except QueryError:
                continue
            resp = self._pool.gather([req_id], timeout=timeout).get(req_id)
            if resp is None or not resp.ok:
                continue
            cs_row = dict(resp.payload)
            cs_row["worker"] = worker_id
            rows.append(cs_row)
        return rows

    def workspace_stats(self,
                        timeout: float = 5.0) -> List[Dict[str, object]]:
        """Per-worker search-workspace reuse counters.

        One row per alive worker (plus its id and current epoch).  This is
        the observable form of the zero-O(V)-allocations-per-request
        guarantee: across any number of requests on a fixed-size plane,
        ``workspace_allocs`` only moves when an epoch rebind changes the
        vertex count.  Workers that cannot answer (no published epoch yet,
        or died mid-probe) are skipped.
        """
        rows: List[Dict[str, object]] = []
        for worker_id in self._pool.alive():
            try:
                req_id = self._pool.submit_to(
                    worker_id, "workspace_stats", None
                )
            except QueryError:
                continue
            resp = self._pool.gather([req_id], timeout=timeout).get(req_id)
            if resp is None or not resp.ok:
                continue
            ws_row = dict(resp.payload)
            ws_row["worker"] = worker_id
            ws_row["epoch"] = resp.epoch
            rows.append(ws_row)
        return rows

    def __enter__(self) -> "ServeSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- publishing ---------------------------------------------------------

    def publish(self, label: Optional[str] = None):
        """Publish the facade's current epoch and hand it to the readers.

        Delegates to :meth:`VersionedStore.publish`; the store's publish
        hook encodes the new plane through the transport (same-epoch
        republish is a no-op end to end).
        """
        return self._store.publish(label)

    def _on_publish(self, view) -> None:
        if self._closed:
            return
        self._transport.publish_plane(view.dense_plane("distance"), view.epoch)

    # -- queries ------------------------------------------------------------

    def _pump(self, verb: str, payloads: Sequence,
              timeout: Optional[float] = None) -> List[Response]:
        """Fan one request per payload across the pool until all answer.

        The resubmission loop that makes pool queries survive worker
        crashes: requests lost to a dead worker are resubmitted — after
        reaping its refcount and respawning it — as many times as it
        takes, until every payload is answered, the deadline passes, or
        no worker is left alive.  Pure reads are idempotent, so a lost
        slice re-runs with no visible effect beyond latency.
        """
        if self._pool.dead():
            self.reap()
        deadline = None if timeout is None else time.monotonic() + timeout
        answered: Dict[int, Response] = {}
        req_for: Dict[int, int] = {}  # req_id -> payload index

        def submit(indices) -> None:
            if not self._pool.alive():
                raise QueryError(
                    "all serving workers are dead and respawn could not "
                    "revive any"
                )
            for idx in indices:
                req_for[self._pool.submit(verb, payloads[idx])] = idx

        submit(range(len(payloads)))
        while len(answered) < len(payloads):
            pending = [rid for rid, idx in req_for.items()
                       if idx not in answered]
            wave = self._pool.gather(pending, timeout=0.25)
            for rid, resp in wave.items():
                idx = req_for.pop(rid)
                if idx in answered:
                    continue  # a resubmitted twin already answered
                if not resp.ok:
                    raise QueryError(
                        f"worker {resp.worker_id} failed: {resp.payload}"
                    )
                answered[idx] = resp
            if wave:
                continue
            lost = sorted({
                req_for[rid] for rid in pending
                if self._pool.request_lost(rid)
            } - set(answered))
            if lost:
                self.reap()
                for rid in [r for r, idx in req_for.items() if idx in lost]:
                    self._pool.forget(rid)
                    del req_for[rid]
                submit(lost)
                continue
            if deadline is not None and time.monotonic() >= deadline:
                raise QueryError(
                    f"serving request timed out after {timeout}s with "
                    f"{len(payloads) - len(answered)} unanswered "
                    f"(alive workers: {len(self._pool.alive())})"
                )
        return [answered[i] for i in range(len(payloads))]

    def _one(self, verb: str, payload,
             timeout: Optional[float] = None) -> Response:
        return self._pump(verb, [payload], timeout)[0]

    def distance(self, source: int, target: int, tolerance: float = 0.0,
                 timeout: Optional[float] = None) -> Tuple[float, object, int]:
        """One pairwise distance; returns ``(value, stats, epoch)``."""
        resp = self._one("distance", (source, target, tolerance), timeout)
        value, stats = resp.payload
        return value, stats, resp.epoch

    def distance_many(self, source: int, targets: Sequence[int],
                      timeout: Optional[float] = None,
                      chunk_size: Optional[int] = None):
        """One-to-many distances; returns ``(values, stats, epoch)``.

        Target lists longer than the session chunk are split across the
        pool: each worker answers one slice with the shared-search kernel
        and the partial results merge — values union disjointly, counters
        sum (:meth:`QueryStats.merge`), ``answered_by_index`` only when
        every slice was.  Slices lost to crashed workers are reaped,
        respawned, and resubmitted until the batch completes or every
        worker is dead.  All partials must come from one epoch; a publish
        racing the fan-out is retried once on the new epoch.
        """
        targets = list(targets)
        chunk = self._chunk if chunk_size is None else chunk_size
        if chunk < 1:
            raise ConfigError("chunk_size must be >= 1")
        if len(targets) <= chunk or self._pool.workers == 1:
            resp = self._one("distance_many", (source, targets), timeout)
            values, stats = resp.payload
            return values, stats, resp.epoch
        for _attempt in (0, 1):
            merged = self._distance_many_fanout(source, targets, chunk,
                                                timeout)
            if merged is not None:
                return merged
        raise QueryError(
            "distance_many partials kept landing on different epochs "
            "(a publish raced every retry)"
        )

    def _distance_many_fanout(self, source, targets, chunk, timeout):
        # One request per slice; _pump replays slices lost to worker
        # crashes until all answer.  The merge checks epoch agreement.
        slices = [targets[i:i + chunk] for i in range(0, len(targets), chunk)]
        responses = self._pump(
            "distance_many", [(source, part) for part in slices], timeout,
        )
        epochs = {resp.epoch for resp in responses}
        if len(epochs) > 1:
            return None  # publish raced the fan-out; caller retries
        from repro.core.stats import QueryStats

        values: Dict[int, float] = {}
        stats = QueryStats(answered_by_index=True)
        for resp in responses:
            part_values, part_stats = resp.payload
            values.update(part_values)
            stats.merge(part_stats)
            stats.answered_by_index = (
                stats.answered_by_index and part_stats.answered_by_index
            )
        return values, stats, epochs.pop()

    def nearest(self, source: int, k: int,
                timeout: Optional[float] = None):
        """``(pairs, epoch)`` — the k nearest vertices at the served epoch."""
        resp = self._one("nearest", (source, k), timeout)
        return resp.payload, resp.epoch

    def within(self, source: int, radius: float,
               timeout: Optional[float] = None):
        """``(pairs, epoch)`` — vertices within ``radius`` at the epoch."""
        resp = self._one("within", (source, radius), timeout)
        return resp.payload, resp.epoch

    def map_distance(self, pairs: Sequence[Tuple[int, int]],
                     chunk_size: Optional[int] = None,
                     timeout: Optional[float] = None) -> List[tuple]:
        """Fan a batch of ``(s, t)`` pairs across the pool, chunked.

        Returns one ``(value, stats, epoch)`` per input pair, in input
        order.  Chunks lost to crashed workers are reaped, respawned, and
        resubmitted until the batch completes (pure reads are
        idempotent); a batch nobody is left to answer raises.
        """
        if chunk_size is None:
            chunk_size = self._chunk
        chunks = [
            list(pairs[i:i + chunk_size])
            for i in range(0, len(pairs), chunk_size)
        ]
        responses = self._pump("distance_batch", chunks, timeout)
        out: List[tuple] = []
        for resp in responses:
            out.extend(
                (value, stats, resp.epoch) for value, stats in resp.payload
            )
        return out

    # -- lifecycle ----------------------------------------------------------

    def reap(self) -> List[int]:
        """Return the refcounts of dead workers; respawn them if enabled.

        Respawned workers re-fork from the same reader spec, connect, and
        acquire whatever epoch is current (rebinding a fresh
        :class:`~repro.core.workspace.SearchWorkspace`).  The pool's
        circuit breaker keeps a crash loop from fork-bombing the writer:
        past its failure budget the dead stay dead and the session serves
        from the survivors.
        """
        dead = self._pool.dead()
        for worker_id in dead:
            self._transport.release_reader(worker_id)
        if self._respawn and dead:
            self._pool.respawn()
        return dead

    def close(self) -> None:
        """Stop the pool and tear down every transport resource."""
        if self._closed:
            return
        self._closed = True
        self._unsubscribe()
        self._pool.close()
        self._transport.close()
        atexit.unregister(self.close)
