"""Reader-process fan-out: :class:`WorkerPool` and :class:`ServeSession`.

The writer/readers split the paper's serving story needs: one process owns
the live :class:`~repro.SGraph` and keeps ingesting; N reader processes
attach the newest published plane from shared memory and answer
``distance / distance_many / nearest / within`` requests with the
bit-identical ``_search_dense`` hot path.  Requests and responses travel
over two multiprocessing queues; per-query payloads are a few scalars plus
a :class:`~repro.core.stats.QueryStats` — graphs are never pickled.

Workers poll the epoch board's generation between requests: stale readers
detach (releasing their refcount, possibly unlinking a retired plane) and
re-attach the newest segment by name.  A request already being answered
keeps using the plane it started on — in-flight queries finish on their
starting epoch by construction.

:class:`ServeSession` is the writer-side facade tying it together: it owns
a :class:`~repro.streaming.versioning.VersionedStore`, exports every newly
published epoch to shm, registers it on the board, and exposes blocking
query helpers over the pool.  ``SGraph.serve(workers=N)`` constructs one.
"""

from __future__ import annotations

import atexit
import gc
import itertools
import multiprocessing as mp
import os
import queue as queue_mod
import time
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigError, QueryError
from repro.serving.epoch import EpochBoard
from repro.serving.shm_plane import PlaneGraph, ShmPlane

#: queries bundled per pool message — amortizes the ~100µs queue round-trip
#: across enough sub-millisecond searches to keep workers compute-bound.
DEFAULT_CHUNK = 32


class Response(NamedTuple):
    """One answered (or failed) request."""

    req_id: int
    worker_id: int
    epoch: Optional[int]
    ok: bool
    payload: object


def _dispatch(engine, plane, verb: str, payload):
    if verb == "distance":
        source, target, tolerance = payload
        return engine.best_cost(source, target, tolerance=tolerance)
    if verb == "distance_batch":
        return [engine.best_cost(s, t) for s, t in payload]
    if verb == "distance_many":
        source, targets = payload
        return engine.one_to_many(source, list(targets))
    if verb in ("nearest", "within"):
        from repro.core.engine import expand_from_csr

        source, arg = payload
        if source not in plane.csr.dense_map:
            raise QueryError(f"query endpoint {source} is not in the graph")
        if verb == "nearest":
            return expand_from_csr(plane.csr, source, arg, None)
        return expand_from_csr(plane.csr, source, None, arg)
    raise QueryError(f"unknown verb {verb!r}")


def _worker_main(worker_id: int, board_name: str, lock, requests, responses,
                 policy_value: str) -> None:
    """One reader process: attach newest plane, drain requests forever.

    ``requests`` is this worker's *private* queue: a shared request queue
    would leave its reader lock held forever if a sibling were SIGKILLed
    mid-``get``, deadlocking every survivor.  The writer round-robins over
    the private queues of workers it still believes alive.
    """
    from repro.core.engine import PairwiseEngine

    board = EpochBoard.attach(board_name, lock)
    held: Dict[str, Optional[tuple]] = {"plane": None}

    def detach() -> None:
        entry = held["plane"]
        held["plane"] = None
        if entry is None:
            return
        slot, handle = entry[1], entry[2]
        # The engine and plane in the entry hold numpy views into the
        # mapping; drop them (and any stray cycle) before closing it, or
        # the munmap would be deferred to interpreter shutdown.
        entry = None
        gc.collect()
        handle.close()
        board.release(slot, worker_id=worker_id)

    # Finalizer for exits that skip the normal loop teardown (unhandled
    # signals short of SIGKILL, interpreter shutdown): the refcount must be
    # returned or the writer would wait on a ghost reader.  SIGKILL itself
    # is covered by the writer-side reap (EpochBoard.release_worker).
    atexit.register(detach)

    def current() -> Optional[tuple]:
        entry = held["plane"]
        if entry is not None and entry[0] == board.generation():
            return entry
        detach()
        got = board.acquire(worker_id)
        if got is None:
            return None
        generation, slot, epoch, seg_name = got
        try:
            handle = ShmPlane.attach(seg_name)
        except FileNotFoundError:
            board.release(slot, worker_id=worker_id)
            return None
        plane = handle.as_dense_plane()
        engine = PairwiseEngine(
            PlaneGraph(plane.csr), policy=policy_value, dense=plane,
        )
        entry = (generation, slot, handle, engine, plane, epoch)
        held["plane"] = entry
        return entry

    try:
        while True:
            req = requests.get()
            if req is None:
                break
            req_id, verb, payload = req
            try:
                entry = current()
                if entry is None:
                    raise QueryError("no epoch has been published yet")
                result = _dispatch(entry[3], entry[4], verb, payload)
                responses.put(Response(
                    req_id, worker_id, entry[5], True, result,
                ))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                responses.put(Response(
                    req_id, worker_id, None, False,
                    f"{type(exc).__name__}: {exc}",
                ))
            finally:
                # Keep held["plane"] the only reference to the attached
                # plane between requests, so detach() can actually unmap.
                entry = None
    finally:
        detach()
        board.detach()


class WorkerPool:
    """N reader processes fed from one request queue."""

    def __init__(self, ctx, workers: int, board_name: str, lock,
                 policy_value: str) -> None:
        if workers < 1:
            raise ConfigError("workers must be >= 1")
        self._requests = [ctx.Queue() for _ in range(workers)]
        self._responses = ctx.Queue()
        self._ids = itertools.count()
        self._rr = itertools.count()  # round-robin cursor over alive workers
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(i, board_name, lock, self._requests[i],
                      self._responses, policy_value),
                daemon=True,
                name=f"repro-serve-{i}",
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()

    @property
    def workers(self) -> int:
        return len(self._procs)

    def alive(self) -> List[int]:
        return [i for i, p in enumerate(self._procs) if p.is_alive()]

    def dead(self) -> List[int]:
        return [i for i, p in enumerate(self._procs) if not p.is_alive()]

    def submit(self, verb: str, payload) -> int:
        """Enqueue one request on an alive worker; returns its id."""
        alive = self.alive()
        if not alive:
            raise QueryError("all serving workers are dead")
        target = alive[next(self._rr) % len(alive)]
        req_id = next(self._ids)
        self._requests[target].put((req_id, verb, payload))
        return req_id

    def gather(self, req_ids: Sequence[int],
               timeout: Optional[float] = None) -> Dict[int, Response]:
        """Collect responses for ``req_ids`` (best effort under a timeout).

        Returns a dict keyed by request id; with a timeout the result may
        be missing entries whose worker died mid-request — callers decide
        whether to resubmit (reads are idempotent) or raise.
        """
        wanted = set(req_ids)
        got: Dict[int, Response] = {}
        deadline = None if timeout is None else time.monotonic() + timeout
        while wanted:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
            try:
                resp = self._responses.get(timeout=remaining)
            except queue_mod.Empty:
                break
            if resp.req_id in wanted:
                wanted.discard(resp.req_id)
                got[resp.req_id] = resp
        return got

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker (crash-injection hook for tests)."""
        proc = self._procs[worker_id]
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5)

    def close(self, timeout: float = 5.0) -> None:
        for i, proc in enumerate(self._procs):
            if proc.is_alive():
                self._requests[i].put(None)
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
        for q in self._requests + [self._responses]:
            q.close()
            q.cancel_join_thread()


class ServeSession:
    """Writer-side handle on a running multiprocess serving deployment.

    Owns the version store, the shm exports, the epoch board, and the
    worker pool.  Use as a context manager (or call :meth:`close`); an
    ``atexit`` hook backstops sessions the caller forgot, so no segment
    outlives the writer process.
    """

    def __init__(self, sgraph, workers: int = 2, store=None,
                 capacity: int = 4, name_prefix: Optional[str] = None) -> None:
        from repro.streaming.versioning import VersionedStore

        config = sgraph.config
        if "distance" not in config.queries:
            raise ConfigError(
                "serving needs the 'distance' family in SGraphConfig.queries"
            )
        if config.backend == "dict":
            raise ConfigError(
                "serving shares the dense plane; backend='dict' publishes none"
            )
        self._sgraph = sgraph
        self._store = store if store is not None else VersionedStore(
            sgraph, capacity=capacity
        )
        self._prefix = name_prefix or (
            f"rp{os.getpid():x}-{os.urandom(3).hex()}-"
        )
        self._exports: Dict[int, ShmPlane] = {}
        self._closed = False
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        self._lock = ctx.Lock()
        self._board = EpochBoard.create(
            self._prefix + "board", num_workers=workers, lock=self._lock,
        )
        self._pool = WorkerPool(
            ctx, workers, self._board.name, self._lock,
            policy_value=config.policy.value,
        )
        self._unsubscribe = self._store.subscribe(self._on_publish)
        atexit.register(self.close)
        self.publish()

    # -- introspection ------------------------------------------------------

    @property
    def prefix(self) -> str:
        """Name prefix of every segment this session creates."""
        return self._prefix

    @property
    def store(self):
        return self._store

    @property
    def board(self) -> EpochBoard:
        return self._board

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    @property
    def workers(self) -> int:
        return self._pool.workers

    def __enter__(self) -> "ServeSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- publishing ---------------------------------------------------------

    def publish(self, label: Optional[str] = None):
        """Publish the facade's current epoch and hand it to the readers.

        Delegates to :meth:`VersionedStore.publish`; the store's publish
        hook exports the new plane to a fresh shm segment and registers it
        on the board (same-epoch republish is a no-op end to end).
        """
        return self._store.publish(label)

    def _on_publish(self, view) -> None:
        epoch = view.epoch
        if epoch in self._exports or self._closed:
            return
        plane = view.dense_plane("distance")
        name = f"{self._prefix}e{epoch}"
        handle = ShmPlane.export(plane, name, epoch=epoch)
        self._exports[epoch] = handle
        self._board.register(name, epoch)

    # -- queries ------------------------------------------------------------

    def _one(self, verb: str, payload,
             timeout: Optional[float] = None) -> Response:
        if self._pool.dead():
            self.reap()
        req_id = self._pool.submit(verb, payload)
        got = self._pool.gather([req_id], timeout=timeout)
        if req_id not in got:
            raise QueryError(
                f"serving request timed out after {timeout}s "
                f"(alive workers: {len(self._pool.alive())})"
            )
        resp = got[req_id]
        if not resp.ok:
            raise QueryError(f"worker {resp.worker_id} failed: {resp.payload}")
        return resp

    def distance(self, source: int, target: int, tolerance: float = 0.0,
                 timeout: Optional[float] = None) -> Tuple[float, object, int]:
        """One pairwise distance; returns ``(value, stats, epoch)``."""
        resp = self._one("distance", (source, target, tolerance), timeout)
        value, stats = resp.payload
        return value, stats, resp.epoch

    def distance_many(self, source: int, targets: Sequence[int],
                      timeout: Optional[float] = None):
        """One-to-many distances; returns ``(values, stats, epoch)``."""
        resp = self._one("distance_many", (source, list(targets)), timeout)
        values, stats = resp.payload
        return values, stats, resp.epoch

    def nearest(self, source: int, k: int,
                timeout: Optional[float] = None):
        """``(pairs, epoch)`` — the k nearest vertices at the served epoch."""
        resp = self._one("nearest", (source, k), timeout)
        return resp.payload, resp.epoch

    def within(self, source: int, radius: float,
               timeout: Optional[float] = None):
        """``(pairs, epoch)`` — vertices within ``radius`` at the epoch."""
        resp = self._one("within", (source, radius), timeout)
        return resp.payload, resp.epoch

    def map_distance(self, pairs: Sequence[Tuple[int, int]],
                     chunk_size: int = DEFAULT_CHUNK,
                     timeout: Optional[float] = None) -> List[tuple]:
        """Fan a batch of ``(s, t)`` pairs across the pool, chunked.

        Returns one ``(value, stats, epoch)`` per input pair, in input
        order.  Chunks lost to a crashed worker are reaped and resubmitted
        once (pure reads are idempotent); anything still missing raises.
        """
        if self._pool.dead():
            self.reap()
        chunks = [
            list(pairs[i:i + chunk_size])
            for i in range(0, len(pairs), chunk_size)
        ]
        answered: Dict[int, list] = {}

        def run(indices) -> None:
            dead_at_start = set(self._pool.dead())
            req_map = {
                self._pool.submit("distance_batch", chunks[ci]): ci
                for ci in indices
            }
            pending = set(req_map)
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            while pending:
                # Short waves instead of one blocking gather: a worker that
                # dies holding a chunk would otherwise hang us forever.
                responses = self._pool.gather(list(pending), timeout=0.25)
                for req_id, resp in responses.items():
                    if not resp.ok:
                        raise QueryError(
                            f"worker {resp.worker_id} failed: {resp.payload}"
                        )
                    answered[req_map[req_id]] = [
                        (value, stats, resp.epoch)
                        for value, stats in resp.payload
                    ]
                pending -= set(responses)
                if not responses:
                    if set(self._pool.dead()) - dead_at_start:
                        return  # lost chunks — caller reaps and resubmits
                    if not self._pool.alive():
                        return  # nobody left to answer
                    if (deadline is not None
                            and time.monotonic() >= deadline):
                        return

        run(range(len(chunks)))
        missing = [ci for ci in range(len(chunks)) if ci not in answered]
        if missing and self._pool.dead():
            self.reap()
            run(missing)
            missing = [ci for ci in range(len(chunks)) if ci not in answered]
        if missing:
            raise QueryError(f"serving chunks {missing} were never answered")
        out: List[tuple] = []
        for ci in range(len(chunks)):
            out.extend(answered[ci])
        return out

    # -- lifecycle ----------------------------------------------------------

    def reap(self) -> List[int]:
        """Return the refcounts of dead workers to the board."""
        dead = self._pool.dead()
        for worker_id in dead:
            self._board.release_worker(worker_id)
        return dead

    def close(self) -> None:
        """Stop the pool and remove every segment this session created."""
        if self._closed:
            return
        self._closed = True
        self._unsubscribe()
        self._pool.close()
        for worker_id in range(self._pool.workers):
            self._board.release_worker(worker_id)
        for handle in self._exports.values():
            handle.close()
        self._exports = {}
        self._board.shutdown()
        atexit.unregister(self.close)
