"""Reader-process fan-out: :class:`WorkerPool` and :class:`ServeSession`.

The writer/readers split the paper's serving story needs: one process owns
the live :class:`~repro.SGraph` and keeps ingesting; N reader processes
acquire the newest published plane through a
:class:`~repro.serving.transport.PlaneTransport` and answer
``distance / distance_many / nearest / within`` requests with the
bit-identical ``_search_dense`` hot path.  Requests and responses travel
over two multiprocessing queues; per-query payloads are a few scalars plus
a :class:`~repro.core.stats.QueryStats` — graphs are never pickled.

Workers poll the registry generation between requests: stale readers
release their lease (returning the refcount, possibly evicting a retired
plane) and acquire the newest one.  A request already being answered
keeps using the plane it started on — in-flight queries finish on their
starting epoch by construction.

The pool is generic over the transport: each worker receives a picklable
:class:`~repro.serving.transport.ReaderSpec` and connects inside its own
process — a shm spec attaches the epoch board and maps segments, a tcp
spec opens a socket and caches fetched planes.  The request loop never
knows which.

:class:`ServeSession` is the writer-side facade tying it together: it owns
a :class:`~repro.streaming.versioning.VersionedStore`, publishes every new
epoch through the transport, and exposes blocking query helpers over the
pool.  ``SGraph.serve(workers=N, transport=..., delta=...)`` constructs
one; ``delta=True`` (TCP only) makes each reader fetch chunk-addressed
O(Δ) deltas against its cached planes instead of full payloads, and
``stats_row()`` reports the delta/full fetch counters and byte totals.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import os
import queue as queue_mod
import time
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigError, QueryError
from repro.serving.transport import PlaneTransport, make_transport

#: queries bundled per pool message — amortizes the ~100µs queue round-trip
#: across enough sub-millisecond searches to keep workers compute-bound.
#: Override per session with ``SGraph.serve(chunk=...)``.
DEFAULT_CHUNK = 32


class Response(NamedTuple):
    """One answered (or failed) request."""

    req_id: int
    worker_id: int
    epoch: Optional[int]
    ok: bool
    payload: object


def _dispatch(engine, plane, verb: str, payload):
    if verb == "distance":
        source, target, tolerance = payload
        return engine.best_cost(source, target, tolerance=tolerance)
    if verb == "distance_batch":
        return [engine.best_cost(s, t) for s, t in payload]
    if verb == "distance_many":
        source, targets = payload
        return engine.one_to_many(source, list(targets))
    if verb in ("nearest", "within"):
        source, arg = payload
        if verb == "nearest":
            return engine.expand(source, arg, None)
        return engine.expand(source, None, arg)
    if verb == "workspace_stats":
        return engine.workspace_stats()
    raise QueryError(f"unknown verb {verb!r}")


def _worker_main(worker_id: int, spec, requests, responses,
                 policy_value: str) -> None:
    """One reader process: acquire newest plane, drain requests forever.

    ``requests`` is this worker's *private* queue: a shared request queue
    would leave its reader lock held forever if a sibling were SIGKILLed
    mid-``get``, deadlocking every survivor.  The writer round-robins over
    the private queues of workers it still believes alive.
    """
    from repro.core.engine import PairwiseEngine
    from repro.core.workspace import SearchWorkspace
    from repro.serving.codec import PlaneGraph

    client = spec.connect(worker_id)
    held: Dict[str, Optional[tuple]] = {"entry": None}
    # One workspace for the worker's whole life: each epoch's fresh engine
    # adopts it, so the request loop re-allocates O(V) search state only
    # when an epoch actually changes the plane's vertex count.
    workspace = SearchWorkspace()

    def detach() -> None:
        entry = held["entry"]
        held["entry"] = None
        if entry is None:
            return
        lease = entry[0]
        # The lease's release path may need every view into the plane
        # dropped first (shm unmaps); clear our references before calling.
        entry = None
        lease.release()

    # Finalizer for exits that skip the normal loop teardown (unhandled
    # signals short of SIGKILL, interpreter shutdown): the refcount must be
    # returned or the writer would wait on a ghost reader.  SIGKILL itself
    # is covered by the writer-side reap (transport.release_reader).
    atexit.register(detach)

    def current() -> Optional[tuple]:
        entry = held["entry"]
        if entry is not None and entry[0].generation == client.generation():
            return entry
        # Drop this frame's binding before detaching: a live reference
        # here would keep the old plane's views alive through release()
        # and defer the unmap to interpreter shutdown.
        entry = None
        detach()
        lease = client.acquire()
        if lease is None:
            return None
        plane = lease.plane
        engine = PairwiseEngine(
            PlaneGraph(plane.csr), policy=policy_value, dense=plane,
            workspace=workspace,
        )
        entry = (lease, engine, plane)
        held["entry"] = entry
        return entry

    try:
        while True:
            req = requests.get()
            if req is None:
                break
            req_id, verb, payload = req
            try:
                entry = current()
                if entry is None:
                    raise QueryError("no epoch has been published yet")
                result = _dispatch(entry[1], entry[2], verb, payload)
                responses.put(Response(
                    req_id, worker_id, entry[0].epoch, True, result,
                ))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                responses.put(Response(
                    req_id, worker_id, None, False,
                    f"{type(exc).__name__}: {exc}",
                ))
            finally:
                # Keep held["entry"] the only reference to the acquired
                # plane between requests, so detach() can actually release.
                entry = None
    finally:
        detach()
        client.close()


class WorkerPool:
    """N reader processes fed from private request queues."""

    def __init__(self, ctx, workers: int, spec, policy_value: str) -> None:
        if workers < 1:
            raise ConfigError("workers must be >= 1")
        self._requests = [ctx.Queue() for _ in range(workers)]
        self._responses = ctx.Queue()
        self._ids = itertools.count()
        self._rr = itertools.count()  # round-robin cursor over alive workers
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(i, spec, self._requests[i], self._responses,
                      policy_value),
                daemon=True,
                name=f"repro-serve-{i}",
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()

    @property
    def workers(self) -> int:
        return len(self._procs)

    def alive(self) -> List[int]:
        return [i for i, p in enumerate(self._procs) if p.is_alive()]

    def dead(self) -> List[int]:
        return [i for i, p in enumerate(self._procs) if not p.is_alive()]

    def submit(self, verb: str, payload) -> int:
        """Enqueue one request on an alive worker; returns its id."""
        alive = self.alive()
        if not alive:
            raise QueryError("all serving workers are dead")
        target = alive[next(self._rr) % len(alive)]
        return self.submit_to(target, verb, payload)

    def submit_to(self, worker_id: int, verb: str, payload) -> int:
        """Enqueue one request on a *specific* worker; returns its id.

        For per-worker introspection verbs (``workspace_stats``) that the
        round-robin cursor cannot target.  The worker must be alive.
        """
        if not self._procs[worker_id].is_alive():
            raise QueryError(f"serving worker {worker_id} is dead")
        req_id = next(self._ids)
        self._requests[worker_id].put((req_id, verb, payload))
        return req_id

    def gather(self, req_ids: Sequence[int],
               timeout: Optional[float] = None) -> Dict[int, Response]:
        """Collect responses for ``req_ids`` (best effort under a timeout).

        Returns a dict keyed by request id; with a timeout the result may
        be missing entries whose worker died mid-request — callers decide
        whether to resubmit (reads are idempotent) or raise.
        """
        wanted = set(req_ids)
        got: Dict[int, Response] = {}
        deadline = None if timeout is None else time.monotonic() + timeout
        while wanted:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
            try:
                resp = self._responses.get(timeout=remaining)
            except queue_mod.Empty:
                break
            if resp.req_id in wanted:
                wanted.discard(resp.req_id)
                got[resp.req_id] = resp
        return got

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker (crash-injection hook for tests)."""
        proc = self._procs[worker_id]
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5)

    def close(self, timeout: float = 5.0) -> None:
        for i, proc in enumerate(self._procs):
            if proc.is_alive():
                self._requests[i].put(None)
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
        for q in self._requests + [self._responses]:
            q.close()
            q.cancel_join_thread()


class ServeSession:
    """Writer-side handle on a running multiprocess serving deployment.

    Owns the version store, the plane transport, and the worker pool.  Use
    as a context manager (or call :meth:`close`); an ``atexit`` hook
    backstops sessions the caller forgot, so no segment or socket outlives
    the writer process.
    """

    def __init__(self, sgraph, workers: int = 2, store=None,
                 capacity: int = 4, name_prefix: Optional[str] = None,
                 transport: str = "shm", chunk: Optional[int] = None,
                 delta: bool = False, **transport_options) -> None:
        from repro.streaming.versioning import VersionedStore

        config = sgraph.config
        if "distance" not in config.queries:
            raise ConfigError(
                "serving needs the 'distance' family in SGraphConfig.queries"
            )
        if config.backend == "dict":
            raise ConfigError(
                "serving shares the dense plane; backend='dict' publishes none"
            )
        if chunk is None:
            chunk = DEFAULT_CHUNK
        if chunk < 1:
            raise ConfigError("chunk must be >= 1")
        if delta:
            if transport != "tcp":
                raise ConfigError(
                    "delta fetches need a byte-moving transport: "
                    "serve(delta=True) requires transport='tcp' "
                    "(shm readers already share the writer's bytes)"
                )
            transport_options["delta"] = True
        self._delta = bool(delta)
        self._sgraph = sgraph
        self._store = store if store is not None else VersionedStore(
            sgraph, capacity=capacity
        )
        self._prefix = name_prefix or (
            f"rp{os.getpid():x}-{os.urandom(3).hex()}-"
        )
        self._chunk = chunk
        self._closed = False
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        self._transport = make_transport(
            transport, self._prefix, workers, ctx, **transport_options
        )
        self._pool = WorkerPool(
            ctx, workers, self._transport.reader_spec(),
            policy_value=config.policy.value,
        )
        # replay_latest covers stores whose current epoch was already
        # published before this session subscribed — the callback fires
        # immediately so the readers still get a plane.
        self._unsubscribe = self._store.subscribe(
            self._on_publish, replay_latest=True
        )
        atexit.register(self.close)
        self.publish()

    # -- introspection ------------------------------------------------------

    @property
    def prefix(self) -> str:
        """Name prefix of every resource this session creates."""
        return self._prefix

    @property
    def store(self):
        return self._store

    @property
    def transport(self) -> PlaneTransport:
        return self._transport

    @property
    def board(self):
        """The transport's epoch registry (named for the shm board)."""
        return self._transport.registry

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def chunk(self) -> int:
        """Queries bundled per pool message in batched verbs."""
        return self._chunk

    @property
    def delta(self) -> bool:
        """Whether TCP readers fetch chunk-addressed deltas per epoch."""
        return self._delta

    def stats_row(self) -> Dict[str, object]:
        """One observability row: transport, fan-out, registry state,
        payload movement (delta vs full fetches, actual vs all-full bytes
        — the savings ratio is ``1 - bytes_sent / bytes_full``), and the
        pool's aggregated workspace reuse counters (a healthy steady state
        shows ``workspace_allocs`` frozen at the epoch-rebind count while
        ``workspace_resets`` tracks request throughput)."""
        registry = self._transport.registry
        row = {
            "transport": self._transport.kind,
            "endpoint": self._transport.describe(),
            "workers": self._pool.workers,
            "alive": len(self._pool.alive()),
            "chunk": self._chunk,
            "delta": self._delta,
            "epoch": registry.current_epoch(),
            "generation": registry.generation(),
            "slots_held": len(registry.slots()),
            "delta_fetches": 0,
            "full_fetches": 0,
            "bytes_sent": 0,
            "bytes_full": 0,
            "workspace_allocs": 0,
            "workspace_hits": 0,
            "workspace_resets": 0,
            "touched_reset": 0,
        }
        row.update(self._transport.transfer_stats())
        for ws_row in self.workspace_stats():
            for key in ("workspace_allocs", "workspace_hits",
                        "workspace_resets", "touched_reset"):
                row[key] += ws_row[key]
        return row

    def workspace_stats(self,
                        timeout: float = 5.0) -> List[Dict[str, object]]:
        """Per-worker search-workspace reuse counters.

        One row per alive worker (plus its id and current epoch).  This is
        the observable form of the zero-O(V)-allocations-per-request
        guarantee: across any number of requests on a fixed-size plane,
        ``workspace_allocs`` only moves when an epoch rebind changes the
        vertex count.  Workers that cannot answer (no published epoch yet,
        or died mid-probe) are skipped.
        """
        rows: List[Dict[str, object]] = []
        for worker_id in self._pool.alive():
            try:
                req_id = self._pool.submit_to(
                    worker_id, "workspace_stats", None
                )
            except QueryError:
                continue
            resp = self._pool.gather([req_id], timeout=timeout).get(req_id)
            if resp is None or not resp.ok:
                continue
            ws_row = dict(resp.payload)
            ws_row["worker"] = worker_id
            ws_row["epoch"] = resp.epoch
            rows.append(ws_row)
        return rows

    def __enter__(self) -> "ServeSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- publishing ---------------------------------------------------------

    def publish(self, label: Optional[str] = None):
        """Publish the facade's current epoch and hand it to the readers.

        Delegates to :meth:`VersionedStore.publish`; the store's publish
        hook encodes the new plane through the transport (same-epoch
        republish is a no-op end to end).
        """
        return self._store.publish(label)

    def _on_publish(self, view) -> None:
        if self._closed:
            return
        self._transport.publish_plane(view.dense_plane("distance"), view.epoch)

    # -- queries ------------------------------------------------------------

    def _one(self, verb: str, payload,
             timeout: Optional[float] = None) -> Response:
        if self._pool.dead():
            self.reap()
        req_id = self._pool.submit(verb, payload)
        got = self._pool.gather([req_id], timeout=timeout)
        if req_id not in got:
            raise QueryError(
                f"serving request timed out after {timeout}s "
                f"(alive workers: {len(self._pool.alive())})"
            )
        resp = got[req_id]
        if not resp.ok:
            raise QueryError(f"worker {resp.worker_id} failed: {resp.payload}")
        return resp

    def distance(self, source: int, target: int, tolerance: float = 0.0,
                 timeout: Optional[float] = None) -> Tuple[float, object, int]:
        """One pairwise distance; returns ``(value, stats, epoch)``."""
        resp = self._one("distance", (source, target, tolerance), timeout)
        value, stats = resp.payload
        return value, stats, resp.epoch

    def distance_many(self, source: int, targets: Sequence[int],
                      timeout: Optional[float] = None,
                      chunk_size: Optional[int] = None):
        """One-to-many distances; returns ``(values, stats, epoch)``.

        Target lists longer than the session chunk are split across the
        pool: each worker answers one slice with the shared-search kernel
        and the partial results merge — values union disjointly, counters
        sum (:meth:`QueryStats.merge`), ``answered_by_index`` only when
        every slice was.  All partials must come from one epoch; a publish
        racing the fan-out is retried once on the new epoch.
        """
        targets = list(targets)
        chunk = self._chunk if chunk_size is None else chunk_size
        if chunk < 1:
            raise ConfigError("chunk_size must be >= 1")
        if len(targets) <= chunk or self._pool.workers == 1:
            resp = self._one("distance_many", (source, targets), timeout)
            values, stats = resp.payload
            return values, stats, resp.epoch
        for _attempt in (0, 1):
            merged = self._distance_many_fanout(source, targets, chunk,
                                                timeout)
            if merged is not None:
                return merged
        raise QueryError(
            "distance_many partials kept landing on different epochs "
            "(a publish raced every retry)"
        )

    def _distance_many_fanout(self, source, targets, chunk, timeout):
        # One request per slice; merge below checks epoch agreement.
        slices = [targets[i:i + chunk] for i in range(0, len(targets), chunk)]
        req_ids = [
            self._pool.submit("distance_many", (source, part))
            for part in slices
        ]
        got = self._pool.gather(req_ids, timeout=timeout)
        missing = [rid for rid in req_ids if rid not in got]
        if missing and self._pool.dead():
            # Reap crashed workers and resubmit the lost slices once —
            # pure reads are idempotent.
            self.reap()
            redo = {
                self._pool.submit(
                    "distance_many", (source, slices[req_ids.index(rid)])
                ): rid
                for rid in missing
            }
            for new_id, resp in self._pool.gather(
                list(redo), timeout=timeout
            ).items():
                got[redo[new_id]] = resp
            missing = [rid for rid in req_ids if rid not in got]
        if missing:
            raise QueryError(
                f"distance_many lost {len(missing)} slices "
                f"(alive workers: {len(self._pool.alive())})"
            )
        for rid in req_ids:
            if not got[rid].ok:
                resp = got[rid]
                raise QueryError(
                    f"worker {resp.worker_id} failed: {resp.payload}"
                )
        epochs = {got[rid].epoch for rid in req_ids}
        if len(epochs) > 1:
            return None  # publish raced the fan-out; caller retries
        from repro.core.stats import QueryStats

        values: Dict[int, float] = {}
        stats = QueryStats(answered_by_index=True)
        for rid in req_ids:
            part_values, part_stats = got[rid].payload
            values.update(part_values)
            stats.merge(part_stats)
            stats.answered_by_index = (
                stats.answered_by_index and part_stats.answered_by_index
            )
        return values, stats, epochs.pop()

    def nearest(self, source: int, k: int,
                timeout: Optional[float] = None):
        """``(pairs, epoch)`` — the k nearest vertices at the served epoch."""
        resp = self._one("nearest", (source, k), timeout)
        return resp.payload, resp.epoch

    def within(self, source: int, radius: float,
               timeout: Optional[float] = None):
        """``(pairs, epoch)`` — vertices within ``radius`` at the epoch."""
        resp = self._one("within", (source, radius), timeout)
        return resp.payload, resp.epoch

    def map_distance(self, pairs: Sequence[Tuple[int, int]],
                     chunk_size: Optional[int] = None,
                     timeout: Optional[float] = None) -> List[tuple]:
        """Fan a batch of ``(s, t)`` pairs across the pool, chunked.

        Returns one ``(value, stats, epoch)`` per input pair, in input
        order.  Chunks lost to a crashed worker are reaped and resubmitted
        once (pure reads are idempotent); anything still missing raises.
        """
        if self._pool.dead():
            self.reap()
        if chunk_size is None:
            chunk_size = self._chunk
        chunks = [
            list(pairs[i:i + chunk_size])
            for i in range(0, len(pairs), chunk_size)
        ]
        answered: Dict[int, list] = {}

        def run(indices) -> None:
            dead_at_start = set(self._pool.dead())
            req_map = {
                self._pool.submit("distance_batch", chunks[ci]): ci
                for ci in indices
            }
            pending = set(req_map)
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            while pending:
                # Short waves instead of one blocking gather: a worker that
                # dies holding a chunk would otherwise hang us forever.
                responses = self._pool.gather(list(pending), timeout=0.25)
                for req_id, resp in responses.items():
                    if not resp.ok:
                        raise QueryError(
                            f"worker {resp.worker_id} failed: {resp.payload}"
                        )
                    answered[req_map[req_id]] = [
                        (value, stats, resp.epoch)
                        for value, stats in resp.payload
                    ]
                pending -= set(responses)
                if not responses:
                    if set(self._pool.dead()) - dead_at_start:
                        return  # lost chunks — caller reaps and resubmits
                    if not self._pool.alive():
                        return  # nobody left to answer
                    if (deadline is not None
                            and time.monotonic() >= deadline):
                        return

        run(range(len(chunks)))
        missing = [ci for ci in range(len(chunks)) if ci not in answered]
        if missing and self._pool.dead():
            self.reap()
            run(missing)
            missing = [ci for ci in range(len(chunks)) if ci not in answered]
        if missing:
            raise QueryError(f"serving chunks {missing} were never answered")
        out: List[tuple] = []
        for ci in range(len(chunks)):
            out.extend(answered[ci])
        return out

    # -- lifecycle ----------------------------------------------------------

    def reap(self) -> List[int]:
        """Return the refcounts of dead workers to the registry."""
        dead = self._pool.dead()
        for worker_id in dead:
            self._transport.release_reader(worker_id)
        return dead

    def close(self) -> None:
        """Stop the pool and tear down every transport resource."""
        if self._closed:
            return
        self._closed = True
        self._unsubscribe()
        self._pool.close()
        self._transport.close()
        atexit.unregister(self.close)
