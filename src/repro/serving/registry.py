"""The epoch-handoff slot-table protocol, independent of any transport.

A registry is the one piece of shared state between a plane writer and
its readers: a table of published planes, each identified by a *ref* (a
shm segment name, a payload digest — whatever the transport uses to find
the bytes) and carrying an epoch, a refcount, and a state in
{FREE, LIVE, RETIRED}.  The protocol is the same everywhere:

* the writer :meth:`~EpochRegistry.register`\\ s a fully materialized
  plane as the newest epoch; the previous current slot is RETIRED and a
  generation counter bumps (the reader's one-word staleness probe);
* readers :meth:`~EpochRegistry.acquire` a reference on the current slot
  before serving from it and :meth:`~EpochRegistry.release` it when they
  move on; a RETIRED slot whose refcount reaches zero is *evicted* (the
  transport unlinks the segment / drops the payload);
* readers that die without releasing are reaped —
  :meth:`~EpochRegistry.release_reader` returns whatever refcount the
  registry still attributes to them.

Two implementations ship: :class:`~repro.serving.epoch.EpochBoard` lays
the table into a shared-memory segment readers map directly (readers and
writer in different processes on one box), and :class:`LocalRegistry`
below keeps it in writer-process memory behind a ``threading`` lock (the
TCP transport's server mutates it on behalf of remote readers).  The
safety argument is shared and layout-free: a plane is fully written
*before* its ref is registered, and a ref is evicted only when its slot
is RETIRED with refcount zero — so no reader can ever observe a torn or
vanished plane.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigError

#: slot states shared by every registry implementation
FREE, LIVE, RETIRED = 0, 1, 2

#: default slot-table capacity (bounds how many retired planes readers
#: may pin concurrently before registration fails loudly)
DEFAULT_SLOTS = 16


class EpochRegistry(ABC):
    """Abstract slot table: FREE/LIVE/RETIRED states, refcounts, reaping.

    Reader ids are opaque hashable keys; the shm board restricts them to
    small ints (its reap cells live in a fixed array), the local registry
    accepts anything hashable (pool workers use ints, remote TCP readers
    use server-assigned tokens).
    """

    # -- introspection ------------------------------------------------------

    @abstractmethod
    def generation(self) -> int:
        """Registration counter — the reader's cheap staleness probe."""

    @abstractmethod
    def current_epoch(self) -> Optional[int]:
        """Epoch of the current slot, or None before the first publish."""

    @abstractmethod
    def slots(self) -> List[Tuple[int, str, int, int, int]]:
        """Snapshot of non-FREE slots: (slot, ref, epoch, refcount, state)."""

    # -- writer protocol ----------------------------------------------------

    @abstractmethod
    def register(self, ref: str, epoch: int) -> int:
        """Publish a fully materialized plane as the newest epoch.

        Retires the previous current slot (evicted immediately when no
        reader holds it, else by the last release) and bumps the
        generation.  Returns the slot index used.
        """

    @abstractmethod
    def release_reader(self, reader_id) -> None:
        """Reap the slot held by a reader that died without releasing."""

    @abstractmethod
    def shutdown(self) -> None:
        """Writer teardown: evict every remaining slot."""

    # -- reader protocol ----------------------------------------------------

    @abstractmethod
    def acquire(self, reader_id) -> Optional[Tuple[int, int, int, str]]:
        """Take a reference on the current plane.

        Returns ``(generation, slot, epoch, ref)``, or None when nothing
        has been registered yet.  The caller must pair this with
        :meth:`release` (normal detach) — or die and be reaped via
        :meth:`release_reader`.
        """

    @abstractmethod
    def release(self, slot: int, reader_id=None) -> None:
        """Drop a reference; the last release of a retired slot evicts."""


class LocalRegistry(EpochRegistry):
    """Writer-owned in-memory slot table (the TCP transport's registry).

    Same semantics as the shm board, different substrate: the table lives
    in the writer process and every mutation happens under one
    ``threading.RLock`` (the TCP server mutates it from per-connection
    threads).  ``on_evict(slot, ref)`` fires — under the lock — whenever a
    slot is freed, so the owning transport can drop the plane payload the
    ref points at.
    """

    def __init__(self, num_slots: int = DEFAULT_SLOTS,
                 on_evict: Optional[Callable[[int, str], None]] = None,
                 generation_base: int = 0) -> None:
        if num_slots < 1:
            raise ConfigError("num_slots must be >= 1")
        if generation_base < 0:
            raise ConfigError("generation_base must be >= 0")
        self._lock = threading.RLock()
        self._on_evict = on_evict
        # slot -> [ref, epoch, refcount, state]
        self._table: List[list] = [["", 0, 0, FREE] for _ in range(num_slots)]
        # A restarted writer may seed the counter with the generation it
        # persisted at shutdown, so readers that cached the old value keep
        # seeing a monotonic sequence instead of a collision at zero.
        self._generation = generation_base
        self._current = -1
        # reader -> {slot: held count}.  A multiset, not a single slot: a
        # reader moving to a new epoch acquires the new slot *before*
        # releasing the old one, so it transiently holds two.
        self._reader_slots: dict = {}

    @property
    def lock(self) -> threading.RLock:
        """The mutation lock (the TCP server serializes payload access
        under it too, so eviction and fetch can never interleave)."""
        return self._lock

    # -- introspection ------------------------------------------------------

    def generation(self) -> int:
        with self._lock:
            return self._generation

    def current_epoch(self) -> Optional[int]:
        with self._lock:
            if self._current < 0:
                return None
            return self._table[self._current][1]

    def slots(self) -> List[Tuple[int, str, int, int, int]]:
        with self._lock:
            return [
                (i, row[0], row[1], row[2], row[3])
                for i, row in enumerate(self._table)
                if row[3] != FREE
            ]

    def readers(self) -> dict:
        """Per-reader multiset of held slots (reap bookkeeping)."""
        with self._lock:
            return {r: dict(held) for r, held in self._reader_slots.items()}

    # -- writer protocol ----------------------------------------------------

    def register(self, ref: str, epoch: int) -> int:
        with self._lock:
            slot = -1
            for i, row in enumerate(self._table):
                if row[3] == FREE:
                    slot = i
                    break
            if slot < 0:
                raise ConfigError(
                    "epoch registry is full: readers are holding "
                    f"{len(self._table)} retired planes"
                )
            self._table[slot] = [ref, epoch, 0, LIVE]
            old = self._current
            if old >= 0:
                self._table[old][3] = RETIRED
                self._maybe_evict(old)
            self._current = slot
            self._generation += 1
            return slot

    def release_reader(self, reader_id) -> None:
        with self._lock:
            held = self._reader_slots.pop(reader_id, None)
            if not held:
                return
            for slot, count in held.items():
                self._table[slot][2] -= count
                self._maybe_evict(slot)

    def shutdown(self) -> None:
        with self._lock:
            for i, row in enumerate(self._table):
                if row[3] != FREE:
                    ref = row[0]
                    self._table[i] = ["", 0, 0, FREE]
                    if self._on_evict is not None:
                        self._on_evict(i, ref)
            self._current = -1
            self._reader_slots.clear()

    # -- reader protocol ----------------------------------------------------

    def acquire(self, reader_id) -> Optional[Tuple[int, int, int, str]]:
        with self._lock:
            slot = self._current
            if slot < 0:
                return None
            row = self._table[slot]
            row[2] += 1
            if reader_id is not None:
                held = self._reader_slots.setdefault(reader_id, {})
                held[slot] = held.get(slot, 0) + 1
            return (self._generation, slot, row[1], row[0])

    def release(self, slot: int, reader_id=None) -> None:
        with self._lock:
            self._table[slot][2] -= 1
            if reader_id is not None:
                self._drop_held(reader_id, slot)
            self._maybe_evict(slot)

    def release_if_held(self, slot: int, reader_id) -> bool:
        """Release ``slot`` only if ``reader_id`` is recorded as holding it.

        The TCP server uses this for release ops so a retried or replayed
        release (a reconnecting reader whose refcount was already reaped
        when its old connection dropped, or a release landing on a
        restarted server that never saw the acquire) cannot drive a
        refcount negative or free someone else's pin.  Returns whether a
        reference was actually returned.
        """
        with self._lock:
            if self._reader_slots.get(reader_id, {}).get(slot, 0) <= 0:
                return False
            self._drop_held(reader_id, slot)
            self._table[slot][2] -= 1
            self._maybe_evict(slot)
            return True

    # -- internals ----------------------------------------------------------

    def _drop_held(self, reader_id, slot: int) -> None:
        # Lock held.  Remove one unit of ``slot`` from the reader's held
        # multiset, pruning empty entries so ``readers()`` stays truthful.
        held = self._reader_slots.get(reader_id)
        if held is None:
            return
        count = held.get(slot, 0)
        if count <= 1:
            held.pop(slot, None)
        else:
            held[slot] = count - 1
        if not held:
            self._reader_slots.pop(reader_id, None)

    def _maybe_evict(self, slot: int) -> None:
        # Lock held.  RETIRED + refcount 0 means nobody can ever reach the
        # ref again (readers only learn refs of the *current* slot), so the
        # transport may drop the payload it points at.
        row = self._table[slot]
        if row[3] == RETIRED and row[2] <= 0:
            ref = row[0]
            self._table[slot] = ["", 0, 0, FREE]
            if self._on_evict is not None:
                self._on_evict(slot, ref)
