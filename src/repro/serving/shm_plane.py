"""Dense-plane (de)serialization over named shared-memory segments.

One :class:`~repro.core.hub_index.DensePlane` becomes one
``multiprocessing.shared_memory`` segment laid out as::

    [0:8)    uint64  manifest length L
    [8:16)   uint64  data_start (aligned offset of the first buffer)
    [16:16+L)        manifest JSON (epoch, directedness, hubs, buffer table)
    [data_start:...) the buffers themselves, each at a 64-byte-aligned
                     offset *relative to data_start*

The manifest records ``{name: {dtype, shape, offset}}`` for every buffer —
CSR ``indptr/indices/weights`` (plus the ``rev_*`` triple when directed),
the dense→caller id map, and the stacked hub cost matrices ``F`` (and ``B``
when directed) — so attaching needs nothing but the segment name: map the
segment, parse the manifest, wrap each buffer in a zero-copy numpy view.
Attach cost is O(#buffers); the O(V+E) work (list caches, residual rows) is
deferred to first use exactly as on the in-process plane.

Cleanup has three layers: explicit :meth:`ShmPlane.close`/``unlink``, the
epoch board's refcounted unlink-on-last-detach (see
:mod:`repro.serving.epoch`), and a module-level registry of every segment
this process *created* that an ``atexit`` hook unlinks — so a crashed writer
never strands segments in ``/dev/shm``.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError

try:  # pragma: no cover - exercised only where shm is missing entirely
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None
    shared_memory = None

try:  # pragma: no cover - POSIX-only fast path for tracker-free unlinks
    import _posixshmem
except ImportError:  # pragma: no cover
    _posixshmem = None

_ALIGN = 64
_FORMAT_VERSION = 1

# Every segment name this process created and has not yet unlinked.  The
# atexit sweep below is the backstop for writers that die without running
# their session teardown — /dev/shm must never accumulate orphans.
_created: set = set()


def _sweep_created() -> None:  # pragma: no cover - atexit path
    for name in list(_created):
        unlink_segment(name)


atexit.register(_sweep_created)


def shm_available() -> bool:
    """Whether POSIX shared memory actually works on this platform."""
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):
        return False
    try:
        probe.close()
        probe.unlink()
    except OSError:  # pragma: no cover
        pass
    return True


def _untrack(name: str) -> None:
    """Unregister a freshly *created* segment from the resource tracker.

    CPython < 3.13 registers every ``SharedMemory`` object with the
    resource tracker as if that process owned it (bpo-39959), and the
    tracker would then unlink live segments whenever any process exits.
    Ownership here is explicit — the refcount protocol and the atexit
    sweep do the unlinking — so nothing this module creates stays
    tracked.  Attaches go through :func:`_attach_segment`, which never
    registers in the first place.
    """
    if resource_tracker is None:  # pragma: no cover
        return
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across versions
        pass


_tracker_mutex = threading.Lock()


def _attach_segment(name: str):
    """Map an existing segment without any resource-tracker footprint.

    Unregistering after the attach is not enough: the tracker daemon's
    cache is a *set*, so two readers attaching the same segment collapse
    into one registration and the second matching unregister raises
    KeyError inside the daemon.  Suppressing the registration entirely
    leaves nothing to unbalance.
    """
    if shared_memory is None:  # pragma: no cover
        raise ConfigError("multiprocessing.shared_memory is unavailable")
    if resource_tracker is None:  # pragma: no cover
        return shared_memory.SharedMemory(name=name)
    with _tracker_mutex:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def unlink_segment(name: str) -> bool:
    """Unlink one segment by name; True when it existed.

    Goes straight to ``shm_unlink`` where available — attaching just to
    unlink would re-register the segment with the resource tracker.
    """
    _created.discard(name)
    if _posixshmem is not None:
        try:
            _posixshmem.shm_unlink("/" + name)
        except FileNotFoundError:
            return False
        return True
    if shared_memory is None:  # pragma: no cover
        return False
    try:  # pragma: no cover - non-POSIX fallback
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:  # pragma: no cover
        return False
    _untrack(name)  # pragma: no cover
    try:  # pragma: no cover
        seg.close()
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover
        pass
    return True  # pragma: no cover


def leaked_segments(prefix: str) -> List[str]:
    """Names under ``/dev/shm`` starting with ``prefix`` (leak checking)."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-POSIX fallback
        return []
    return sorted(e for e in os.listdir(root) if e.startswith(prefix))


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmPlane:
    """One dense plane living in (or attached from) a shm segment.

    Create with :meth:`export` (writer side — lays the plane's buffers into
    a fresh segment) or :meth:`attach` (reader side — zero-copy views over
    an existing segment).  :meth:`as_dense_plane` rebuilds a fully
    functional :class:`~repro.core.hub_index.DensePlane` over the attached
    arrays; the engine then runs the same flat-array search as in-process.
    """

    def __init__(self, shm, manifest: Dict, arrays: Dict[str, np.ndarray],
                 created: bool) -> None:
        self._shm = shm
        self._manifest = manifest
        self._arrays = arrays
        self._created = created
        self._plane = None

    # -- construction -------------------------------------------------------

    @classmethod
    def export(cls, plane, name: str, epoch: Optional[int] = None) -> "ShmPlane":
        """Serialize ``plane`` into a fresh segment called ``name``.

        The segment is fully written before this returns, so registering its
        name afterwards (the epoch board's job) can never expose a torn
        plane to a reader.
        """
        if shared_memory is None:  # pragma: no cover
            raise ConfigError("multiprocessing.shared_memory is unavailable")
        csr = plane.csr
        tables = plane.tables
        F, B = tables._stacked()
        buffers: List[Tuple[str, np.ndarray]] = [
            ("indptr", csr.indptr),
            ("indices", csr.indices),
            ("weights", csr.weights),
            ("ids", np.asarray(csr.ids, dtype=np.int64)),
            ("F", np.ascontiguousarray(F)),
        ]
        if csr.directed:
            buffers += [
                ("rev_indptr", csr.rev_indptr),
                ("rev_indices", csr.rev_indices),
                ("rev_weights", csr.rev_weights),
            ]
            if B is not F:
                buffers.append(("B", np.ascontiguousarray(B)))
        table: Dict[str, Dict] = {}
        offset = 0
        for buf_name, arr in buffers:
            offset = _aligned(offset)
            table[buf_name] = {
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "offset": offset,
            }
            offset += arr.nbytes
        manifest = {
            "version": _FORMAT_VERSION,
            "epoch": int(csr.epoch if epoch is None else epoch),
            "directed": bool(csr.directed),
            "n": csr.num_vertices,
            "hubs": [int(h) for h in tables.hubs],
            "buffers": table,
        }
        mbytes = json.dumps(manifest, separators=(",", ":")).encode("ascii")
        data_start = _aligned(16 + len(mbytes))
        total = max(data_start + offset, 1)
        shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        _created.add(name)
        _untrack(name)
        buf = shm.buf
        np.frombuffer(buf, dtype=np.uint64, count=2)[:] = (
            len(mbytes), data_start,
        )
        buf[16:16 + len(mbytes)] = mbytes
        arrays: Dict[str, np.ndarray] = {}
        for buf_name, arr in buffers:
            spec = table[buf_name]
            view = np.frombuffer(
                buf, dtype=arr.dtype, count=arr.size,
                offset=data_start + spec["offset"],
            ).reshape(arr.shape)
            view[...] = arr
            arrays[buf_name] = view
        return cls(shm, manifest, arrays, created=True)

    @classmethod
    def attach(cls, name: str) -> "ShmPlane":
        """Map an existing segment and wrap its buffers in numpy views.

        O(#buffers): no array is copied and no per-vertex work happens here.
        The views are marked read-only — readers share the writer's bytes.
        """
        shm = _attach_segment(name)
        buf = shm.buf
        header = np.frombuffer(buf, dtype=np.uint64, count=2)
        mlen, data_start = int(header[0]), int(header[1])
        manifest = json.loads(bytes(buf[16:16 + mlen]).decode("ascii"))
        if manifest.get("version") != _FORMAT_VERSION:
            shm.close()
            raise ConfigError(
                f"segment {name!r} has format version "
                f"{manifest.get('version')!r}, expected {_FORMAT_VERSION}"
            )
        arrays: Dict[str, np.ndarray] = {}
        for buf_name, spec in manifest["buffers"].items():
            count = 1
            for dim in spec["shape"]:
                count *= dim
            view = np.frombuffer(
                buf, dtype=np.dtype(spec["dtype"]), count=count,
                offset=data_start + spec["offset"],
            ).reshape(spec["shape"])
            view.flags.writeable = False
            arrays[buf_name] = view
        return cls(shm, manifest, arrays, created=False)

    # -- introspection ------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name.lstrip("/")

    @property
    def epoch(self) -> int:
        return self._manifest["epoch"]

    @property
    def directed(self) -> bool:
        return self._manifest["directed"]

    @property
    def nbytes(self) -> int:
        """Total segment size (header + manifest + buffers)."""
        return self._shm.size

    @property
    def manifest(self) -> Dict:
        return self._manifest

    def arrays(self) -> Dict[str, np.ndarray]:
        """The named buffer views (zero-copy into the segment)."""
        return dict(self._arrays)

    # -- plane reconstruction ----------------------------------------------

    def as_dense_plane(self):
        """A :class:`DensePlane` over the attached buffers (memoized).

        The CSR adopts the views directly; hub tables adopt the stacked
        matrices.  List caches (``out_lists`` / ``rows_as_lists``) build
        lazily at first query, as everywhere else.
        """
        if self._plane is None:
            from repro.core.hub_index import DenseHubTables, DensePlane
            from repro.graph.csr import CSRGraph

            a = self._arrays
            directed = self.directed
            csr = CSRGraph.from_arrays(
                indptr=a["indptr"],
                indices=a["indices"],
                weights=a["weights"],
                vertex_ids=a["ids"].tolist(),
                directed=directed,
                epoch=self.epoch,
                rev_indptr=a.get("rev_indptr"),
                rev_indices=a.get("rev_indices"),
                rev_weights=a.get("rev_weights"),
            )
            F = a["F"]
            B = a.get("B", F)
            tables = DenseHubTables.from_matrices(
                self._manifest["hubs"], F, B, ids=csr.ids, directed=directed,
            )
            self._plane = DensePlane(csr, tables)
        return self._plane

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drop the mapping (reader detach; creators keep the file alive).

        Any plane/arrays handed out must be dropped by the caller first;
        a still-exported buffer keeps the mapping open until GC.
        """
        self._plane = None
        self._arrays = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (creator-side cleanup)."""
        unlink_segment(self.name)

    def __repr__(self) -> str:
        kind = "created" if self._created else "attached"
        return (
            f"ShmPlane({self.name!r}, epoch={self.epoch}, "
            f"{self.nbytes} bytes, {kind})"
        )


class PlaneGraph:
    """Minimal traversal-protocol adapter over an attached CSR.

    Worker processes have no :class:`DynamicGraph` — only the plane.  The
    engine needs ``has_vertex`` for endpoint validation (the dense search
    itself walks the CSR directly); ``out_items``/``in_items`` complete the
    protocol for any dict-path fallback, translating through the id map.
    """

    __slots__ = ("_csr",)

    def __init__(self, csr) -> None:
        self._csr = csr

    @property
    def directed(self) -> bool:
        return self._csr.directed

    @property
    def num_vertices(self) -> int:
        return self._csr.num_vertices

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._csr.dense_map

    def out_items(self, vertex: int) -> Iterator[Tuple[int, float]]:
        csr = self._csr
        ids = csr.ids
        for u, w in csr.out_arcs(csr.dense_id(vertex)):
            yield ids[u], w

    def in_items(self, vertex: int) -> Iterator[Tuple[int, float]]:
        csr = self._csr
        ids = csr.ids
        for u, w in csr.in_arcs(csr.dense_id(vertex)):
            yield ids[u], w
