"""Dense planes over named shared-memory segments.

One :class:`~repro.core.hub_index.DensePlane` becomes one
``multiprocessing.shared_memory`` segment holding exactly the byte format
of :mod:`repro.serving.codec` — header, JSON manifest, then every buffer
at a 64-byte-aligned offset.  Export encodes straight into the freshly
created segment; attach decodes the mapped bytes into zero-copy numpy
views, so attaching costs O(#buffers) and the O(V+E) work (list caches,
residual rows) is deferred to first use exactly as on the in-process
plane.

Cleanup has three layers: explicit :meth:`ShmPlane.close`/``unlink``, the
epoch registry's refcounted unlink-on-last-detach (see
:mod:`repro.serving.epoch`), and a module-level registry of every segment
this process *created* that an ``atexit`` hook unlinks — so a crashed writer
never strands segments in ``/dev/shm``.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.serving.codec import (
    PlaneGraph,
    decode_plane,
    encode_plane_into,
    encoded_size,
    materialize_plane,
)

__all__ = [
    "PlaneGraph",
    "ShmPlane",
    "leaked_segments",
    "shm_available",
    "unlink_segment",
]

try:  # pragma: no cover - exercised only where shm is missing entirely
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None
    shared_memory = None

try:  # pragma: no cover - POSIX-only fast path for tracker-free unlinks
    import _posixshmem
except ImportError:  # pragma: no cover
    _posixshmem = None

# Every segment name this process created and has not yet unlinked.  The
# atexit sweep below is the backstop for writers that die without running
# their session teardown — /dev/shm must never accumulate orphans.
_created: set = set()


def _sweep_created() -> None:  # pragma: no cover - atexit path
    for name in list(_created):
        unlink_segment(name)


atexit.register(_sweep_created)


def shm_available() -> bool:
    """Whether POSIX shared memory actually works on this platform."""
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):
        return False
    try:
        probe.close()
        probe.unlink()
    except OSError:  # pragma: no cover
        pass
    return True


def _untrack(name: str) -> None:
    """Unregister a freshly *created* segment from the resource tracker.

    CPython < 3.13 registers every ``SharedMemory`` object with the
    resource tracker as if that process owned it (bpo-39959), and the
    tracker would then unlink live segments whenever any process exits.
    Ownership here is explicit — the refcount protocol and the atexit
    sweep do the unlinking — so nothing this module creates stays
    tracked.  Attaches go through :func:`_attach_segment`, which never
    registers in the first place.
    """
    if resource_tracker is None:  # pragma: no cover
        return
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across versions
        pass


_tracker_mutex = threading.Lock()


def _attach_segment(name: str):
    """Map an existing segment without any resource-tracker footprint.

    Unregistering after the attach is not enough: the tracker daemon's
    cache is a *set*, so two readers attaching the same segment collapse
    into one registration and the second matching unregister raises
    KeyError inside the daemon.  Suppressing the registration entirely
    leaves nothing to unbalance.
    """
    if shared_memory is None:  # pragma: no cover
        raise ConfigError("multiprocessing.shared_memory is unavailable")
    if resource_tracker is None:  # pragma: no cover
        return shared_memory.SharedMemory(name=name)
    with _tracker_mutex:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def unlink_segment(name: str) -> bool:
    """Unlink one segment by name; True when it existed.

    Goes straight to ``shm_unlink`` where available — attaching just to
    unlink would re-register the segment with the resource tracker.
    """
    _created.discard(name)
    if _posixshmem is not None:
        try:
            _posixshmem.shm_unlink("/" + name)
        except FileNotFoundError:
            return False
        return True
    if shared_memory is None:  # pragma: no cover
        return False
    try:  # pragma: no cover - non-POSIX fallback
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:  # pragma: no cover
        return False
    _untrack(name)  # pragma: no cover
    try:  # pragma: no cover
        seg.close()
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover
        pass
    return True  # pragma: no cover


def leaked_segments(prefix: str) -> List[str]:
    """Names under ``/dev/shm`` starting with ``prefix`` (leak checking)."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-POSIX fallback
        return []
    return sorted(e for e in os.listdir(root) if e.startswith(prefix))


class ShmPlane:
    """One dense plane living in (or attached from) a shm segment.

    Create with :meth:`export` (writer side — encodes the plane's buffers
    into a fresh segment) or :meth:`attach` (reader side — zero-copy views
    over an existing segment).  :meth:`as_dense_plane` rebuilds a fully
    functional :class:`~repro.core.hub_index.DensePlane` over the attached
    arrays; the engine then runs the same flat-array search as in-process.
    """

    def __init__(self, shm, manifest: Dict, arrays: Dict[str, np.ndarray],
                 created: bool) -> None:
        self._shm = shm
        self._manifest = manifest
        self._arrays = arrays
        self._created = created
        self._plane = None

    # -- construction -------------------------------------------------------

    @classmethod
    def export(cls, plane, name: str, epoch: Optional[int] = None) -> "ShmPlane":
        """Serialize ``plane`` into a fresh segment called ``name``.

        The segment is fully written before this returns, so registering its
        name afterwards (the epoch registry's job) can never expose a torn
        plane to a reader.
        """
        if shared_memory is None:  # pragma: no cover
            raise ConfigError("multiprocessing.shared_memory is unavailable")
        total = encoded_size(plane, epoch)
        shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        _created.add(name)
        _untrack(name)
        manifest, arrays = encode_plane_into(plane, shm.buf, epoch=epoch)
        return cls(shm, manifest, arrays, created=True)

    @classmethod
    def attach(cls, name: str) -> "ShmPlane":
        """Map an existing segment and wrap its buffers in numpy views.

        O(#buffers): no array is copied and no per-vertex work happens here.
        The views are marked read-only — readers share the writer's bytes.
        """
        shm = _attach_segment(name)
        try:
            manifest, arrays = decode_plane(shm.buf)
        except ConfigError:
            shm.close()
            raise
        return cls(shm, manifest, arrays, created=False)

    # -- introspection ------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name.lstrip("/")

    @property
    def epoch(self) -> int:
        return self._manifest["epoch"]

    @property
    def directed(self) -> bool:
        return self._manifest["directed"]

    @property
    def nbytes(self) -> int:
        """Total segment size (header + manifest + buffers)."""
        return self._shm.size

    @property
    def manifest(self) -> Dict:
        return self._manifest

    def arrays(self) -> Dict[str, np.ndarray]:
        """The named buffer views (zero-copy into the segment)."""
        return dict(self._arrays)

    # -- plane reconstruction ----------------------------------------------

    def as_dense_plane(self):
        """A :class:`DensePlane` over the attached buffers (memoized)."""
        if self._plane is None:
            self._plane = materialize_plane(self._manifest, self._arrays)
        return self._plane

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drop the mapping (reader detach; creators keep the file alive).

        Any plane/arrays handed out must be dropped by the caller first;
        a still-exported buffer keeps the mapping open until GC.
        """
        self._plane = None
        self._arrays = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (creator-side cleanup)."""
        unlink_segment(self.name)

    def __repr__(self) -> str:
        kind = "created" if self._created else "attached"
        return (
            f"ShmPlane({self.name!r}, epoch={self.epoch}, "
            f"{self.nbytes} bytes, {kind})"
        )
