"""Transport-agnostic dense-plane (de)serialization.

One :class:`~repro.core.hub_index.DensePlane` becomes one self-describing
byte blob laid out as::

    [0:8)    uint64  manifest length L
    [8:16)   uint64  data_start (aligned offset of the first buffer)
    [16:16+L)        manifest JSON (epoch, directedness, hubs, buffer table)
    [data_start:...) the buffers themselves, each at a 64-byte-aligned
                     offset *relative to data_start*

The manifest records ``{name: {dtype, shape, offset}}`` for every buffer —
CSR ``indptr/indices/weights`` (plus the ``rev_*`` triple when directed),
the dense→caller id map, and the stacked hub cost matrices ``F`` (and ``B``
when directed and distinct) — so decoding needs nothing but the bytes:
parse the manifest, wrap each buffer in a zero-copy numpy view.

Both transports speak this format.  The shm transport encodes straight
into a ``shared_memory`` segment's buffer (readers map the same bytes);
the TCP transport encodes into a ``bytearray`` once per publish, ships it
over the socket, and remote readers decode their private copy.  Either
way :func:`materialize_plane` rebuilds a fully functional ``DensePlane``
over the decoded views in O(#buffers); the O(V+E) work (list caches,
residual rows) is deferred to first use exactly as on the in-process
plane.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigError

ALIGN = 64
FORMAT_VERSION = 1
_HEADER_BYTES = 16


def aligned(offset: int) -> int:
    """Round ``offset`` up to the next :data:`ALIGN`-byte boundary."""
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def plane_buffers(plane) -> List[Tuple[str, np.ndarray]]:
    """The named flat arrays a plane is made of, in canonical order.

    Order matters only for layout determinism (identical planes encode to
    identical bytes, so digests are stable); decoding goes by name.
    """
    csr = plane.csr
    tables = plane.tables
    F, B = tables._stacked()
    buffers: List[Tuple[str, np.ndarray]] = [
        ("indptr", csr.indptr),
        ("indices", csr.indices),
        ("weights", csr.weights),
        ("ids", np.asarray(csr.ids, dtype=np.int64)),
        ("F", np.ascontiguousarray(F)),
    ]
    if csr.directed:
        buffers += [
            ("rev_indptr", csr.rev_indptr),
            ("rev_indices", csr.rev_indices),
            ("rev_weights", csr.rev_weights),
        ]
        if B is not F:
            buffers.append(("B", np.ascontiguousarray(B)))
    return buffers


def plane_manifest(plane, epoch=None,
                   buffers=None) -> Tuple[Dict, bytes, int]:
    """Manifest dict, its JSON encoding, and the total encoded size.

    The size covers header + manifest + aligned buffers — callers presize
    their sink (a shm segment, a bytearray) with it before encoding.
    """
    if buffers is None:
        buffers = plane_buffers(plane)
    csr = plane.csr
    table: Dict[str, Dict] = {}
    offset = 0
    for buf_name, arr in buffers:
        offset = aligned(offset)
        table[buf_name] = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "offset": offset,
        }
        offset += arr.nbytes
    manifest = {
        "version": FORMAT_VERSION,
        "epoch": int(csr.epoch if epoch is None else epoch),
        "directed": bool(csr.directed),
        "n": csr.num_vertices,
        "hubs": [int(h) for h in plane.tables.hubs],
        "buffers": table,
    }
    mbytes = json.dumps(manifest, separators=(",", ":")).encode("ascii")
    data_start = aligned(_HEADER_BYTES + len(mbytes))
    total = max(data_start + offset, 1)
    return manifest, mbytes, total


def encoded_size(plane, epoch=None) -> int:
    """Bytes :func:`encode_plane_into` will write for ``plane``."""
    return plane_manifest(plane, epoch)[2]


def encode_plane_into(plane, sink,
                      epoch=None) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Serialize ``plane`` into a writable buffer (shm segment, bytearray).

    ``sink`` must support the buffer protocol and be at least
    :func:`encoded_size` bytes long.  Returns the manifest plus the
    writer-side views over the sink's buffers (the shm exporter hands
    these out so tests can mutate shared bytes in place); every buffer
    offset is 64-byte aligned so the views keep the alignment the
    vectorized kernels expect.
    """
    buffers = plane_buffers(plane)
    manifest, mbytes, total = plane_manifest(plane, epoch, buffers=buffers)
    buf = memoryview(sink)
    if len(buf) < total:
        raise ConfigError(
            f"plane sink too small: {len(buf)} bytes < {total} needed"
        )
    data_start = aligned(_HEADER_BYTES + len(mbytes))
    np.frombuffer(buf, dtype=np.uint64, count=2)[:] = (len(mbytes), data_start)
    buf[_HEADER_BYTES:_HEADER_BYTES + len(mbytes)] = mbytes
    table = manifest["buffers"]
    arrays: Dict[str, np.ndarray] = {}
    for buf_name, arr in buffers:
        spec = table[buf_name]
        view = np.frombuffer(
            buf, dtype=arr.dtype, count=arr.size,
            offset=data_start + spec["offset"],
        ).reshape(arr.shape)
        view[...] = arr
        arrays[buf_name] = view
    return manifest, arrays


def encode_plane(plane, epoch=None) -> bytes:
    """Serialize ``plane`` into a fresh bytes object (the TCP payload)."""
    sink = bytearray(encoded_size(plane, epoch))
    encode_plane_into(plane, sink, epoch=epoch)
    return bytes(sink)


def decode_plane(source,
                 writable: bool = False) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Parse an encoded plane into ``(manifest, named zero-copy views)``.

    ``source`` is any buffer holding :func:`encode_plane` output — a
    mapped shm segment or fetched socket bytes.  O(#buffers): no array is
    copied.  Views are read-only unless ``writable`` (only the shm writer
    asks for writable views, over a segment it owns).
    """
    buf = memoryview(source)
    header = np.frombuffer(buf, dtype=np.uint64, count=2)
    mlen, data_start = int(header[0]), int(header[1])
    manifest = json.loads(
        bytes(buf[_HEADER_BYTES:_HEADER_BYTES + mlen]).decode("ascii")
    )
    if manifest.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"encoded plane has format version {manifest.get('version')!r}, "
            f"expected {FORMAT_VERSION}"
        )
    arrays: Dict[str, np.ndarray] = {}
    for buf_name, spec in manifest["buffers"].items():
        count = 1
        for dim in spec["shape"]:
            count *= dim
        view = np.frombuffer(
            buf, dtype=np.dtype(spec["dtype"]), count=count,
            offset=data_start + spec["offset"],
        ).reshape(spec["shape"])
        if not writable:
            view.flags.writeable = False
        arrays[buf_name] = view
    return manifest, arrays


def materialize_plane(manifest: Dict, arrays: Dict[str, np.ndarray]):
    """A :class:`DensePlane` over decoded buffers, O(#buffers).

    The CSR adopts the views directly; hub tables adopt the stacked
    matrices.  List caches (``out_lists`` / ``rows_as_lists``) build
    lazily at first query, as everywhere else.
    """
    from repro.core.hub_index import DenseHubTables, DensePlane
    from repro.graph.csr import CSRGraph

    directed = manifest["directed"]
    csr = CSRGraph.from_arrays(
        indptr=arrays["indptr"],
        indices=arrays["indices"],
        weights=arrays["weights"],
        vertex_ids=arrays["ids"].tolist(),
        directed=directed,
        epoch=manifest["epoch"],
        rev_indptr=arrays.get("rev_indptr"),
        rev_indices=arrays.get("rev_indices"),
        rev_weights=arrays.get("rev_weights"),
    )
    F = arrays["F"]
    B = arrays.get("B", F)
    tables = DenseHubTables.from_matrices(
        manifest["hubs"], F, B, ids=csr.ids, directed=directed,
    )
    return DensePlane(csr, tables)


def plane_digest(payload) -> str:
    """Content digest of an encoded plane (what readers verify on fetch)."""
    return hashlib.sha256(memoryview(payload)).hexdigest()


class PlaneGraph:
    """Minimal traversal-protocol adapter over a decoded CSR.

    Reader processes have no :class:`DynamicGraph` — only the plane.  The
    engine needs ``has_vertex`` for endpoint validation (the dense search
    itself walks the CSR directly); ``out_items``/``in_items`` complete the
    protocol for any dict-path fallback, translating through the id map.
    """

    __slots__ = ("_csr",)

    def __init__(self, csr) -> None:
        self._csr = csr

    @property
    def directed(self) -> bool:
        return self._csr.directed

    @property
    def num_vertices(self) -> int:
        return self._csr.num_vertices

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._csr.dense_map

    def out_items(self, vertex: int) -> Iterator[Tuple[int, float]]:
        csr = self._csr
        ids = csr.ids
        for u, w in csr.out_arcs(csr.dense_id(vertex)):
            yield ids[u], w

    def in_items(self, vertex: int) -> Iterator[Tuple[int, float]]:
        csr = self._csr
        ids = csr.ids
        for u, w in csr.in_arcs(csr.dense_id(vertex)):
            yield ids[u], w
