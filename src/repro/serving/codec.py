"""Transport-agnostic dense-plane (de)serialization.

One :class:`~repro.core.hub_index.DensePlane` becomes one self-describing
byte blob laid out as::

    [0:8)    uint64  manifest length L
    [8:16)   uint64  data_start (aligned offset of the first buffer)
    [16:16+L)        manifest JSON (epoch, directedness, hubs, buffer table)
    [data_start:...) the buffers themselves, each at a 64-byte-aligned
                     offset *relative to data_start*

The manifest records ``{name: {dtype, shape, offset, chunks}}`` for every
buffer — CSR ``indptr/indices/weights`` (plus the ``rev_*`` triple when
directed), the dense→caller id map, and the stacked hub cost matrices
``F`` (and ``B`` when directed and distinct) — so decoding needs nothing
but the bytes: parse the manifest, wrap each buffer in a zero-copy numpy
view.

**Chunk addressing.**  Every buffer is additionally divided into fixed
:data:`CHUNK_BYTES` chunks and the manifest records a short content
digest per chunk.  Two manifests therefore describe not just *what* their
planes contain but *which bytes differ*: :func:`diff_manifests` yields
per-buffer dirty byte ranges, :func:`encode_plane_delta` packs exactly
those ranges (plus the new manifest) into a delta frame, and
:func:`apply_plane_delta` composes a delta onto the base payload to
reproduce the target payload **bit-identically** — same bytes, same
:func:`plane_digest` — verified on every apply.  A buffer whose shape or
dtype changed (CSR growth, a dtype migration) falls back to a
full-buffer patch inside the same frame; a delta between planes with
identical buffers reduces to a header-only frame carrying just the new
manifest.  This is what makes remote epoch visibility O(Δ): a reader
holding the previous payload fetches only the churned chunks.

Both transports speak the full format.  The shm transport encodes
straight into a ``shared_memory`` segment's buffer (readers map the same
bytes); the TCP transport encodes into a ``bytearray`` once per publish,
ships it (or a delta against the reader's cached base) over the socket,
and remote readers decode their private copy.  Either way
:func:`materialize_plane` rebuilds a fully functional ``DensePlane`` over
the decoded views in O(#buffers); the O(V+E) work (list caches, residual
rows) is deferred to first use exactly as on the in-process plane.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

ALIGN = 64
FORMAT_VERSION = 2
_HEADER_BYTES = 16

#: fixed chunk size for the per-buffer dirty-range tables.  Small enough
#: that a handful of churned vertices dirty a handful of chunks, large
#: enough that the digest table stays ~2% of the payload.
CHUNK_BYTES = 1024

#: hex digits of the per-chunk blake2b digest kept in the manifest
_CHUNK_DIGEST_BYTES = 8


def aligned(offset: int) -> int:
    """Round ``offset`` up to the next :data:`ALIGN`-byte boundary."""
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def chunk_digests(data, chunk_bytes: int = CHUNK_BYTES) -> List[str]:
    """Per-chunk content digests of one buffer's bytes.

    The last chunk may be short; an empty buffer has no chunks.  blake2b
    (8-byte digests) is collision-safe for what the table is used for —
    deciding whether a specific chunk changed between two *known* adjacent
    versions — and hashes the whole plane in single-digit milliseconds.
    """
    mv = memoryview(data)
    if mv.ndim != 1 or mv.format != "B":
        mv = mv.cast("B")
    return [
        hashlib.blake2b(mv[i:i + chunk_bytes],
                        digest_size=_CHUNK_DIGEST_BYTES).hexdigest()
        for i in range(0, len(mv), chunk_bytes)
    ]


def plane_buffers(plane) -> List[Tuple[str, np.ndarray]]:
    """The named flat arrays a plane is made of, in canonical order.

    Order matters only for layout determinism (identical planes encode to
    identical bytes, so digests are stable); decoding goes by name.
    """
    csr = plane.csr
    tables = plane.tables
    F, B = tables._stacked()
    buffers: List[Tuple[str, np.ndarray]] = [
        ("indptr", csr.indptr),
        ("indices", csr.indices),
        ("weights", csr.weights),
        ("ids", np.asarray(csr.ids, dtype=np.int64)),
        ("F", np.ascontiguousarray(F)),
    ]
    if csr.directed:
        buffers += [
            ("rev_indptr", csr.rev_indptr),
            ("rev_indices", csr.rev_indices),
            ("rev_weights", csr.rev_weights),
        ]
        if B is not F:
            buffers.append(("B", np.ascontiguousarray(B)))
    return buffers


def buffers_manifest(buffers: Sequence[Tuple[str, np.ndarray]],
                     meta: Optional[Dict] = None) -> Tuple[Dict, bytes, int]:
    """Manifest dict, its JSON encoding, and the total encoded size.

    The generalized core of :func:`plane_manifest`: lays out any named
    buffer sequence (offset table + per-chunk digest table) under
    arbitrary ``meta`` keys.  The size covers header + manifest + aligned
    buffers — callers presize their sink (a shm segment, a bytearray)
    with it before encoding.
    """
    table: Dict[str, Dict] = {}
    offset = 0
    for buf_name, arr in buffers:
        arr = np.ascontiguousarray(arr)
        offset = aligned(offset)
        table[buf_name] = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "offset": offset,
            "chunks": chunk_digests(arr),
        }
        offset += arr.nbytes
    manifest = {"version": FORMAT_VERSION}
    manifest.update(meta or {})
    manifest["chunk_bytes"] = CHUNK_BYTES
    manifest["buffers"] = table
    mbytes = json.dumps(manifest, separators=(",", ":")).encode("ascii")
    data_start = aligned(_HEADER_BYTES + len(mbytes))
    total = max(data_start + offset, 1)
    return manifest, mbytes, total


def plane_manifest(plane, epoch=None,
                   buffers=None) -> Tuple[Dict, bytes, int]:
    """Manifest dict, its JSON encoding, and the total encoded size."""
    if buffers is None:
        buffers = plane_buffers(plane)
    csr = plane.csr
    return buffers_manifest(buffers, meta={
        "epoch": int(csr.epoch if epoch is None else epoch),
        "directed": bool(csr.directed),
        "n": csr.num_vertices,
        "hubs": [int(h) for h in plane.tables.hubs],
    })


def encoded_size(plane, epoch=None) -> int:
    """Bytes :func:`encode_plane_into` will write for ``plane``."""
    return plane_manifest(plane, epoch)[2]


def encode_buffers_into(buffers: Sequence[Tuple[str, np.ndarray]], sink,
                        meta: Optional[Dict] = None,
                        ) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Serialize named buffers into a writable sink (see
    :func:`encode_plane_into`)."""
    manifest, mbytes, total = buffers_manifest(buffers, meta=meta)
    buf = memoryview(sink)
    if len(buf) < total:
        raise ConfigError(
            f"plane sink too small: {len(buf)} bytes < {total} needed"
        )
    data_start = aligned(_HEADER_BYTES + len(mbytes))
    np.frombuffer(buf, dtype=np.uint64, count=2)[:] = (len(mbytes), data_start)
    buf[_HEADER_BYTES:_HEADER_BYTES + len(mbytes)] = mbytes
    table = manifest["buffers"]
    arrays: Dict[str, np.ndarray] = {}
    for buf_name, arr in buffers:
        spec = table[buf_name]
        view = np.frombuffer(
            buf, dtype=arr.dtype, count=arr.size,
            offset=data_start + spec["offset"],
        ).reshape(arr.shape)
        view[...] = arr
        arrays[buf_name] = view
    return manifest, arrays


def encode_plane_into(plane, sink,
                      epoch=None) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Serialize ``plane`` into a writable buffer (shm segment, bytearray).

    ``sink`` must support the buffer protocol and be at least
    :func:`encoded_size` bytes long.  Returns the manifest plus the
    writer-side views over the sink's buffers (the shm exporter hands
    these out so tests can mutate shared bytes in place); every buffer
    offset is 64-byte aligned so the views keep the alignment the
    vectorized kernels expect.
    """
    csr = plane.csr
    return encode_buffers_into(plane_buffers(plane), sink, meta={
        "epoch": int(csr.epoch if epoch is None else epoch),
        "directed": bool(csr.directed),
        "n": csr.num_vertices,
        "hubs": [int(h) for h in plane.tables.hubs],
    })


def encode_buffers(buffers: Sequence[Tuple[str, np.ndarray]],
                   meta: Optional[Dict] = None) -> bytes:
    """Serialize named buffers into a fresh bytes object."""
    sink = bytearray(buffers_manifest(buffers, meta=meta)[2])
    encode_buffers_into(buffers, sink, meta=meta)
    return bytes(sink)


def encode_plane(plane, epoch=None) -> bytes:
    """Serialize ``plane`` into a fresh bytes object (the TCP payload)."""
    sink = bytearray(encoded_size(plane, epoch))
    encode_plane_into(plane, sink, epoch=epoch)
    return bytes(sink)


def payload_manifest(payload) -> Dict:
    """Parse just the manifest out of an encoded plane payload."""
    buf = memoryview(payload)
    mlen = int(np.frombuffer(buf, dtype=np.uint64, count=1)[0])
    return json.loads(
        bytes(buf[_HEADER_BYTES:_HEADER_BYTES + mlen]).decode("ascii")
    )


def decode_plane(source,
                 writable: bool = False) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Parse an encoded plane into ``(manifest, named zero-copy views)``.

    ``source`` is any buffer holding :func:`encode_plane` output — a
    mapped shm segment or fetched socket bytes.  O(#buffers): no array is
    copied.  Views are read-only unless ``writable`` (only the shm writer
    asks for writable views, over a segment it owns).
    """
    buf = memoryview(source)
    header = np.frombuffer(buf, dtype=np.uint64, count=2)
    mlen, data_start = int(header[0]), int(header[1])
    manifest = json.loads(
        bytes(buf[_HEADER_BYTES:_HEADER_BYTES + mlen]).decode("ascii")
    )
    if manifest.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"encoded plane has format version {manifest.get('version')!r}, "
            f"expected {FORMAT_VERSION}"
        )
    arrays: Dict[str, np.ndarray] = {}
    for buf_name, spec in manifest["buffers"].items():
        count = 1
        for dim in spec["shape"]:
            count *= dim
        view = np.frombuffer(
            buf, dtype=np.dtype(spec["dtype"]), count=count,
            offset=data_start + spec["offset"],
        ).reshape(spec["shape"])
        if not writable:
            view.flags.writeable = False
        arrays[buf_name] = view
    return manifest, arrays


def materialize_plane(manifest: Dict, arrays: Dict[str, np.ndarray]):
    """A :class:`DensePlane` over decoded buffers, O(#buffers).

    The CSR adopts the views directly; hub tables adopt the stacked
    matrices.  List caches (``out_lists`` / ``rows_as_lists``) build
    lazily at first query, as everywhere else.
    """
    from repro.core.hub_index import DenseHubTables, DensePlane
    from repro.graph.csr import CSRGraph

    directed = manifest["directed"]
    csr = CSRGraph.from_arrays(
        indptr=arrays["indptr"],
        indices=arrays["indices"],
        weights=arrays["weights"],
        vertex_ids=arrays["ids"].tolist(),
        directed=directed,
        epoch=manifest["epoch"],
        rev_indptr=arrays.get("rev_indptr"),
        rev_indices=arrays.get("rev_indices"),
        rev_weights=arrays.get("rev_weights"),
    )
    F = arrays["F"]
    B = arrays.get("B", F)
    tables = DenseHubTables.from_matrices(
        manifest["hubs"], F, B, ids=csr.ids, directed=directed,
    )
    return DensePlane(csr, tables)


def plane_digest(payload) -> str:
    """Content digest of an encoded plane (what readers verify on fetch)."""
    return hashlib.sha256(memoryview(payload)).hexdigest()


# ---------------------------------------------------------------------------
# Delta frames: chunk-addressed diffs between two encoded planes
# ---------------------------------------------------------------------------


def _buffer_nbytes(spec: Dict) -> int:
    count = 1
    for dim in spec["shape"]:
        count *= dim
    return count * np.dtype(spec["dtype"]).itemsize


def diff_manifests(base: Dict, target: Dict) -> Dict[str, Optional[
        List[Tuple[int, int]]]]:
    """Per-buffer dirty byte ranges between two chunk-addressed manifests.

    For every buffer in ``target``: ``None`` means the whole buffer must
    be resent (new buffer, or shape/dtype changed so chunk positions are
    incomparable); otherwise a list of coalesced ``(start, end)`` byte
    ranges — relative to the buffer — covering exactly the chunks whose
    digests differ (empty when the buffer is bit-identical).  Buffers
    present only in ``base`` simply vanish: the target manifest does not
    mention them.
    """
    out: Dict[str, Optional[List[Tuple[int, int]]]] = {}
    base_table = base.get("buffers", {})
    comparable = base.get("chunk_bytes") == target.get("chunk_bytes")
    for name, spec in target["buffers"].items():
        old = base_table.get(name)
        if (not comparable or old is None
                or old["dtype"] != spec["dtype"]
                or old["shape"] != spec["shape"]):
            out[name] = None
            continue
        nbytes = _buffer_nbytes(spec)
        chunk = target["chunk_bytes"]
        ranges: List[Tuple[int, int]] = []
        for i, (was, now) in enumerate(zip(old["chunks"], spec["chunks"])):
            if was == now:
                continue
            start = i * chunk
            end = min(start + chunk, nbytes)
            if ranges and ranges[-1][1] == start:
                ranges[-1] = (ranges[-1][0], end)
            else:
                ranges.append((start, end))
        out[name] = ranges
    return out


def encode_plane_delta(base_payload, target_payload,
                       base_digest: Optional[str] = None,
                       target_digest: Optional[str] = None) -> bytes:
    """A delta frame turning ``base_payload`` into ``target_payload``.

    Frame layout::

        [0:8)      uint64  header JSON length H
        [8:8+H)            header JSON: kind, base/target digests, total
                           target size, manifest_len, data_start, and the
                           patch table [[buffer, start, end], ...]
        [8+H:...)          the target manifest JSON bytes, verbatim
        [...:end)          the patched byte ranges, concatenated in patch
                           table order

    Patches address bytes *relative to each buffer*; a ``(0, nbytes)``
    patch is the full-buffer fallback (new buffer, shape/dtype change).
    Composing the frame onto the base payload with
    :func:`apply_plane_delta` reproduces the target payload bit-identically.
    """
    base_mv = memoryview(base_payload)
    target_mv = memoryview(target_payload)
    base_manifest = payload_manifest(base_mv)
    header = np.frombuffer(target_mv, dtype=np.uint64, count=2)
    manifest_len, data_start = int(header[0]), int(header[1])
    manifest_bytes = bytes(
        target_mv[_HEADER_BYTES:_HEADER_BYTES + manifest_len]
    )
    target_manifest = json.loads(manifest_bytes.decode("ascii"))
    dirty = diff_manifests(base_manifest, target_manifest)
    patches: List[List] = []
    pieces: List[bytes] = []
    for name, spec in target_manifest["buffers"].items():
        ranges = dirty[name]
        if ranges is None:
            ranges = [(0, _buffer_nbytes(spec))]
        for start, end in ranges:
            if end <= start:
                continue
            patches.append([name, int(start), int(end)])
            lo = data_start + spec["offset"] + start
            pieces.append(bytes(target_mv[lo:lo + (end - start)]))
    head = {
        "version": FORMAT_VERSION,
        "kind": "plane-delta",
        "base": base_digest or plane_digest(base_mv),
        "target": target_digest or plane_digest(target_mv),
        "total": len(target_mv),
        "manifest_len": manifest_len,
        "data_start": data_start,
        "patches": patches,
    }
    hbytes = json.dumps(head, separators=(",", ":")).encode("ascii")
    out = bytearray()
    out += len(hbytes).to_bytes(8, "big")
    out += hbytes
    out += manifest_bytes
    for piece in pieces:
        out += piece
    return bytes(out)


def delta_header(delta) -> Dict:
    """Parse a delta frame's header (base/target digests, patch table)."""
    mv = memoryview(delta)
    hlen = int.from_bytes(bytes(mv[:8]), "big")
    head = json.loads(bytes(mv[8:8 + hlen]).decode("ascii"))
    if head.get("kind") != "plane-delta":
        raise ConfigError("frame is not a plane delta")
    if head.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"plane delta has format version {head.get('version')!r}, "
            f"expected {FORMAT_VERSION}"
        )
    return head


def delta_patch_bytes(delta) -> int:
    """Buffer bytes a delta frame actually carries (excluding headers)."""
    head = delta_header(delta)
    return sum(end - start for _name, start, end in head["patches"])


def apply_plane_delta(base_payload, delta,
                      base_digest: Optional[str] = None) -> bytes:
    """Compose a delta frame onto its base payload.

    Returns the target payload, byte-for-byte identical to the full
    encoding the delta was derived from: the frame's manifest bytes are
    written verbatim, clean buffers are copied from the base at their
    (possibly shifted) target offsets, patched ranges come from the
    frame, and inter-buffer alignment gaps are zero on both sides by
    construction.  The composed payload's :func:`plane_digest` is
    verified against the frame's ``target`` digest — a mismatch (wrong
    base, corrupt frame) raises :class:`ConfigError` rather than ever
    yielding a plausible-but-wrong plane.
    """
    base_mv = memoryview(base_payload)
    head = delta_header(delta)
    if base_digest is None:
        base_digest = plane_digest(base_mv)
    if base_digest != head["base"]:
        raise ConfigError(
            f"delta base mismatch: frame expects {head['base'][:12]}…, "
            f"composing onto {base_digest[:12]}…"
        )
    mv = memoryview(delta)
    hlen = int.from_bytes(bytes(mv[:8]), "big")
    manifest_len = head["manifest_len"]
    manifest_bytes = bytes(mv[8 + hlen:8 + hlen + manifest_len])
    target_manifest = json.loads(manifest_bytes.decode("ascii"))
    base_manifest = payload_manifest(base_mv)
    base_start = int(np.frombuffer(base_mv, dtype=np.uint64, count=2)[1])
    data_start = head["data_start"]

    out = bytearray(head["total"])
    np.frombuffer(out, dtype=np.uint64, count=2)[:] = (
        manifest_len, data_start,
    )
    out[_HEADER_BYTES:_HEADER_BYTES + manifest_len] = manifest_bytes

    fully_patched = {
        name for name, start, end in head["patches"]
        if start == 0 and end >= _buffer_nbytes(
            target_manifest["buffers"][name])
    }
    base_table = base_manifest.get("buffers", {})
    for name, spec in target_manifest["buffers"].items():
        if name in fully_patched:
            continue
        old = base_table.get(name)
        if (old is None or old["dtype"] != spec["dtype"]
                or old["shape"] != spec["shape"]):
            raise ConfigError(
                f"delta frame leaves buffer {name!r} unpatched but the "
                "base has no matching buffer to copy it from"
            )
        nbytes = _buffer_nbytes(spec)
        src = base_start + old["offset"]
        dst = data_start + spec["offset"]
        out[dst:dst + nbytes] = base_mv[src:src + nbytes]

    cursor = 8 + hlen + manifest_len
    for name, start, end in head["patches"]:
        spec = target_manifest["buffers"][name]
        size = end - start
        dst = data_start + spec["offset"] + start
        out[dst:dst + size] = mv[cursor:cursor + size]
        cursor += size

    composed = bytes(out)
    if plane_digest(composed) != head["target"]:
        raise ConfigError(
            "delta composition digest mismatch: the composed plane is not "
            "bit-identical to the full encoding"
        )
    return composed


class PlaneGraph:
    """Minimal traversal-protocol adapter over a decoded CSR.

    Reader processes have no :class:`DynamicGraph` — only the plane.  The
    engine needs ``has_vertex`` for endpoint validation (the dense search
    itself walks the CSR directly); ``out_items``/``in_items`` complete the
    protocol for any dict-path fallback, translating through the id map.
    """

    __slots__ = ("_csr",)

    def __init__(self, csr) -> None:
        self._csr = csr

    @property
    def directed(self) -> bool:
        return self._csr.directed

    @property
    def num_vertices(self) -> int:
        return self._csr.num_vertices

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._csr.dense_map

    def out_items(self, vertex: int) -> Iterator[Tuple[int, float]]:
        csr = self._csr
        ids = csr.ids
        for u, w in csr.out_arcs(csr.dense_id(vertex)):
            yield ids[u], w

    def in_items(self, vertex: int) -> Iterator[Tuple[int, float]]:
        csr = self._csr
        ids = csr.ids
        for u, w in csr.in_arcs(csr.dense_id(vertex)):
            yield ids[u], w
