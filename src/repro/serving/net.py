"""TCP plane transport: fetch-on-publish serving across host boundaries.

The shm transport needs readers on the writer's box.  This module moves
the same epoch-handoff protocol over a small length-prefixed TCP wire so
reader fleets anywhere can serve published epochs:

* the writer owns a :class:`PlaneServer` — a background accept thread plus
  one thread per reader connection — holding a
  :class:`~repro.serving.registry.LocalRegistry` slot table and, per LIVE
  or still-referenced slot, the epoch's plane encoded once by
  :mod:`repro.serving.codec` (with its SHA-256 digest);
* on publish the writer registers ``(epoch, manifest, digest)``; readers
  polling the generation see the bump, ``acquire`` the slot, and — only
  when the digest is not already in their bounded local cache — ``fetch``
  the payload **once**, verify the digest, and decode it into a private
  :class:`~repro.core.hub_index.DensePlane` (fetch-on-publish: the bytes
  cross the socket once per reader per epoch, never per query);
* a **delta-enabled** reader instead sends ``fetch_delta`` naming the
  digest of the newest payload it already holds; the server diffs the two
  planes' chunk tables (:func:`~repro.serving.codec.encode_plane_delta`
  over its last ``cache_planes`` published payloads) and ships only the
  churned chunks — O(Δ) bytes per epoch instead of O(|plane|).  The
  reader composes the delta onto a *copy* of its cached payload and the
  composed plane's digest is verified before swap-in; when the base was
  evicted (or composition fails) the server/reader fall back to a full
  frame, so delta mode is never less correct than full mode;
* queries then run entirely locally on the cached plane — the same
  ``_search_dense`` hot path, bit-identical to shm workers — and the
  refcount protocol retires old epochs exactly as on the board.  A reader
  whose connection drops (crash, SIGKILL) is reaped by its connection
  thread, returning its refcount.

Wire format: every message is an 8-byte big-endian length followed by a
JSON body; a ``fetch`` (or ``fetch_delta``) response is followed by one
raw frame carrying the encoded plane (or delta frame).  Ops: ``hello``,
``poll``, ``acquire``, ``release``, ``fetch``, ``fetch_delta``,
``stats``.
"""

from __future__ import annotations

import json
import os
import random
import socket
import struct
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    ConfigError,
    CorruptFrameError,
    DeadlineExceededError,
    PeerClosedError,
    QueryError,
)
from repro.serving.faults import Backoff
from repro.serving.codec import (
    PlaneGraph,
    apply_plane_delta,
    decode_plane,
    delta_header,
    encode_plane,
    encode_plane_delta,
    materialize_plane,
    plane_digest,
)
from repro.serving.registry import DEFAULT_SLOTS, LocalRegistry
from repro.serving.transport import (
    PlaneClient,
    PlaneLease,
    PlaneTransport,
    ReaderSpec,
)

_LEN = struct.Struct(">Q")

#: planes a reader keeps decoded locally; re-acquiring a cached digest
#: costs one control round-trip and zero payload bytes.
DEFAULT_CACHE_PLANES = 4

#: reconnect attempts per op before the client gives up (the op's
#: deadline can cut retries shorter; see DEFAULT_OP_TIMEOUT)
DEFAULT_RETRY = 4

#: initial / maximum reconnect backoff in seconds (exponential, jittered)
DEFAULT_BACKOFF = 0.05
DEFAULT_MAX_BACKOFF = 2.0

#: per-op deadline in seconds: no client op — including every reconnect
#: attempt and backoff sleep inside it — may run longer than this
DEFAULT_OP_TIMEOUT = 30.0

#: a frame length beyond this is treated as stream corruption rather
#: than waited out (a flipped bit in a length prefix reads as exabytes)
_MAX_FRAME = 1 << 34


def net_available() -> bool:
    """Whether loopback TCP sockets actually work in this environment."""
    try:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            probe = socket.create_connection(
                listener.getsockname(), timeout=1.0
            )
            probe.close()
        finally:
            listener.close()
    except OSError:
        return False
    return True


# -- framing ----------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_frame(sock: socket.socket) -> Optional[bytes]:
    head = _recv_exact(sock, _LEN.size)
    if head is None:
        return None
    return _recv_exact(sock, _LEN.unpack(head)[0])


def _send_msg(sock: socket.socket, obj: dict) -> None:
    _send_frame(sock, json.dumps(obj, separators=(",", ":")).encode("ascii"))


def _recv_msg(sock: socket.socket) -> Optional[dict]:
    frame = _recv_frame(sock)
    if frame is None:
        return None
    return json.loads(frame.decode("ascii"))


# -- writer side ------------------------------------------------------------


class PlaneServer:
    """Writer-owned TCP endpoint: registry mutations + payload fetches.

    One thread accepts connections; each connection gets a thread that
    drains its ops.  All registry and payload state is mutated under the
    registry's RLock, so eviction (retired slot, refcount zero) can never
    interleave with a fetch — an acquired slot's payload is pinned until
    its last release.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 num_slots: int = DEFAULT_SLOTS,
                 cache_planes: int = DEFAULT_CACHE_PLANES,
                 generation_base: int = 0,
                 idle_timeout: Optional[float] = None) -> None:
        if cache_planes < 1:
            raise ConfigError("cache_planes must be >= 1")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ConfigError("idle_timeout must be positive")
        # Fresh per process start: readers compare it across reconnects to
        # tell "same server, new generation" from "restarted server whose
        # generation counter may collide with the one I cached".
        self.server_id = f"{os.getpid():x}-{os.urandom(4).hex()}"
        self._idle_timeout = idle_timeout
        self._registry = LocalRegistry(
            num_slots=num_slots, on_evict=self._on_evict,
            generation_base=generation_base,
        )
        # slot -> (payload, digest, epoch); pinned while the slot is live
        self._payloads: Dict[int, Tuple[bytes, str, int]] = {}
        # digest -> payload for the last cache_planes published planes —
        # the delta-base history.  Independent of slot eviction: a retired
        # plane no reader pins any more is still a valid diff base for a
        # reader that cached it, as long as it stays in this window.
        self._cache_planes = cache_planes
        self._history: "OrderedDict[str, bytes]" = OrderedDict()
        # (base digest, target digest) -> delta frame, shared by every
        # reader diffing the same pair; pruned with the history.
        self._deltas: Dict[Tuple[str, str], bytes] = {}
        # delta/full fetch counters and actual-vs-hypothetical byte totals
        self._transfer: Dict[str, int] = {
            "delta_fetches": 0, "full_fetches": 0,
            "bytes_sent": 0, "bytes_full": 0,
        }
        # reader -> digest -> fetch count (the fetched-exactly-once audit)
        self._fetches: Dict[str, Dict[str, int]] = {}
        # connection-lifecycle counters, reported through the stats op
        self._lifecycle: Dict[str, int] = {
            "reaps": 0, "idle_closes": 0, "drains": 0,
        }
        # ops between recv and response; drain waits for this to hit zero
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._conns: List[socket.socket] = []
        # conn -> reader id, set by the hello op (each conn's own thread
        # is the only writer of its entry)
        self._conn_readers: Dict[socket.socket, str] = {}
        self._next_reader = 0
        self._closed = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-plane-server", daemon=True
        )
        self._accept_thread.start()

    # -- writer API ---------------------------------------------------------

    @property
    def registry(self) -> LocalRegistry:
        return self._registry

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def publish(self, payload: bytes, epoch: int) -> str:
        """Register one encoded plane as the newest epoch; returns digest."""
        digest = plane_digest(payload)
        with self._registry.lock:
            slot = self._registry.register(digest, epoch)
            self._payloads[slot] = (payload, digest, epoch)
            self._history[digest] = payload
            self._history.move_to_end(digest)
            while len(self._history) > self._cache_planes:
                evicted, _ = self._history.popitem(last=False)
                self._deltas = {
                    key: frame for key, frame in self._deltas.items()
                    if evicted not in key
                }
        return digest

    def fetch_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-reader, per-digest fetch counts (each should be exactly 1)."""
        with self._registry.lock:
            return {r: dict(d) for r, d in self._fetches.items()}

    def transfer_stats(self) -> Dict[str, int]:
        """Delta/full fetch counters, byte totals, lifecycle counters."""
        with self._registry.lock:
            stats = dict(self._transfer)
            stats.update(self._lifecycle)
            return stats

    def cache_info(self) -> Dict[str, int]:
        """Delta-base history depth and current occupancy."""
        with self._registry.lock:
            return {
                "cache_planes": self._cache_planes,
                "cached": len(self._history),
            }

    def close(self, drain: bool = True,
              drain_timeout: float = 5.0) -> int:
        """Stop serving; returns the final generation.

        With ``drain`` (the default) the listener closes first — no new
        connections — then in-flight ops are given ``drain_timeout``
        seconds to finish before connections are severed, so a reader
        mid-fetch gets its last frame instead of a mid-payload EOF.  The
        returned generation is what a restarted server should pass as
        ``generation_base`` so surviving readers observe a monotonic
        counter.
        """
        self._closed = True
        # shutdown() before close(): close() alone does not wake a thread
        # already blocked in accept(), and the kernel would keep the
        # listening socket accepting on its behalf.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        if drain:
            deadline = time.monotonic() + drain_timeout
            with self._inflight_cv:
                while self._inflight > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._inflight_cv.wait(remaining)
            with self._registry.lock:
                self._lifecycle["drains"] += 1
        for conn in list(self._conns):
            # shutdown() wakes the connection's own thread out of a
            # blocked recv and sends FIN; close() alone does neither.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        generation = self._registry.generation()
        self._registry.shutdown()
        return generation

    # -- internals ----------------------------------------------------------

    def _on_evict(self, slot: int, _ref: str) -> None:
        # Registry lock held: drop the payload the freed slot pinned.  The
        # delta-base history keeps its own (bounded) reference so a just-
        # retired plane can still serve as a diff base.
        self._payloads.pop(slot, None)

    def _record_fetch(self, reader, digest: str, sent: int, full: int,
                      delta: bool) -> None:
        # Registry lock held.  One audit entry per payload crossing —
        # delta or full, a digest still reaches each reader exactly once —
        # plus the actual-vs-hypothetical byte totals.
        counts = self._fetches.setdefault(str(reader), {})
        counts[digest] = counts.get(digest, 0) + 1
        key = "delta_fetches" if delta else "full_fetches"
        self._transfer[key] += 1
        self._transfer["bytes_sent"] += sent
        self._transfer["bytes_full"] += full

    def _delta_or_full(self, base: Optional[str], payload: bytes,
                       digest: str) -> Tuple[bytes, str]:
        # Registry lock held.  Diff against the reader's base when it is
        # still in the publish history; otherwise (base evicted, unknown,
        # or the degenerate base == target) fall back to the full frame.
        if not base or base == digest:
            return payload, "full"
        base_payload = self._history.get(base)
        if base_payload is None:
            return payload, "full"
        frame = self._deltas.get((base, digest))
        if frame is None:
            frame = encode_plane_delta(
                base_payload, payload,
                base_digest=base, target_digest=digest,
            )
            self._deltas[(base, digest)] = frame
        return frame, "delta"

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            if self._closed:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                return
            try:
                # small response frames (delta fetches, control messages)
                # must not sit out a Nagle/delayed-ACK round trip
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover
                pass
            self._conns.append(conn)
            threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="repro-plane-conn", daemon=True,
            ).start()

    def _enter_op(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def _exit_op(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cv.notify_all()

    def _serve_conn(self, conn: socket.socket) -> None:
        if self._idle_timeout is not None:
            try:
                conn.settimeout(self._idle_timeout)
            except OSError:  # pragma: no cover
                pass
        try:
            while True:
                try:
                    msg = _recv_msg(conn)
                except socket.timeout:
                    # Idle past the budget between ops: close the
                    # connection (the reader reconnects transparently)
                    # and return its refcount to the table.
                    with self._registry.lock:
                        self._lifecycle["idle_closes"] += 1
                    return
                if msg is None:
                    return
                self._enter_op()
                try:
                    self._handle_op(conn, msg)
                finally:
                    self._exit_op()
        except OSError:
            return
        finally:
            # A reader that died (or just disconnected) without releasing
            # is reaped here — its refcount goes back, possibly evicting a
            # retired plane.  ServeSession.reap() is idempotent on top.
            reader = self._conn_readers.pop(conn, None)
            if reader is not None and not self._closed:
                with self._registry.lock:
                    if self._registry.readers().get(reader) is not None:
                        self._lifecycle["reaps"] += 1
                    self._registry.release_reader(reader)
            elif reader is not None:
                self._registry.release_reader(reader)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            try:
                self._conns.remove(conn)
            except ValueError:  # pragma: no cover
                pass

    def _handle_op(self, conn: socket.socket, msg: dict) -> None:
        reader = self._conn_readers.get(conn)
        op = msg.get("op")
        if op == "hello":
            reader = msg.get("reader")
            if reader is None:
                with self._registry.lock:
                    reader = f"r{self._next_reader}"
                    self._next_reader += 1
            self._conn_readers[conn] = reader
            _send_msg(conn, {
                "ok": True, "reader": reader,
                "generation": self._registry.generation(),
                "server_id": self.server_id,
            })
        elif op == "poll":
            _send_msg(conn, {
                "ok": True,
                "generation": self._registry.generation(),
            })
        elif op == "acquire":
            got = self._registry.acquire(reader)
            if got is None:
                _send_msg(conn, {"ok": True, "empty": True})
            else:
                generation, slot, epoch, digest = got
                with self._registry.lock:
                    nbytes = len(self._payloads[slot][0])
                _send_msg(conn, {
                    "ok": True, "generation": generation,
                    "slot": slot, "epoch": epoch,
                    "digest": digest, "nbytes": nbytes,
                })
        elif op == "release":
            # Tolerant: a release replayed after a reconnect (the old
            # connection's reap already returned the refcount) or landing
            # on a restarted server must not drive a refcount negative.
            if reader is not None:
                self._registry.release_if_held(msg["slot"], reader)
            _send_msg(conn, {"ok": True})
        elif op == "fetch":
            with self._registry.lock:
                entry = self._payloads.get(msg["slot"])
                if entry is not None:
                    payload, digest, _epoch = entry
                    self._record_fetch(reader, digest,
                                       len(payload), len(payload),
                                       delta=False)
            if entry is None:
                _send_msg(conn, {
                    "ok": False,
                    "error": f"slot {msg['slot']} holds no plane",
                })
            else:
                _send_msg(conn, {
                    "ok": True, "digest": digest,
                    "nbytes": len(payload),
                })
                _send_frame(conn, payload)
        elif op == "fetch_delta":
            with self._registry.lock:
                entry = self._payloads.get(msg["slot"])
                frame, mode = None, "full"
                if entry is not None:
                    payload, digest, _epoch = entry
                    frame, mode = self._delta_or_full(
                        msg.get("base"), payload, digest,
                    )
                    self._record_fetch(reader, digest,
                                       len(frame), len(payload),
                                       delta=(mode == "delta"))
            if entry is None:
                _send_msg(conn, {
                    "ok": False,
                    "error": f"slot {msg['slot']} holds no plane",
                })
            else:
                _send_msg(conn, {
                    "ok": True, "mode": mode, "digest": digest,
                    "nbytes": len(frame),
                    "full_nbytes": len(payload),
                })
                _send_frame(conn, frame)
        elif op == "stats":
            with self._registry.lock:
                _send_msg(conn, {
                    "ok": True,
                    "server_id": self.server_id,
                    "generation": self._registry.generation(),
                    "slots": self._registry.slots(),
                    "fetches": {
                        r: sum(d.values())
                        for r, d in self._fetches.items()
                    },
                    "cache": {
                        "cache_planes": self._cache_planes,
                        "cached": len(self._history),
                    },
                    "transfer": dict(self._transfer),
                    "lifecycle": dict(self._lifecycle),
                })
        else:
            _send_msg(conn, {"ok": False,
                             "error": f"unknown op {op!r}"})


class NetTransport(PlaneTransport):
    """Writer-side TCP transport: one :class:`PlaneServer`, planes encoded
    once per epoch and fetched once per reader."""

    kind = "tcp"

    def __init__(self, num_workers: int = 0, host: str = "127.0.0.1",
                 port: int = 0, cache_planes: int = DEFAULT_CACHE_PLANES,
                 num_slots: int = DEFAULT_SLOTS,
                 delta: bool = False,
                 retry: int = DEFAULT_RETRY,
                 backoff: float = DEFAULT_BACKOFF,
                 max_backoff: float = DEFAULT_MAX_BACKOFF,
                 op_timeout: float = DEFAULT_OP_TIMEOUT,
                 idle_timeout: Optional[float] = None,
                 generation_base: int = 0,
                 advertise: Optional[Tuple[str, int]] = None) -> None:
        if cache_planes < 1:
            raise ConfigError("cache_planes must be >= 1")
        if retry < 0:
            raise ConfigError("retry must be >= 0")
        self._server = PlaneServer(host=host, port=port, num_slots=num_slots,
                                   cache_planes=cache_planes,
                                   generation_base=generation_base,
                                   idle_timeout=idle_timeout)
        self._cache_planes = cache_planes
        self._delta = bool(delta)
        self._num_workers = num_workers
        self._retry = retry
        self._backoff = backoff
        self._max_backoff = max_backoff
        self._op_timeout = op_timeout
        # When readers must dial something other than the bind address
        # (a fault proxy in tests, a NAT'd endpoint in deployment),
        # reader specs advertise that address instead.
        self._advertise = advertise
        self._published: set = set()

    @property
    def registry(self) -> LocalRegistry:
        return self._server.registry

    @property
    def server(self) -> PlaneServer:
        return self._server

    @property
    def address(self) -> str:
        """``host:port`` remote readers pass to ``repro attach``."""
        return self._server.address

    def publish_plane(self, plane, epoch: int) -> bool:
        if epoch in self._published:
            return False
        payload = encode_plane(plane, epoch=epoch)
        self._server.publish(payload, epoch)
        self._published.add(epoch)
        return True

    @property
    def delta(self) -> bool:
        """Whether readers spawned from this transport fetch deltas."""
        return self._delta

    def reader_spec(self) -> "TcpReaderSpec":
        host, port = self._advertise or (self._server.host,
                                         self._server.port)
        return TcpReaderSpec(
            host, port, self._cache_planes,
            delta=self._delta, retry=self._retry, backoff=self._backoff,
            max_backoff=self._max_backoff, op_timeout=self._op_timeout,
        )

    def transfer_stats(self) -> Dict[str, int]:
        """Server-side delta/full fetch counters (see ``stats_row``)."""
        stats = self._server.transfer_stats()
        stats.update(self._server.cache_info())
        return stats

    def describe(self) -> str:
        mode = "delta" if self._delta else "full"
        return f"tcp {self.address} ({mode} fetch)"

    def close(self) -> None:
        self._server.close()


# -- reader side ------------------------------------------------------------


class TcpReaderSpec(ReaderSpec):
    """Address + cache bound + delta/retry knobs; picklable across starts."""

    def __init__(self, host: str, port: int,
                 cache_planes: int = DEFAULT_CACHE_PLANES,
                 delta: bool = False,
                 retry: int = DEFAULT_RETRY,
                 backoff: float = DEFAULT_BACKOFF,
                 max_backoff: float = DEFAULT_MAX_BACKOFF,
                 op_timeout: float = DEFAULT_OP_TIMEOUT) -> None:
        self.host = host
        self.port = port
        self.cache_planes = cache_planes
        self.delta = delta
        self.retry = retry
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.op_timeout = op_timeout

    def connect(self, reader_id) -> "NetClient":
        return NetClient(self.host, self.port, reader_id=reader_id,
                         cache_planes=self.cache_planes, delta=self.delta,
                         timeout=self.op_timeout, retry=self.retry,
                         backoff=self.backoff, max_backoff=self.max_backoff)


class NetClient(PlaneClient):
    """Reader endpoint over one persistent socket, with a plane cache.

    The cache is an LRU keyed by payload digest, bounded to
    ``cache_planes`` decoded planes (each kept alongside its raw payload
    bytes): re-acquiring a digest already cached is one control
    round-trip (no payload), so each epoch's buffers cross the socket
    exactly once however many queries it serves.

    With ``delta=True`` a cache miss first tries ``fetch_delta`` against
    the newest cached payload: the server ships only the churned chunks,
    the client composes them onto a copy of its cached bytes, and the
    composed payload's digest is verified before the plane is decoded and
    swapped in.  Any delta failure (base evicted server-side, composition
    mismatch) falls back to a verified full fetch.

    **Fault tolerance.**  Every public op runs inside a retry loop: a
    transport fault (connection reset, peer EOF mid-frame, corrupt frame)
    tears the socket down and the whole op — hello included — is replayed
    against a fresh connection, up to ``retry`` reconnect attempts with
    exponential jittered backoff.  Each op carries a deadline of
    ``timeout`` seconds covering all its attempts and backoff sleeps; a
    blown deadline raises :class:`DeadlineExceededError` and is *not*
    retried.  The hello response carries the server's ``server_id``; when
    it changes across a reconnect the client bumps an internal revision
    that is folded into every generation token, so leases acquired from
    the previous incarnation compare unequal even if the restarted
    server's generation counter collides with the old one.
    """

    supports_delta = True

    def __init__(self, host: str, port: int, reader_id=None,
                 cache_planes: int = DEFAULT_CACHE_PLANES,
                 delta: bool = False,
                 timeout: Optional[float] = DEFAULT_OP_TIMEOUT,
                 retry: int = DEFAULT_RETRY,
                 backoff: float = DEFAULT_BACKOFF,
                 max_backoff: float = DEFAULT_MAX_BACKOFF,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None) -> None:
        if retry < 0:
            raise ConfigError("retry must be >= 0")
        self._host, self._port = host, port
        self._timeout = timeout
        self._retry = retry
        self._clock = clock
        self._sleep = sleep
        self._backoff = Backoff(initial=backoff, maximum=max_backoff,
                                rng=rng)
        self._sock: Optional[socket.socket] = None
        self._server_id: Optional[str] = None
        self._seen_hello = False
        # bumped when a reconnect lands on a different server incarnation;
        # folded into generation tokens so stale leases compare unequal
        self._rev = 0
        self.reader_id = reader_id
        # digest -> (materialized plane, raw payload bytes)
        self._cache: "OrderedDict[str, Tuple[object, bytes]]" = OrderedDict()
        self._cache_planes = cache_planes
        self._delta = bool(delta)
        #: client-side transfer accounting plus fault counters
        self.transfer: Dict[str, int] = {
            "delta_fetches": 0, "full_fetches": 0,
            "bytes_received": 0, "bytes_full": 0,
            "retries": 0, "reconnects": 0, "server_restarts": 0,
            "peer_closed": 0, "corrupt_frames": 0, "deadline_exceeded": 0,
        }
        deadline = self._deadline()
        try:
            self._connect(deadline)
        except (OSError, QueryError) as exc:
            raise ConfigError(
                f"cannot reach plane server at {host}:{port}: {exc}"
            ) from None

    # -- retry machinery ----------------------------------------------------

    def _deadline(self) -> Optional[float]:
        return None if self._timeout is None else self._clock() + self._timeout

    def _remaining(self, deadline: Optional[float], op: str) -> Optional[float]:
        if deadline is None:
            return None
        remaining = deadline - self._clock()
        if remaining <= 0:
            raise DeadlineExceededError(
                f"plane server op {op!r} exceeded its "
                f"{self._timeout}s deadline"
            )
        return remaining

    def _teardown(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def _connect(self, deadline: Optional[float],
                 reconnect: bool = False) -> None:
        remaining = self._remaining(deadline, "hello")
        sock = socket.create_connection((self._host, self._port),
                                        timeout=remaining)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover
            pass
        self._sock = sock
        resp = self._call_once({"op": "hello", "reader": self.reader_id},
                               deadline)
        self.reader_id = resp["reader"]
        server_id = resp.get("server_id")
        if not self._seen_hello:
            self._seen_hello = True
            self._server_id = server_id
        elif server_id != self._server_id:
            # A different incarnation answered at the same address: its
            # registry (and delta-base history) started over.  Bump the
            # revision so every lease from the old incarnation reads
            # stale; cached payloads stay valid (they are digest-keyed).
            self._server_id = server_id
            self._rev += 1
            self.transfer["server_restarts"] += 1
        if reconnect:
            self.transfer["reconnects"] += 1

    def _retrying(self, op: str, fn: Callable[[Optional[float]], dict]):
        """Run ``fn(deadline)`` replaying the whole op across reconnects.

        Transient faults (reset, EOF, corrupt frame) tear the socket down
        and replay after a backoff; :class:`DeadlineExceededError` is
        terminal.  ``fn`` must be safe to replay from scratch — the
        server reaps a disconnected reader's refcount, so a replayed
        ``acquire`` never double-pins.
        """
        deadline = self._deadline()
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self._connect(deadline, reconnect=True)
                return fn(deadline)
            except DeadlineExceededError:
                self.transfer["deadline_exceeded"] += 1
                self._teardown()
                raise
            except (OSError, PeerClosedError, CorruptFrameError) as exc:
                self._teardown()
                if isinstance(exc, PeerClosedError):
                    self.transfer["peer_closed"] += 1
                elif isinstance(exc, CorruptFrameError):
                    self.transfer["corrupt_frames"] += 1
                attempt += 1
                if attempt > self._retry:
                    raise QueryError(
                        f"plane server op {op!r} failed after "
                        f"{attempt} attempts: {exc}"
                    ) from None
                self.transfer["retries"] += 1
                delay = self._backoff.delay(attempt - 1)
                if deadline is not None:
                    budget = deadline - self._clock()
                    if budget <= delay:
                        self.transfer["deadline_exceeded"] += 1
                        raise DeadlineExceededError(
                            f"plane server op {op!r}: deadline exhausted "
                            f"after {attempt} attempts ({exc})"
                        ) from None
                if delay > 0:
                    self._sleep(delay)

    # -- deadline-aware framing ---------------------------------------------

    def _settimeout(self, deadline: Optional[float], op: str) -> None:
        self._sock.settimeout(self._remaining(deadline, op))

    def _recv_exact_once(self, n: int, op: str, phase: str,
                         deadline: Optional[float]) -> bytes:
        chunks = []
        need = n
        while need:
            self._settimeout(deadline, op)
            try:
                chunk = self._sock.recv(min(need, 1 << 20))
            except socket.timeout:
                raise DeadlineExceededError(
                    f"plane server op {op!r} timed out mid-{phase} "
                    f"({n - need}/{n} bytes received)"
                ) from None
            if not chunk:
                raise PeerClosedError(
                    f"plane server closed the connection mid-{phase} "
                    f"during {op!r} ({n - need}/{n} bytes received)"
                )
            chunks.append(chunk)
            need -= len(chunk)
        return b"".join(chunks)

    def _call_once(self, msg: dict, deadline: Optional[float]) -> dict:
        op = msg.get("op")
        self._settimeout(deadline, op)
        body = json.dumps(msg, separators=(",", ":")).encode("ascii")
        try:
            self._sock.sendall(_LEN.pack(len(body)) + body)
        except socket.timeout:
            raise DeadlineExceededError(
                f"plane server op {op!r} timed out mid-send"
            ) from None
        head = self._recv_exact_once(_LEN.size, op, "header", deadline)
        (nbytes,) = _LEN.unpack(head)
        if nbytes > _MAX_FRAME:
            raise CorruptFrameError(
                f"response frame for {op!r} announces {nbytes} bytes — "
                "corrupt length prefix"
            )
        frame = self._recv_exact_once(nbytes, op, "response", deadline)
        try:
            resp = json.loads(frame.decode("ascii"))
        except (UnicodeDecodeError, ValueError):
            raise CorruptFrameError(
                f"undecodable response frame for {op!r}"
            ) from None
        if not isinstance(resp, dict):
            raise CorruptFrameError(
                f"malformed response frame for {op!r}"
            )
        if not resp.get("ok", False):
            raise QueryError(
                f"plane server refused {op!r}: "
                f"{resp.get('error', 'unknown error')}"
            )
        return resp

    def _recv_payload_frame(self, op: str, nbytes: int,
                            deadline: Optional[float]) -> bytes:
        """Receive the raw frame trailing a fetch response.

        Failure modes are distinguished so the retry layer (and users)
        can tell them apart: EOF or a short read mid-payload raises
        :class:`PeerClosedError` naming the op and byte position, a
        deadline overrun raises :class:`DeadlineExceededError`, and a
        frame length disagreeing with the announced size raises
        :class:`CorruptFrameError`.
        """
        head = self._recv_exact_once(_LEN.size, op, "payload header",
                                     deadline)
        (framelen,) = _LEN.unpack(head)
        if framelen != nbytes:
            raise CorruptFrameError(
                f"{op!r} announced {nbytes} payload bytes but the frame "
                f"header says {framelen}"
            )
        return self._recv_exact_once(nbytes, op, "payload", deadline)

    # -- public ops ---------------------------------------------------------

    @property
    def server_id(self) -> Optional[str]:
        """Incarnation token of the server last spoken to."""
        return self._server_id

    def generation(self) -> Tuple[int, int]:
        """Opaque staleness token: ``(incarnation rev, generation)``.

        Compared for equality against ``PlaneLease.generation``; the rev
        component makes tokens from before and after a server restart
        unequal even when the generation counters collide.
        """
        resp = self._retrying(
            "poll", lambda d: self._call_once({"op": "poll"}, d)
        )
        return (self._rev, resp["generation"])

    def stats(self) -> dict:
        """Server-side slots + fetch counters (tests and dashboards)."""
        return self._retrying(
            "stats", lambda d: self._call_once({"op": "stats"}, d)
        )

    def cached_payload(self, digest: str) -> Optional[bytes]:
        """Raw payload bytes cached under ``digest`` (tests, audits)."""
        entry = self._cache.get(digest)
        return None if entry is None else entry[1]

    def acquire(self) -> Optional[PlaneLease]:
        return self._retrying("acquire", self._acquire_once)

    def _acquire_once(self, deadline: Optional[float]) -> Optional[PlaneLease]:
        resp = self._call_once({"op": "acquire"}, deadline)
        if resp.get("empty"):
            return None
        slot, digest = resp["slot"], resp["digest"]
        entry = self._cache.get(digest)
        if entry is not None:
            self._cache.move_to_end(digest)
        else:
            try:
                entry = self._fetch(slot, digest, deadline)
            except (OSError, PeerClosedError, CorruptFrameError,
                    DeadlineExceededError):
                # Connection-level failure: the server reaps our refcount
                # when the socket dies, and the retry layer replays the
                # whole acquire — do not try to release on a dead socket.
                raise
            except Exception:
                self._release_quiet(slot)
                raise
            self._cache[digest] = entry
            while len(self._cache) > self._cache_planes:
                self._cache.popitem(last=False)
        plane = entry[0]

        def release() -> None:
            self._release_quiet(slot)

        return PlaneLease((self._rev, resp["generation"]), slot,
                          resp["epoch"], plane, release)

    def _release_quiet(self, slot: int) -> None:
        # One attempt, no retry: the release op is tolerant server-side
        # (release_if_held) and a dead connection reaps the refcount
        # anyway, so failing loudly here would only mask the real error.
        if self._sock is None:
            return
        try:
            self._call_once({"op": "release", "slot": slot},
                            self._deadline())
        except (OSError, QueryError):
            self._teardown()

    def _fetch(self, slot: int, digest: str,
               deadline: Optional[float]) -> Tuple[object, bytes]:
        """Materialize one payload: delta against the newest cached plane
        when enabled, else (or on any delta failure) a full fetch."""
        if self._delta and self._cache:
            base = next(reversed(self._cache))
            payload = self._fetch_delta(slot, digest, base, deadline)
            if payload is not None:
                manifest, arrays = decode_plane(payload)
                return materialize_plane(manifest, arrays), payload
        header = self._call_once({"op": "fetch", "slot": slot}, deadline)
        payload = self._recv_payload_frame("fetch", header["nbytes"],
                                           deadline)
        if plane_digest(payload) != digest:
            raise CorruptFrameError(
                f"plane digest mismatch for slot {slot}: payload corrupt"
            )
        self.transfer["full_fetches"] += 1
        self.transfer["bytes_received"] += len(payload)
        self.transfer["bytes_full"] += len(payload)
        manifest, arrays = decode_plane(payload)
        return materialize_plane(manifest, arrays), payload

    def _fetch_delta(self, slot: int, digest: str, base: str,
                     deadline: Optional[float]) -> Optional[bytes]:
        """One ``fetch_delta`` round-trip; None means "retry as full".

        The server answers ``mode="full"`` itself when the base fell out
        of its history (a restarted server always does — its history
        starts empty); a delta whose composition does not reproduce the
        expected digest is discarded the same way — the full path is the
        always-correct fallback.
        """
        header = self._call_once({"op": "fetch_delta", "slot": slot,
                                  "base": base}, deadline)
        frame = self._recv_payload_frame("fetch_delta", header["nbytes"],
                                         deadline)
        full_nbytes = header.get("full_nbytes", len(frame))
        if header.get("mode") != "delta":
            if plane_digest(frame) != digest:
                raise CorruptFrameError(
                    f"plane digest mismatch for slot {slot}: payload corrupt"
                )
            self.transfer["full_fetches"] += 1
            self.transfer["bytes_received"] += len(frame)
            self.transfer["bytes_full"] += full_nbytes
            return frame
        base_payload = self._cache[base][1]
        try:
            if delta_header(frame)["target"] != digest:
                raise ConfigError("delta frame targets a different plane")
            payload = apply_plane_delta(base_payload, frame,
                                        base_digest=base)
        except ConfigError:
            return None  # composed digest mismatch — refetch in full
        self.transfer["delta_fetches"] += 1
        self.transfer["bytes_received"] += len(frame)
        self.transfer["bytes_full"] += full_nbytes
        return payload

    def close(self) -> None:
        self._teardown()
        self._cache.clear()


class NetReader:
    """Standalone remote reader: attach to a writer, serve queries locally.

    What ``repro attach host:port`` drives — the single-process analogue
    of one pool worker, usable from any host that can reach the writer's
    :class:`PlaneServer`.  Queries run on the locally cached plane; call
    :meth:`refresh` (or any query, which refreshes implicitly) to pick up
    newly published epochs.

    With ``degrade=True`` (the default) a reader that cannot reach the
    server — retries exhausted, deadline blown, or the server restarted
    and has not republished yet — keeps answering from its last-acquired
    plane instead of raising, with :attr:`stale` set and a
    ``stale_serves`` counter in :meth:`transfer_stats`; the next
    successful refresh clears the flag.  ``degrade=False`` restores
    strict behaviour: any unreachable-server condition raises.
    """

    def __init__(self, address: str, policy: str = "upper+lower",
                 cache_planes: int = DEFAULT_CACHE_PLANES,
                 delta: bool = False,
                 retry: int = DEFAULT_RETRY,
                 backoff: float = DEFAULT_BACKOFF,
                 max_backoff: float = DEFAULT_MAX_BACKOFF,
                 timeout: Optional[float] = DEFAULT_OP_TIMEOUT,
                 degrade: bool = True) -> None:
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigError(
                f"attach address must be host:port, got {address!r}"
            )
        self._client = NetClient(host, int(port), cache_planes=cache_planes,
                                 delta=delta, retry=retry, backoff=backoff,
                                 max_backoff=max_backoff, timeout=timeout)
        self._policy = policy
        self._degrade = bool(degrade)
        self._stale = False
        self._stale_serves = 0
        self._lease: Optional[PlaneLease] = None
        self._engine = None

    def transfer_stats(self) -> Dict[str, int]:
        """This reader's fetch/fault counters and byte totals."""
        stats = dict(self._client.transfer)
        stats["stale_serves"] = self._stale_serves
        return stats

    @property
    def epoch(self) -> Optional[int]:
        """Epoch currently served (None before the writer publishes)."""
        lease = self._lease
        return None if lease is None else lease.epoch

    @property
    def stale(self) -> bool:
        """Whether answers are coming from a plane the server may have
        superseded (degraded mode after an unreachable-server refresh)."""
        return self._stale

    @property
    def client(self) -> NetClient:
        return self._client

    def _serve_stale(self, lease: PlaneLease) -> int:
        self._stale = True
        self._stale_serves += 1
        return lease.epoch

    def refresh(self) -> Optional[int]:
        """Adopt the newest published epoch; returns it (None when bare).

        In degraded mode an unreachable server leaves the last-acquired
        plane in service (see :attr:`stale`) instead of raising.
        """
        from repro.core.engine import PairwiseEngine

        lease = self._lease
        try:
            if (lease is not None
                    and lease.generation == self._client.generation()):
                self._stale = False
                return lease.epoch
            fresh = self._client.acquire()
        except QueryError:
            if self._degrade and lease is not None:
                return self._serve_stale(lease)
            raise
        if fresh is None:
            # Server reachable but bare — a restarted writer that has not
            # republished yet.  Degraded readers keep the old plane.
            if lease is not None:
                if self._degrade:
                    return self._serve_stale(lease)
                self._lease, self._engine = None, None
                lease.release()
            return None
        # Acquire-before-release: the new engine is built while the old
        # lease still pins its plane, so a query never sees a gap.
        self._lease = fresh
        self._engine = PairwiseEngine(
            PlaneGraph(fresh.plane.csr), policy=self._policy,
            dense=fresh.plane,
        )
        self._stale = False
        if lease is not None:
            lease.release()
        return fresh.epoch

    def _current_engine(self):
        self.refresh()
        if self._engine is None:
            raise QueryError("no epoch has been published yet")
        return self._engine, self._lease

    def vertices(self) -> List[int]:
        """Caller-space vertex ids of the served plane (demo drivers)."""
        _engine, lease = self._current_engine()
        return list(lease.plane.csr.ids)

    def distance(self, source: int, target: int,
                 tolerance: float = 0.0) -> Tuple[float, object, int]:
        """One pairwise distance on the cached plane: (value, stats, epoch)."""
        engine, lease = self._current_engine()
        value, stats = engine.best_cost(source, target, tolerance=tolerance)
        return value, stats, lease.epoch

    def distance_many(self, source: int, targets) -> Tuple[dict, object, int]:
        """One-to-many on the cached plane: (values, stats, epoch)."""
        engine, lease = self._current_engine()
        values, stats = engine.one_to_many(source, list(targets))
        return values, stats, lease.epoch

    def close(self) -> None:
        lease, self._lease = self._lease, None
        self._engine = None
        if lease is not None:
            try:
                lease.release()
            except QueryError:  # pragma: no cover - writer already gone
                pass
        self._client.close()

    def __enter__(self) -> "NetReader":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
