"""TCP plane transport: fetch-on-publish serving across host boundaries.

The shm transport needs readers on the writer's box.  This module moves
the same epoch-handoff protocol over a small length-prefixed TCP wire so
reader fleets anywhere can serve published epochs:

* the writer owns a :class:`PlaneServer` — a background accept thread plus
  one thread per reader connection — holding a
  :class:`~repro.serving.registry.LocalRegistry` slot table and, per LIVE
  or still-referenced slot, the epoch's plane encoded once by
  :mod:`repro.serving.codec` (with its SHA-256 digest);
* on publish the writer registers ``(epoch, manifest, digest)``; readers
  polling the generation see the bump, ``acquire`` the slot, and — only
  when the digest is not already in their bounded local cache — ``fetch``
  the payload **once**, verify the digest, and decode it into a private
  :class:`~repro.core.hub_index.DensePlane` (fetch-on-publish: the bytes
  cross the socket once per reader per epoch, never per query);
* a **delta-enabled** reader instead sends ``fetch_delta`` naming the
  digest of the newest payload it already holds; the server diffs the two
  planes' chunk tables (:func:`~repro.serving.codec.encode_plane_delta`
  over its last ``cache_planes`` published payloads) and ships only the
  churned chunks — O(Δ) bytes per epoch instead of O(|plane|).  The
  reader composes the delta onto a *copy* of its cached payload and the
  composed plane's digest is verified before swap-in; when the base was
  evicted (or composition fails) the server/reader fall back to a full
  frame, so delta mode is never less correct than full mode;
* queries then run entirely locally on the cached plane — the same
  ``_search_dense`` hot path, bit-identical to shm workers — and the
  refcount protocol retires old epochs exactly as on the board.  A reader
  whose connection drops (crash, SIGKILL) is reaped by its connection
  thread, returning its refcount.

Wire format: every message is an 8-byte big-endian length followed by a
JSON body; a ``fetch`` (or ``fetch_delta``) response is followed by one
raw frame carrying the encoded plane (or delta frame).  Ops: ``hello``,
``poll``, ``acquire``, ``release``, ``fetch``, ``fetch_delta``,
``stats``.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, QueryError
from repro.serving.codec import (
    PlaneGraph,
    apply_plane_delta,
    decode_plane,
    delta_header,
    encode_plane,
    encode_plane_delta,
    materialize_plane,
    plane_digest,
)
from repro.serving.registry import DEFAULT_SLOTS, LocalRegistry
from repro.serving.transport import (
    PlaneClient,
    PlaneLease,
    PlaneTransport,
    ReaderSpec,
)

_LEN = struct.Struct(">Q")

#: planes a reader keeps decoded locally; re-acquiring a cached digest
#: costs one control round-trip and zero payload bytes.
DEFAULT_CACHE_PLANES = 4


def net_available() -> bool:
    """Whether loopback TCP sockets actually work in this environment."""
    try:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            probe = socket.create_connection(
                listener.getsockname(), timeout=1.0
            )
            probe.close()
        finally:
            listener.close()
    except OSError:
        return False
    return True


# -- framing ----------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_frame(sock: socket.socket) -> Optional[bytes]:
    head = _recv_exact(sock, _LEN.size)
    if head is None:
        return None
    return _recv_exact(sock, _LEN.unpack(head)[0])


def _send_msg(sock: socket.socket, obj: dict) -> None:
    _send_frame(sock, json.dumps(obj, separators=(",", ":")).encode("ascii"))


def _recv_msg(sock: socket.socket) -> Optional[dict]:
    frame = _recv_frame(sock)
    if frame is None:
        return None
    return json.loads(frame.decode("ascii"))


# -- writer side ------------------------------------------------------------


class PlaneServer:
    """Writer-owned TCP endpoint: registry mutations + payload fetches.

    One thread accepts connections; each connection gets a thread that
    drains its ops.  All registry and payload state is mutated under the
    registry's RLock, so eviction (retired slot, refcount zero) can never
    interleave with a fetch — an acquired slot's payload is pinned until
    its last release.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 num_slots: int = DEFAULT_SLOTS,
                 cache_planes: int = DEFAULT_CACHE_PLANES) -> None:
        if cache_planes < 1:
            raise ConfigError("cache_planes must be >= 1")
        self._registry = LocalRegistry(
            num_slots=num_slots, on_evict=self._on_evict
        )
        # slot -> (payload, digest, epoch); pinned while the slot is live
        self._payloads: Dict[int, Tuple[bytes, str, int]] = {}
        # digest -> payload for the last cache_planes published planes —
        # the delta-base history.  Independent of slot eviction: a retired
        # plane no reader pins any more is still a valid diff base for a
        # reader that cached it, as long as it stays in this window.
        self._cache_planes = cache_planes
        self._history: "OrderedDict[str, bytes]" = OrderedDict()
        # (base digest, target digest) -> delta frame, shared by every
        # reader diffing the same pair; pruned with the history.
        self._deltas: Dict[Tuple[str, str], bytes] = {}
        # delta/full fetch counters and actual-vs-hypothetical byte totals
        self._transfer: Dict[str, int] = {
            "delta_fetches": 0, "full_fetches": 0,
            "bytes_sent": 0, "bytes_full": 0,
        }
        # reader -> digest -> fetch count (the fetched-exactly-once audit)
        self._fetches: Dict[str, Dict[str, int]] = {}
        self._conns: List[socket.socket] = []
        self._next_reader = 0
        self._closed = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-plane-server", daemon=True
        )
        self._accept_thread.start()

    # -- writer API ---------------------------------------------------------

    @property
    def registry(self) -> LocalRegistry:
        return self._registry

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def publish(self, payload: bytes, epoch: int) -> str:
        """Register one encoded plane as the newest epoch; returns digest."""
        digest = plane_digest(payload)
        with self._registry.lock:
            slot = self._registry.register(digest, epoch)
            self._payloads[slot] = (payload, digest, epoch)
            self._history[digest] = payload
            self._history.move_to_end(digest)
            while len(self._history) > self._cache_planes:
                evicted, _ = self._history.popitem(last=False)
                self._deltas = {
                    key: frame for key, frame in self._deltas.items()
                    if evicted not in key
                }
        return digest

    def fetch_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-reader, per-digest fetch counts (each should be exactly 1)."""
        with self._registry.lock:
            return {r: dict(d) for r, d in self._fetches.items()}

    def transfer_stats(self) -> Dict[str, int]:
        """Delta/full fetch counters and actual-vs-full byte totals."""
        with self._registry.lock:
            return dict(self._transfer)

    def cache_info(self) -> Dict[str, int]:
        """Delta-base history depth and current occupancy."""
        with self._registry.lock:
            return {
                "cache_planes": self._cache_planes,
                "cached": len(self._history),
            }

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        for conn in list(self._conns):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._registry.shutdown()

    # -- internals ----------------------------------------------------------

    def _on_evict(self, slot: int, _ref: str) -> None:
        # Registry lock held: drop the payload the freed slot pinned.  The
        # delta-base history keeps its own (bounded) reference so a just-
        # retired plane can still serve as a diff base.
        self._payloads.pop(slot, None)

    def _record_fetch(self, reader, digest: str, sent: int, full: int,
                      delta: bool) -> None:
        # Registry lock held.  One audit entry per payload crossing —
        # delta or full, a digest still reaches each reader exactly once —
        # plus the actual-vs-hypothetical byte totals.
        counts = self._fetches.setdefault(str(reader), {})
        counts[digest] = counts.get(digest, 0) + 1
        key = "delta_fetches" if delta else "full_fetches"
        self._transfer[key] += 1
        self._transfer["bytes_sent"] += sent
        self._transfer["bytes_full"] += full

    def _delta_or_full(self, base: Optional[str], payload: bytes,
                       digest: str) -> Tuple[bytes, str]:
        # Registry lock held.  Diff against the reader's base when it is
        # still in the publish history; otherwise (base evicted, unknown,
        # or the degenerate base == target) fall back to the full frame.
        if not base or base == digest:
            return payload, "full"
        base_payload = self._history.get(base)
        if base_payload is None:
            return payload, "full"
        frame = self._deltas.get((base, digest))
        if frame is None:
            frame = encode_plane_delta(
                base_payload, payload,
                base_digest=base, target_digest=digest,
            )
            self._deltas[(base, digest)] = frame
        return frame, "delta"

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            try:
                # small response frames (delta fetches, control messages)
                # must not sit out a Nagle/delayed-ACK round trip
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover
                pass
            self._conns.append(conn)
            threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="repro-plane-conn", daemon=True,
            ).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        reader = None
        try:
            while True:
                msg = _recv_msg(conn)
                if msg is None:
                    return
                op = msg.get("op")
                if op == "hello":
                    reader = msg.get("reader")
                    if reader is None:
                        with self._registry.lock:
                            reader = f"r{self._next_reader}"
                            self._next_reader += 1
                    _send_msg(conn, {
                        "ok": True, "reader": reader,
                        "generation": self._registry.generation(),
                    })
                elif op == "poll":
                    _send_msg(conn, {
                        "ok": True,
                        "generation": self._registry.generation(),
                    })
                elif op == "acquire":
                    got = self._registry.acquire(reader)
                    if got is None:
                        _send_msg(conn, {"ok": True, "empty": True})
                    else:
                        generation, slot, epoch, digest = got
                        with self._registry.lock:
                            nbytes = len(self._payloads[slot][0])
                        _send_msg(conn, {
                            "ok": True, "generation": generation,
                            "slot": slot, "epoch": epoch,
                            "digest": digest, "nbytes": nbytes,
                        })
                elif op == "release":
                    self._registry.release(msg["slot"], reader)
                    _send_msg(conn, {"ok": True})
                elif op == "fetch":
                    with self._registry.lock:
                        entry = self._payloads.get(msg["slot"])
                        if entry is not None:
                            payload, digest, _epoch = entry
                            self._record_fetch(reader, digest,
                                               len(payload), len(payload),
                                               delta=False)
                    if entry is None:
                        _send_msg(conn, {
                            "ok": False,
                            "error": f"slot {msg['slot']} holds no plane",
                        })
                    else:
                        _send_msg(conn, {
                            "ok": True, "digest": digest,
                            "nbytes": len(payload),
                        })
                        _send_frame(conn, payload)
                elif op == "fetch_delta":
                    with self._registry.lock:
                        entry = self._payloads.get(msg["slot"])
                        frame, mode = None, "full"
                        if entry is not None:
                            payload, digest, _epoch = entry
                            frame, mode = self._delta_or_full(
                                msg.get("base"), payload, digest,
                            )
                            self._record_fetch(reader, digest,
                                               len(frame), len(payload),
                                               delta=(mode == "delta"))
                    if entry is None:
                        _send_msg(conn, {
                            "ok": False,
                            "error": f"slot {msg['slot']} holds no plane",
                        })
                    else:
                        _send_msg(conn, {
                            "ok": True, "mode": mode, "digest": digest,
                            "nbytes": len(frame),
                            "full_nbytes": len(payload),
                        })
                        _send_frame(conn, frame)
                elif op == "stats":
                    with self._registry.lock:
                        _send_msg(conn, {
                            "ok": True,
                            "generation": self._registry.generation(),
                            "slots": self._registry.slots(),
                            "fetches": {
                                r: sum(d.values())
                                for r, d in self._fetches.items()
                            },
                            "cache": {
                                "cache_planes": self._cache_planes,
                                "cached": len(self._history),
                            },
                            "transfer": dict(self._transfer),
                        })
                else:
                    _send_msg(conn, {"ok": False,
                                     "error": f"unknown op {op!r}"})
        except OSError:
            return
        finally:
            # A reader that died (or just disconnected) without releasing
            # is reaped here — its refcount goes back, possibly evicting a
            # retired plane.  ServeSession.reap() is idempotent on top.
            if reader is not None:
                self._registry.release_reader(reader)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            try:
                self._conns.remove(conn)
            except ValueError:  # pragma: no cover
                pass


class NetTransport(PlaneTransport):
    """Writer-side TCP transport: one :class:`PlaneServer`, planes encoded
    once per epoch and fetched once per reader."""

    kind = "tcp"

    def __init__(self, num_workers: int = 0, host: str = "127.0.0.1",
                 port: int = 0, cache_planes: int = DEFAULT_CACHE_PLANES,
                 num_slots: int = DEFAULT_SLOTS,
                 delta: bool = False) -> None:
        if cache_planes < 1:
            raise ConfigError("cache_planes must be >= 1")
        self._server = PlaneServer(host=host, port=port, num_slots=num_slots,
                                   cache_planes=cache_planes)
        self._cache_planes = cache_planes
        self._delta = bool(delta)
        self._num_workers = num_workers
        self._published: set = set()

    @property
    def registry(self) -> LocalRegistry:
        return self._server.registry

    @property
    def server(self) -> PlaneServer:
        return self._server

    @property
    def address(self) -> str:
        """``host:port`` remote readers pass to ``repro attach``."""
        return self._server.address

    def publish_plane(self, plane, epoch: int) -> bool:
        if epoch in self._published:
            return False
        payload = encode_plane(plane, epoch=epoch)
        self._server.publish(payload, epoch)
        self._published.add(epoch)
        return True

    @property
    def delta(self) -> bool:
        """Whether readers spawned from this transport fetch deltas."""
        return self._delta

    def reader_spec(self) -> "TcpReaderSpec":
        return TcpReaderSpec(
            self._server.host, self._server.port, self._cache_planes,
            delta=self._delta,
        )

    def transfer_stats(self) -> Dict[str, int]:
        """Server-side delta/full fetch counters (see ``stats_row``)."""
        stats = self._server.transfer_stats()
        stats.update(self._server.cache_info())
        return stats

    def describe(self) -> str:
        mode = "delta" if self._delta else "full"
        return f"tcp {self.address} ({mode} fetch)"

    def close(self) -> None:
        self._server.close()


# -- reader side ------------------------------------------------------------


class TcpReaderSpec(ReaderSpec):
    """Address + cache bound + delta flag; picklable across process starts."""

    def __init__(self, host: str, port: int,
                 cache_planes: int = DEFAULT_CACHE_PLANES,
                 delta: bool = False) -> None:
        self.host = host
        self.port = port
        self.cache_planes = cache_planes
        self.delta = delta

    def connect(self, reader_id) -> "NetClient":
        return NetClient(self.host, self.port, reader_id=reader_id,
                         cache_planes=self.cache_planes, delta=self.delta)


class NetClient(PlaneClient):
    """Reader endpoint over one persistent socket, with a plane cache.

    The cache is an LRU keyed by payload digest, bounded to
    ``cache_planes`` decoded planes (each kept alongside its raw payload
    bytes): re-acquiring a digest already cached is one control
    round-trip (no payload), so each epoch's buffers cross the socket
    exactly once however many queries it serves.

    With ``delta=True`` a cache miss first tries ``fetch_delta`` against
    the newest cached payload: the server ships only the churned chunks,
    the client composes them onto a copy of its cached bytes, and the
    composed payload's digest is verified before the plane is decoded and
    swapped in.  Any delta failure (base evicted server-side, composition
    mismatch) falls back to a verified full fetch.
    """

    supports_delta = True

    def __init__(self, host: str, port: int, reader_id=None,
                 cache_planes: int = DEFAULT_CACHE_PLANES,
                 delta: bool = False,
                 timeout: Optional[float] = 30.0) -> None:
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        except OSError as exc:
            raise ConfigError(
                f"cannot reach plane server at {host}:{port}: {exc}"
            ) from None
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # digest -> (materialized plane, raw payload bytes)
        self._cache: "OrderedDict[str, Tuple[object, bytes]]" = OrderedDict()
        self._cache_planes = cache_planes
        self._delta = bool(delta)
        #: client-side mirror of the server's transfer accounting
        self.transfer: Dict[str, int] = {
            "delta_fetches": 0, "full_fetches": 0,
            "bytes_received": 0, "bytes_full": 0,
        }
        hello = self._call({"op": "hello", "reader": reader_id})
        self.reader_id = hello["reader"]

    def _call(self, msg: dict) -> dict:
        try:
            _send_msg(self._sock, msg)
            resp = _recv_msg(self._sock)
        except OSError as exc:
            raise QueryError(f"plane server connection lost: {exc}") from None
        if resp is None:
            raise QueryError("plane server closed the connection")
        if not resp.get("ok", False):
            raise QueryError(
                f"plane server refused {msg.get('op')!r}: "
                f"{resp.get('error', 'unknown error')}"
            )
        return resp

    def generation(self) -> int:
        return self._call({"op": "poll"})["generation"]

    def stats(self) -> dict:
        """Server-side slots + fetch counters (tests and dashboards)."""
        return self._call({"op": "stats"})

    def cached_payload(self, digest: str) -> Optional[bytes]:
        """Raw payload bytes cached under ``digest`` (tests, audits)."""
        entry = self._cache.get(digest)
        return None if entry is None else entry[1]

    def acquire(self) -> Optional[PlaneLease]:
        resp = self._call({"op": "acquire"})
        if resp.get("empty"):
            return None
        slot, digest = resp["slot"], resp["digest"]
        entry = self._cache.get(digest)
        if entry is not None:
            self._cache.move_to_end(digest)
        else:
            try:
                entry = self._fetch(slot, digest)
            except Exception:
                self._call({"op": "release", "slot": slot})
                raise
            self._cache[digest] = entry
            while len(self._cache) > self._cache_planes:
                self._cache.popitem(last=False)
        plane = entry[0]

        def release() -> None:
            self._call({"op": "release", "slot": slot})

        return PlaneLease(resp["generation"], slot, resp["epoch"], plane,
                          release)

    def _recv_payload_frame(self, nbytes: int) -> bytes:
        try:
            frame = _recv_frame(self._sock)
        except OSError as exc:
            raise QueryError(f"plane fetch failed: {exc}") from None
        if frame is None or len(frame) != nbytes:
            raise QueryError("plane fetch was truncated")
        return frame

    def _fetch(self, slot: int, digest: str) -> Tuple[object, bytes]:
        """Materialize one payload: delta against the newest cached plane
        when enabled, else (or on any delta failure) a full fetch."""
        if self._delta and self._cache:
            base = next(reversed(self._cache))
            payload = self._fetch_delta(slot, digest, base)
            if payload is not None:
                manifest, arrays = decode_plane(payload)
                return materialize_plane(manifest, arrays), payload
        header = self._call({"op": "fetch", "slot": slot})
        payload = self._recv_payload_frame(header["nbytes"])
        if plane_digest(payload) != digest:
            raise QueryError(
                f"plane digest mismatch for slot {slot}: payload corrupt"
            )
        self.transfer["full_fetches"] += 1
        self.transfer["bytes_received"] += len(payload)
        self.transfer["bytes_full"] += len(payload)
        manifest, arrays = decode_plane(payload)
        return materialize_plane(manifest, arrays), payload

    def _fetch_delta(self, slot: int, digest: str,
                     base: str) -> Optional[bytes]:
        """One ``fetch_delta`` round-trip; None means "retry as full".

        The server answers ``mode="full"`` itself when the base fell out
        of its history; a delta whose composition does not reproduce the
        expected digest is discarded the same way — the full path is the
        always-correct fallback.
        """
        header = self._call({"op": "fetch_delta", "slot": slot,
                             "base": base})
        frame = self._recv_payload_frame(header["nbytes"])
        full_nbytes = header.get("full_nbytes", len(frame))
        if header.get("mode") != "delta":
            if plane_digest(frame) != digest:
                raise QueryError(
                    f"plane digest mismatch for slot {slot}: payload corrupt"
                )
            self.transfer["full_fetches"] += 1
            self.transfer["bytes_received"] += len(frame)
            self.transfer["bytes_full"] += full_nbytes
            return frame
        base_payload = self._cache[base][1]
        try:
            if delta_header(frame)["target"] != digest:
                raise ConfigError("delta frame targets a different plane")
            payload = apply_plane_delta(base_payload, frame,
                                        base_digest=base)
        except ConfigError:
            return None  # composed digest mismatch — refetch in full
        self.transfer["delta_fetches"] += 1
        self.transfer["bytes_received"] += len(frame)
        self.transfer["bytes_full"] += full_nbytes
        return payload

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        self._cache.clear()


class NetReader:
    """Standalone remote reader: attach to a writer, serve queries locally.

    What ``repro attach host:port`` drives — the single-process analogue
    of one pool worker, usable from any host that can reach the writer's
    :class:`PlaneServer`.  Queries run on the locally cached plane; call
    :meth:`refresh` (or any query, which refreshes implicitly) to pick up
    newly published epochs.
    """

    def __init__(self, address: str, policy: str = "upper+lower",
                 cache_planes: int = DEFAULT_CACHE_PLANES,
                 delta: bool = False) -> None:
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigError(
                f"attach address must be host:port, got {address!r}"
            )
        self._client = NetClient(host, int(port), cache_planes=cache_planes,
                                 delta=delta)
        self._policy = policy
        self._lease: Optional[PlaneLease] = None
        self._engine = None

    def transfer_stats(self) -> Dict[str, int]:
        """This reader's delta/full fetch counters and byte totals."""
        return dict(self._client.transfer)

    @property
    def epoch(self) -> Optional[int]:
        """Epoch currently served (None before the writer publishes)."""
        lease = self._lease
        return None if lease is None else lease.epoch

    @property
    def client(self) -> NetClient:
        return self._client

    def refresh(self) -> Optional[int]:
        """Adopt the newest published epoch; returns it (None when bare)."""
        from repro.core.engine import PairwiseEngine

        lease = self._lease
        if lease is not None and lease.generation == self._client.generation():
            return lease.epoch
        self._engine = None
        if lease is not None:
            self._lease = None
            lease.release()
        lease = self._client.acquire()
        if lease is None:
            return None
        self._lease = lease
        self._engine = PairwiseEngine(
            PlaneGraph(lease.plane.csr), policy=self._policy,
            dense=lease.plane,
        )
        return lease.epoch

    def _current_engine(self):
        self.refresh()
        if self._engine is None:
            raise QueryError("no epoch has been published yet")
        return self._engine, self._lease

    def vertices(self) -> List[int]:
        """Caller-space vertex ids of the served plane (demo drivers)."""
        _engine, lease = self._current_engine()
        return list(lease.plane.csr.ids)

    def distance(self, source: int, target: int,
                 tolerance: float = 0.0) -> Tuple[float, object, int]:
        """One pairwise distance on the cached plane: (value, stats, epoch)."""
        engine, lease = self._current_engine()
        value, stats = engine.best_cost(source, target, tolerance=tolerance)
        return value, stats, lease.epoch

    def distance_many(self, source: int, targets) -> Tuple[dict, object, int]:
        """One-to-many on the cached plane: (values, stats, epoch)."""
        engine, lease = self._current_engine()
        values, stats = engine.one_to_many(source, list(targets))
        return values, stats, lease.epoch

    def close(self) -> None:
        lease, self._lease = self._lease, None
        self._engine = None
        if lease is not None:
            try:
                lease.release()
            except QueryError:  # pragma: no cover - writer already gone
                pass
        self._client.close()

    def __enter__(self) -> "NetReader":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
