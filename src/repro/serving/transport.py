"""Transport layer: how published planes travel from writer to readers.

The epoch-handoff protocol (:mod:`repro.serving.registry`) and the plane
byte format (:mod:`repro.serving.codec`) say nothing about *where* the
bytes live.  A :class:`PlaneTransport` decides that:

* writer side — :meth:`PlaneTransport.publish_plane` materializes one
  encoded plane per epoch and registers its ref with the transport's
  :class:`~repro.serving.registry.EpochRegistry`;
* reader side — a picklable :class:`ReaderSpec` travels into each reader
  process, whose :meth:`~ReaderSpec.connect` yields a
  :class:`PlaneClient`: ``generation()`` is the cheap staleness probe and
  ``acquire()`` returns a :class:`PlaneLease` pinning one epoch's
  materialized :class:`~repro.core.hub_index.DensePlane` until released.

:class:`ShmTransport` is the one-box implementation — each plane encoded
once into a named POSIX shared-memory segment that readers map zero-copy
(see :mod:`repro.serving.shm_plane`).  :class:`repro.serving.net.NetTransport`
ships the same bytes over a length-prefixed TCP protocol to readers on
any host, which cache each fetched plane locally (fetch-on-publish).
:class:`~repro.serving.pool.WorkerPool` and
:class:`~repro.serving.pool.ServeSession` are generic over this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional

from repro.errors import ConfigError
from repro.serving.epoch import EpochBoard
from repro.serving.registry import EpochRegistry
from repro.serving.shm_plane import ShmPlane


class PlaneLease:
    """One acquired plane: pinned epoch state plus the release hook."""

    __slots__ = ("generation", "slot", "epoch", "plane", "_release")

    def __init__(self, generation, slot: int, epoch: int, plane,
                 release: Callable[[], None]) -> None:
        # generation is the transport's opaque staleness token (int for
        # shm, (rev, generation) tuple for tcp) — equality-compare only.
        self.generation = generation
        self.slot = slot
        self.epoch = epoch
        self.plane = plane
        self._release = release

    def release(self) -> None:
        """Return the refcount (and unmap, where the transport maps).

        Callers must drop every reference into ``plane`` (engines, array
        views) *before* releasing, or a mapped transport cannot unmap.
        The lease drops its own ``plane`` reference here for the same
        reason.
        """
        release, self._release = self._release, None
        self.plane = None
        if release is not None:
            release()


class PlaneClient(ABC):
    """Reader-side endpoint of one transport, bound to one reader id.

    A client whose transport can ship chunk-addressed deltas between
    adjacent planes (see :func:`repro.serving.codec.encode_plane_delta`)
    sets ``supports_delta`` and keeps the raw payload of cached planes so
    a new epoch can be composed from its predecessor instead of fetched
    in full; mapped transports (shm) have nothing to save — readers
    already share the writer's bytes — and leave it False.
    """

    #: whether acquire() can fetch O(Δ) deltas against cached planes
    supports_delta: bool = False

    @abstractmethod
    def generation(self):
        """Opaque staleness token — compare *for equality* with a held
        lease's ``generation`` to detect staleness between requests.

        The shm client returns the board's bare generation counter; the
        TCP client returns a ``(server incarnation rev, generation)``
        tuple so a lease acquired before a server restart reads stale
        even when the restarted registry's counter collides with the old
        one.  Callers must not order or arithmetic these tokens.
        """

    @abstractmethod
    def acquire(self) -> Optional[PlaneLease]:
        """Pin and materialize the current epoch's plane (None when the
        writer has not published yet)."""

    @abstractmethod
    def close(self) -> None:
        """Drop the client's own transport footprint (board mapping,
        socket).  Leases must be released first."""


class ReaderSpec(ABC):
    """Picklable recipe a reader process turns into a :class:`PlaneClient`.

    Travels through ``multiprocessing.Process`` args (fork or spawn), so
    it may carry only picklable state — names, addresses, and
    multiprocessing primitives, never mapped segments or sockets.
    """

    @abstractmethod
    def connect(self, reader_id) -> PlaneClient:
        """Open this reader's endpoint (called inside the reader process)."""


class PlaneTransport(ABC):
    """Writer-side handle: publish planes, hand out reader specs."""

    #: short tag for logs / stats rows ("shm", "tcp")
    kind: str = "?"

    @property
    @abstractmethod
    def registry(self) -> EpochRegistry:
        """The slot table this transport registers planes on."""

    @abstractmethod
    def publish_plane(self, plane, epoch: int) -> bool:
        """Encode + register one epoch's plane; False when that epoch was
        already published (republish is a no-op end to end)."""

    @abstractmethod
    def reader_spec(self) -> ReaderSpec:
        """The spec reader processes use to reach this transport."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable endpoint ("shm segments rp…*", "tcp host:port")."""

    def release_reader(self, reader_id) -> None:
        """Reap a dead reader's refcount (idempotent)."""
        self.registry.release_reader(reader_id)

    def transfer_stats(self) -> Dict[str, int]:
        """Payload-movement counters for ``stats_row`` observability.

        Byte-moving transports report ``delta_fetches`` / ``full_fetches``
        / ``bytes_sent`` / ``bytes_full`` (actual vs all-full hypothetical
        bytes) plus their delta-base cache occupancy; mapped transports
        move no bytes per epoch and report nothing.
        """
        return {}

    @abstractmethod
    def close(self) -> None:
        """Tear down every plane this transport materialized."""


# ---------------------------------------------------------------------------
# Shared-memory implementation (the PR-4 path, unchanged behaviour)
# ---------------------------------------------------------------------------


class ShmReaderSpec(ReaderSpec):
    """Board name + the shared lock, inherited through process creation."""

    def __init__(self, board_name: str, lock) -> None:
        self.board_name = board_name
        self.lock = lock

    def connect(self, reader_id) -> "ShmClient":
        return ShmClient(
            EpochBoard.attach(self.board_name, self.lock), int(reader_id)
        )


class ShmClient(PlaneClient):
    """Reader endpoint over the shm board: attach segments by name."""

    def __init__(self, board: EpochBoard, reader_id: int) -> None:
        self._board = board
        self._reader_id = reader_id

    def generation(self) -> int:
        return self._board.generation()

    def acquire(self) -> Optional[PlaneLease]:
        board = self._board
        reader_id = self._reader_id
        got = board.acquire(reader_id)
        if got is None:
            return None
        generation, slot, epoch, seg_name = got
        try:
            handle = ShmPlane.attach(seg_name)
        except FileNotFoundError:
            board.release(slot, worker_id=reader_id)
            return None
        plane = handle.as_dense_plane()

        def release() -> None:
            # The engine and plane hold numpy views into the mapping; the
            # caller dropped its references, but stray cycles would defer
            # the munmap to interpreter shutdown — collect first.
            import gc

            gc.collect()
            handle.close()
            board.release(slot, worker_id=reader_id)

        return PlaneLease(generation, slot, epoch, plane, release)

    def close(self) -> None:
        self._board.detach()


class ShmTransport(PlaneTransport):
    """One named shm segment per epoch; readers map the writer's bytes."""

    kind = "shm"

    def __init__(self, prefix: str, num_workers: int, ctx) -> None:
        self._prefix = prefix
        self._num_workers = num_workers
        self._lock = ctx.Lock()
        self._board = EpochBoard.create(
            prefix + "board", num_workers=num_workers, lock=self._lock,
        )
        self._exports: Dict[int, ShmPlane] = {}

    @property
    def registry(self) -> EpochBoard:
        return self._board

    @property
    def prefix(self) -> str:
        """Name prefix of every segment this transport creates."""
        return self._prefix

    def publish_plane(self, plane, epoch: int) -> bool:
        if epoch in self._exports:
            return False
        name = f"{self._prefix}e{epoch}"
        handle = ShmPlane.export(plane, name, epoch=epoch)
        self._exports[epoch] = handle
        self._board.register(name, epoch)
        return True

    def reader_spec(self) -> ShmReaderSpec:
        return ShmReaderSpec(self._board.name, self._lock)

    def describe(self) -> str:
        return f"shm segments {self._prefix}*"

    def close(self) -> None:
        for worker_id in range(self._num_workers):
            self._board.release_worker(worker_id)
        for handle in self._exports.values():
            handle.close()
        self._exports = {}
        self._board.shutdown()


# ---------------------------------------------------------------------------


def make_transport(kind: str, prefix: str, num_workers: int, ctx,
                   **options) -> PlaneTransport:
    """Construct the writer-side transport for ``kind`` ("shm" or "tcp")."""
    if kind == "shm":
        if options:
            bad = ", ".join(sorted(options))
            raise ConfigError(f"shm transport takes no options: {bad}")
        return ShmTransport(prefix, num_workers, ctx)
    if kind == "tcp":
        from repro.serving.net import NetTransport

        return NetTransport(num_workers=num_workers, **options)
    raise ConfigError(f"unknown transport {kind!r}; known: shm, tcp")
