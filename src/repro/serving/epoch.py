"""The epoch handoff protocol between one writer and N plane readers.

A tiny control segment (the *board*) carries everything readers need to
find the newest published plane and everything the writer needs to retire
old ones safely:

* a header: ``generation`` (bumped on every registration — the reader's
  one-word staleness probe), ``current_slot``, and the table dimensions;
* a slot table (default 16 slots): segment name, epoch, refcount, and a
  state in {FREE, LIVE, RETIRED};
* one cell per worker recording which slot it currently holds, so the
  writer can *reap* the refcount of a worker that died without releasing.

Every mutation happens under one shared ``multiprocessing.Lock``.  The
safety argument is layout-free: a plane segment is fully written *before*
:meth:`EpochBoard.register` publishes its name (so no reader can map a
torn plane), and a segment is unlinked only when its slot is RETIRED *and*
its refcount has reached zero (the last detacher — reader or writer —
performs the unlink).  Readers re-attach between requests, so a query in
flight always finishes on the epoch it started on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.serving import shm_plane
from repro.serving.registry import FREE, LIVE, RETIRED, EpochRegistry
from repro.serving.shm_plane import _untrack, unlink_segment

try:  # pragma: no cover
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

__all__ = ["EpochBoard", "FREE", "LIVE", "RETIRED"]

_NAME_LEN = 128
_HEADER = 4  # generation, current_slot, num_slots, num_workers


class EpochBoard(EpochRegistry):
    """Shared-memory :class:`EpochRegistry`: the slot table itself lives in
    a segment both the writer and its forked readers map.

    Reader ids are small ints (worker indexes) — the reap bookkeeping is a
    fixed per-worker cell array inside the segment."""

    def __init__(self, shm, lock, head: np.ndarray, names: np.ndarray,
                 meta: np.ndarray, worker_slots: np.ndarray,
                 created: bool) -> None:
        self._shm = shm
        self._lock = lock
        self._head = head            # [generation, current_slot, slots, workers]
        self._names = names          # (num_slots, _NAME_LEN) uint8
        self._meta = meta            # (num_slots, 3) int64: epoch, refcount, state
        self._worker_slots = worker_slots
        self._created = created

    # -- construction -------------------------------------------------------

    @staticmethod
    def _layout(buf, num_slots: int, num_workers: int):
        head = np.frombuffer(buf, dtype=np.int64, count=_HEADER)
        off = _HEADER * 8
        names = np.frombuffer(
            buf, dtype=np.uint8, count=num_slots * _NAME_LEN, offset=off
        ).reshape(num_slots, _NAME_LEN)
        off += num_slots * _NAME_LEN
        meta = np.frombuffer(
            buf, dtype=np.int64, count=num_slots * 3, offset=off
        ).reshape(num_slots, 3)
        off += num_slots * 3 * 8
        worker_slots = np.frombuffer(
            buf, dtype=np.int64, count=num_workers, offset=off
        )
        return head, names, meta, worker_slots

    @classmethod
    def create(cls, name: str, num_workers: int, lock,
               num_slots: int = 16) -> "EpochBoard":
        """Writer side: allocate and zero-initialize the board segment."""
        if shared_memory is None:  # pragma: no cover
            raise ConfigError("multiprocessing.shared_memory is unavailable")
        if num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        size = _HEADER * 8 + num_slots * _NAME_LEN + num_slots * 3 * 8 \
            + num_workers * 8
        shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        shm_plane._created.add(name)
        _untrack(name)
        shm.buf[:size] = b"\0" * size
        head, names, meta, worker_slots = cls._layout(
            shm.buf, num_slots, num_workers
        )
        head[:] = (0, -1, num_slots, num_workers)
        worker_slots[:] = -1
        return cls(shm, lock, head, names, meta, worker_slots, created=True)

    @classmethod
    def attach(cls, name: str, lock) -> "EpochBoard":
        """Reader side: map an existing board."""
        shm = shm_plane._attach_segment(name)
        head = np.frombuffer(shm.buf, dtype=np.int64, count=_HEADER)
        num_slots, num_workers = int(head[2]), int(head[3])
        head, names, meta, worker_slots = cls._layout(
            shm.buf, num_slots, num_workers
        )
        return cls(shm, lock, head, names, meta, worker_slots, created=False)

    # -- introspection ------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name.lstrip("/")

    def generation(self) -> int:
        """The registration counter — cheap staleness probe for readers."""
        with self._lock:
            return int(self._head[0])

    def current_epoch(self) -> Optional[int]:
        with self._lock:
            slot = int(self._head[1])
            if slot < 0:
                return None
            return int(self._meta[slot, 0])

    def slots(self) -> List[Tuple[int, str, int, int, int]]:
        """Snapshot of the slot table: (slot, name, epoch, refcount, state)."""
        with self._lock:
            out = []
            for i in range(int(self._head[2])):
                state = int(self._meta[i, 2])
                if state == FREE:
                    continue
                out.append((i, self._slot_name(i), int(self._meta[i, 0]),
                            int(self._meta[i, 1]), state))
            return out

    def _slot_name(self, slot: int) -> str:
        raw = bytes(self._names[slot])
        return raw.rstrip(b"\0").decode("ascii")

    # -- writer protocol ----------------------------------------------------

    def register(self, seg_name: str, epoch: int) -> int:
        """Publish a fully written plane segment as the newest epoch.

        Retires the previous current slot (unlinked immediately when no
        reader holds it, else by the last release) and bumps the
        generation.  Returns the slot index used.
        """
        encoded = seg_name.encode("ascii")
        if len(encoded) >= _NAME_LEN:
            raise ConfigError(f"segment name too long: {seg_name!r}")
        with self._lock:
            num_slots = int(self._head[2])
            slot = -1
            for i in range(num_slots):
                if int(self._meta[i, 2]) == FREE:
                    slot = i
                    break
            if slot < 0:
                raise ConfigError(
                    "epoch board is full: readers are holding "
                    f"{num_slots} retired planes"
                )
            row = self._names[slot]
            row[:] = 0
            row[: len(encoded)] = np.frombuffer(encoded, dtype=np.uint8)
            self._meta[slot] = (epoch, 0, LIVE)
            old = int(self._head[1])
            if old >= 0:
                self._meta[old, 2] = RETIRED
                self._maybe_unlink(old)
            self._head[1] = slot
            self._head[0] += 1
            return slot

    def release_reader(self, reader_id) -> None:
        """Reap the slot held by a worker that died without releasing."""
        self.release_worker(int(reader_id))

    def release_worker(self, worker_id: int) -> None:
        """Reap the slot held by a worker that died without releasing."""
        with self._lock:
            slot = int(self._worker_slots[worker_id])
            if slot < 0:
                return
            self._worker_slots[worker_id] = -1
            self._meta[slot, 1] -= 1
            self._maybe_unlink(slot)

    def shutdown(self) -> None:
        """Writer teardown: unlink every remaining plane and the board."""
        with self._lock:
            for i in range(int(self._head[2])):
                if int(self._meta[i, 2]) != FREE:
                    unlink_segment(self._slot_name(i))
                    self._meta[i] = (0, 0, FREE)
            self._head[1] = -1
        name = self.name
        self._release_views()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover
            pass
        if self._created:
            unlink_segment(name)

    # -- reader protocol ----------------------------------------------------

    def acquire(self, worker_id: int) -> Optional[Tuple[int, int, int, str]]:
        """Take a reference on the current plane.

        Returns ``(generation, slot, epoch, segment_name)``, or None when
        nothing has been registered yet.  The caller must pair this with
        :meth:`release` (normal detach) — or die and be reaped via
        :meth:`release_worker`.
        """
        with self._lock:
            slot = int(self._head[1])
            if slot < 0:
                return None
            self._meta[slot, 1] += 1
            if worker_id >= 0:
                self._worker_slots[worker_id] = slot
            return (int(self._head[0]), slot, int(self._meta[slot, 0]),
                    self._slot_name(slot))

    def release(self, slot: int, worker_id: int = -1) -> None:
        """Drop a reference; the last release of a retired slot unlinks."""
        with self._lock:
            self._meta[slot, 1] -= 1
            if worker_id >= 0:
                self._worker_slots[worker_id] = -1
            self._maybe_unlink(slot)

    def detach(self) -> None:
        """Drop this process's mapping of the board (reader teardown)."""
        self._release_views()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover
            pass

    # -- internals ----------------------------------------------------------

    def _maybe_unlink(self, slot: int) -> None:
        # Lock held.  RETIRED + refcount 0 means nobody can ever map the
        # segment again (readers only learn names of the *current* slot),
        # so the last detacher removes it from the system.
        if int(self._meta[slot, 2]) == RETIRED and int(self._meta[slot, 1]) <= 0:
            unlink_segment(self._slot_name(slot))
            self._names[slot] = 0
            self._meta[slot] = (0, 0, FREE)

    def _release_views(self) -> None:
        # numpy views must be dropped before the mapping can close.
        self._head = self._names = self._meta = self._worker_slots = None
