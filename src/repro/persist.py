"""Persistence: save and restore an :class:`~repro.SGraph` with its indexes.

Layout of a saved instance (a directory)::

    <dir>/graph.edges   # whitespace edge list (repro.graph.io format)
    <dir>/meta.json     # format version, config, hub lists per family
    <dir>/tables.json   # per-family, per-hub cost tables

The format is plain text/JSON — no pickling — so saved instances are safe
to exchange.  Vertex ids must be integers (the edge-list format's
constraint); the loader verifies table shape against the graph and can
optionally re-verify table *contents* against a fresh rebuild.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.core.config import SGraphConfig
from repro.core.hub_index import HubIndex
from repro.core.pruning import PruningPolicy
from repro.core.semiring import (
    BOTTLENECK_CAPACITY,
    RELIABILITY_PRODUCT,
    SHORTEST_DISTANCE,
    PathSemiring,
)
from repro.errors import ReproError
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.views import UnitWeightView
from repro.sgraph import SGraph

FORMAT_VERSION = 1

_SEMIRINGS: Dict[str, PathSemiring] = {
    "distance": SHORTEST_DISTANCE,
    "capacity": BOTTLENECK_CAPACITY,
    "reliability": RELIABILITY_PRODUCT,
}


class PersistError(ReproError):
    """A save/load operation failed or the on-disk state is inconsistent."""


def _family_semiring(family: str) -> PathSemiring:
    # hop indexes use the distance algebra over the unit-weight view
    return _SEMIRINGS.get(family, SHORTEST_DISTANCE)


def _encode_table(table: Dict[int, float]) -> Dict[str, float]:
    return {str(v): c for v, c in table.items()}


def _decode_table(table: Dict[str, float]) -> Dict[int, float]:
    return {int(v): c for v, c in table.items()}


def save_sgraph(sg: SGraph, directory: Union[str, Path]) -> None:
    """Persist the graph, configuration, and every built index."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for v in sg.graph.vertices():
        if not isinstance(v, int):
            raise PersistError(
                f"persistence requires integer vertex ids; found {v!r}"
            )
    write_edge_list(sg.graph, directory / "graph.edges")

    cfg = sg.config
    families: Dict[str, dict] = {}
    tables: Dict[str, dict] = {}
    for family in cfg.queries:
        try:
            index = sg.index_for(family)
        except ReproError:
            continue
        index.refresh()
        families[family] = {"hubs": index.hubs}
        fwd = {}
        bwd = {}
        for h in index.hubs:
            fwd_tree = index.forward_tree(h)
            fwd[str(h)] = _encode_table(fwd_tree.raw_cost_table())
            bwd_tree = index.backward_tree(h)
            if bwd_tree is not fwd_tree:
                bwd[str(h)] = _encode_table(bwd_tree.raw_cost_table())
        tables[family] = {"forward": fwd, "backward": bwd}

    meta = {
        "format_version": FORMAT_VERSION,
        "directed": sg.graph.directed,
        "config": {
            "num_hubs": cfg.num_hubs,
            "hub_strategy": cfg.hub_strategy,
            "policy": cfg.policy.value,
            "queries": list(cfg.queries),
            "seed": cfg.seed,
            "backend": cfg.backend,
        },
        "families": families,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    (directory / "tables.json").write_text(json.dumps(tables))


def load_sgraph(directory: Union[str, Path], verify: bool = False) -> SGraph:
    """Restore a saved instance.

    With ``verify=True`` every restored cost table is checked against a
    fresh rebuild (slow but airtight); otherwise only structural shape is
    validated.
    """
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise PersistError(f"{directory} does not contain a saved SGraph")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != FORMAT_VERSION:
        raise PersistError(
            f"unsupported format version {meta.get('format_version')!r}"
        )
    graph = read_edge_list(directory / "graph.edges")
    if graph.directed != meta["directed"]:
        raise PersistError("edge-list header disagrees with metadata")
    cfg_raw = meta["config"]
    config = SGraphConfig(
        num_hubs=cfg_raw["num_hubs"],
        hub_strategy=cfg_raw["hub_strategy"],
        policy=PruningPolicy.parse(cfg_raw["policy"]),
        queries=tuple(cfg_raw["queries"]),
        seed=cfg_raw["seed"],
        # Absent in saves made before the serving-plane split.
        backend=cfg_raw.get("backend", "auto"),
    )
    sg = SGraph(graph=graph, config=config)

    tables = json.loads((directory / "tables.json").read_text())
    indexes: Dict[str, HubIndex] = {}
    for family, info in meta["families"].items():
        hubs = info["hubs"]
        semiring = _family_semiring(family)
        family_graph = UnitWeightView(graph) if family == "hops" else graph
        raw = tables.get(family)
        if raw is None:
            raise PersistError(f"tables.json missing family {family!r}")
        fwd = {int(h): _decode_table(t) for h, t in raw["forward"].items()}
        bwd = {int(h): _decode_table(t) for h, t in raw["backward"].items()}
        for h in hubs:
            if h not in fwd:
                raise PersistError(f"family {family!r} missing hub {h} table")
            if not graph.has_vertex(h):
                raise PersistError(f"hub {h} not present in restored graph")
        index = HubIndex.from_tables(
            family_graph, hubs, semiring, fwd,
            backward_tables=bwd if graph.directed else None,
        )
        if verify:
            _verify_index(index, family_graph, hubs, semiring)
        indexes[family] = index
    if indexes:
        sg.adopt_indexes(indexes)
    # An empty save (no indexes were ever built, e.g. empty graph) restores
    # to a facade that will build lazily on first query.
    return sg


def _verify_index(index: HubIndex, graph, hubs, semiring) -> None:
    from repro.streaming.incremental_sssp import IncrementalBestPath

    for h in hubs:
        fresh = IncrementalBestPath(graph, h, semiring, direction="forward")
        if index.forward_tree(h).raw_cost_table() != fresh.costs():
            raise PersistError(f"restored forward table for hub {h} is stale")
        if graph.directed:
            fresh_b = IncrementalBestPath(graph, h, semiring,
                                          direction="backward")
            if index.backward_tree(h).raw_cost_table() != fresh_b.costs():
                raise PersistError(
                    f"restored backward table for hub {h} is stale"
                )
