"""Benchmark harness: workload builders, runners, and table printers."""

from repro.bench.harness import run_query_workload, time_callable
from repro.bench.report import format_table, print_table
from repro.bench.workloads import QueryWorkload, build_workload

__all__ = [
    "run_query_workload",
    "time_callable",
    "format_table",
    "print_table",
    "QueryWorkload",
    "build_workload",
]
